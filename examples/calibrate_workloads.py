#!/usr/bin/env python3
"""Calibration audit: where each workload's native-4K bar lands.

Each workload module carries an ``ideal_cycles_per_ref`` constant
calibrated so the native-4K overhead matches the paper's Figure 11/12
bar (DESIGN.md section 4, point 5).  This script re-measures those bars
and prints the drift, so anyone retuning trace generators can re-anchor
the constants in one pass: new_cpa = old_cpa * measured / target.

Run:  python examples/calibrate_workloads.py [--quick]
"""

import sys

from repro.sim.simulator import simulate
from repro.workloads.registry import ALL_WORKLOADS, create_workload

#: Native-4K calibration targets (percent), from the paper's text and
#: figures (graph500's 28% is stated; the rest are read from the bars).
TARGETS = {
    "graph500": 28.0,
    "memcached": 25.0,
    "npb-cg": 30.0,
    "gups": 190.0,
    "cactusadm": 30.0,
    "gemsfdtd": 12.0,
    "mcf": 40.0,
    "omnetpp": 10.0,
    "canneal": 12.0,
    "streamcluster": 8.0,
}


def main() -> None:
    length = 20_000 if "--quick" in sys.argv else 60_000
    print(
        f"{'workload':>13} | {'target':>7} | {'measured':>8} | "
        f"{'drift':>6} | {'suggested cpa':>13}"
    )
    print("-" * 62)
    worst = 0.0
    for name in ALL_WORKLOADS:
        workload = create_workload(name)
        result = simulate("4K", workload, trace_length=length)
        target = TARGETS[name]
        measured = result.overhead_percent
        drift = measured / target - 1.0
        worst = max(worst, abs(drift))
        suggestion = workload.spec.ideal_cycles_per_ref * measured / target
        print(
            f"{name:>13} | {target:>6.1f}% | {measured:>7.2f}% | "
            f"{100 * drift:>+5.1f}% | {suggestion:>13.2f}"
        )
    print(f"\nworst drift: {100 * worst:.1f}%")
    if worst > 0.15:
        print("drift above 15%: re-anchor ideal_cycles_per_ref in the workload modules")
    else:
        print("calibration holds; no re-anchoring needed")


if __name__ == "__main__":
    main()
