#!/usr/bin/env python3
"""Big-memory workloads under every translation configuration.

The scenario from the paper's introduction: a key-value store and a
graph-analytics job rented a large VM, and their TLB-miss-heavy access
patterns make nested paging hurt.  This example sweeps the Figure 11
configurations -- native page sizes, the virtualized page-size grid, and
the proposed modes -- for memcached and graph500, and reports which
design recovers native performance at what software cost (Table II).

Run:  python examples/bigmemory_virtualization.py [--quick]
"""

import sys

from repro.core.modes import MODE_PROPERTIES, TranslationMode
from repro.sim.config import parse_config
from repro.sim.simulator import simulate
from repro.workloads.registry import create_workload

CONFIGS = ("4K", "2M", "1G", "4K+4K", "4K+2M", "2M+2M", "1G+1G", "DS", "DD", "4K+VD", "4K+GD")
WORKLOADS = ("memcached", "graph500")


def describe_requirements(label: str) -> str:
    mode = parse_config(label).mode
    props = MODE_PROPERTIES.get(mode)
    if props is None or mode is TranslationMode.BASE_VIRTUALIZED:
        return "-"
    needs = []
    if props.guest_os_modifications:
        needs.append("guest OS")
    if props.vmm_modifications:
        needs.append("VMM")
    return "+".join(needs) if needs else "none"


def main() -> None:
    length = 20_000 if "--quick" in sys.argv else 60_000
    header = f"{'config':>8} | " + " | ".join(f"{w:>10}" for w in WORKLOADS)
    print(header + " | changes needed")
    print("-" * (len(header) + 17))
    for label in CONFIGS:
        cells = []
        for name in WORKLOADS:
            result = simulate(label, create_workload(name), trace_length=length)
            cells.append(f"{result.overhead_percent:>9.1f}%")
        print(f"{label:>8} | " + " | ".join(cells) + f" | {describe_requirements(label)}")

    print(
        "\nReading the table: virtualized configs (rows with '+') multiply the"
        "\nnative overheads; 2M/1G pages help but do not close the gap; the"
        "\nproposed modes (DD, 4K+VD, 4K+GD) do, at the software cost shown."
    )


if __name__ == "__main__":
    main()
