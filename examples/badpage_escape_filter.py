#!/usr/bin/env python3
"""The escape filter in action: direct segments with hard-faulted DRAM.

A single faulty frame would otherwise prevent an 8+ GB direct segment
from existing (Section V).  This example plants hard faults inside the
host region a Dual Direct VM's segment occupies, shows the VMM escaping
them through the 256-bit H3 Bloom filter, and measures that (a) no
access is ever served from a bad frame and (b) the performance cost is
negligible.

Run:  python examples/badpage_escape_filter.py
"""

from repro.core.address import BASE_PAGE_SIZE
from repro.mem.badpages import BadPageList
from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system
from repro.workloads.registry import create_workload

TRACE_LENGTH = 30_000


def segment_host_frames(spec) -> range:
    probe = build_system(parse_config("DD"), spec)
    segment = probe.vm.vmm_segment
    start = (segment.base + segment.offset) // BASE_PAGE_SIZE
    return range(start, start + segment.size // BASE_PAGE_SIZE)


def main() -> None:
    workload = create_workload("memcached")
    spec = workload.spec
    frames = segment_host_frames(spec)
    print(
        f"VMM segment spans host frames [{frames.start:#x}, {frames.stop:#x}) "
        f"({(frames.stop - frames.start) * 4096 >> 30} GB)"
    )

    trace = workload.trace(TRACE_LENGTH, seed=0)
    baseline = run_trace(
        build_system(parse_config("DD"), spec),
        trace,
        spec.ideal_cycles_per_ref,
        refs_per_entry=spec.refs_per_entry,
    )
    print(f"baseline DD execution: {baseline.overhead.execution_cycles / 1e6:.2f} Mcycles\n")

    print(f"{'bad pages':>9} | {'escaped':>7} | {'norm. time':>10} | {'filter FP rate':>14}")
    print("-" * 52)
    for num_bad in (1, 4, 16):
        bad = BadPageList.random(num_bad, frames, seed=num_bad)
        system = build_system(parse_config("DD"), spec, bad_pages=bad)
        vm = system.vm
        result = run_trace(
            system, trace, spec.ideal_cycles_per_ref, refs_per_entry=spec.refs_per_entry
        )
        normalized = (
            result.overhead.execution_cycles / baseline.overhead.execution_cycles
        )
        fp_rate = vm.escape_filter.false_positive_rate(
            range(frames.start - vm.vmm_segment.offset // BASE_PAGE_SIZE,
                  frames.start - vm.vmm_segment.offset // BASE_PAGE_SIZE + 50_000)
        )
        print(
            f"{num_bad:>9} | {len(vm.escape_filter):>7} | {normalized:>10.5f} "
            f"| {100 * fp_rate:>13.3f}%"
        )

    print(
        "\nEven with 16 hard faults escaped, execution time is within a"
        "\nfraction of a percent of the fault-free run (Figure 13)."
    )


if __name__ == "__main__":
    main()
