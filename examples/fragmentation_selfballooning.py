#!/usr/bin/env python3
"""Fragmentation repair: self-ballooning and compaction-driven upgrades.

Demonstrates Section IV end to end on live data structures:

1. a guest with badly fragmented physical memory cannot create a guest
   segment -- self-ballooning trades scattered pages for a contiguous
   hot-added range and the segment appears;
2. a host with fragmented physical memory cannot create a VMM segment
   -- the VM starts in Guest Direct mode, the compaction daemon
   relocates pages in the background, and the VM upgrades to Dual
   Direct the moment enough contiguity exists (Table III's first row).

Run:  python examples/fragmentation_selfballooning.py
"""

import random

from repro.core.address import GIB, MIB, AddressRange, format_size
from repro.guest.balloon import SelfBalloonDriver
from repro.guest.guest_os import GuestOS, GuestOSConfig, SegmentCreationError
from repro.mem.physical_layout import IO_GAP_END
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.policy import (
    FragmentationManager,
    FragmentationState,
    WorkloadClass,
    plan_modes,
)


def demo_self_ballooning() -> None:
    print("=== Part 1: self-ballooning (guest fragmentation) ===")
    hypervisor = Hypervisor(host_memory_bytes=6 * GIB)
    vm = hypervisor.create_vm("vm0", memory_bytes=2 * GIB, reserve_bytes=512 * MIB)
    guest = GuestOS(vm.guest_layout)
    process = guest.spawn()
    process.mmap(384 * MIB, is_primary_region=True)

    guest.allocator.fragment(0.55, rng=random.Random(0), hold_orders=(0, 1))
    run = guest.allocator.largest_free_run_frames()
    print(f"guest fragmented: largest free run = {format_size(run * 4096)}")
    try:
        guest.create_guest_segment(process)
    except SegmentCreationError as exc:
        print(f"guest segment creation failed as expected: {exc}")

    driver = SelfBalloonDriver(guest, vm)
    released = driver.make_contiguous(384 * MIB)
    print(
        f"self-balloon: pinned {driver.stats.frames_ballooned} scattered frames, "
        f"hot-added contiguous gPA [{released.start:#x}, {released.end:#x})"
    )
    registers = guest.create_guest_segment(process)
    print(
        f"guest segment created: {format_size(registers.size)} at "
        f"gPA {registers.physical_range.start:#x}\n"
    )


def demo_compaction_upgrade() -> None:
    print("=== Part 2: compaction-driven mode upgrade (host fragmentation) ===")
    hypervisor = Hypervisor(host_memory_bytes=6 * GIB)
    hypervisor.allocator.fragment(0.45, rng=random.Random(1), hold_orders=(2, 3, 4))
    vm = hypervisor.create_vm("vm0", memory_bytes=4 * GIB)
    guest = GuestOS(
        vm.guest_layout,
        GuestOSConfig(pt_pool_bytes=8 * MIB),
        pt_pool_hint=AddressRange(IO_GAP_END, IO_GAP_END + 4 * GIB),
    )
    process = guest.spawn()
    process.mmap(256 * MIB, is_primary_region=True)

    plan = plan_modes(WorkloadClass.BIG_MEMORY, FragmentationState(host_fragmented=True))
    print(
        f"plan: start in {plan.initial_mode.value}, compact toward "
        f"{plan.final_mode.value}"
    )
    manager = FragmentationManager(vm, guest, process, plan)
    manager.prepare_guest()
    print(f"VM running in {vm.mode.value} (guest segment active)")

    ticks = 0
    while not manager.at_final_mode and ticks < 1000:
        manager.tick(page_budget=32768)
        ticks += 1
        if ticks % 10 == 0:
            moved = manager._compactor.stats.pages_moved  # noqa: SLF001
            print(f"  tick {ticks}: {moved} pages migrated ...")
    moved = manager._compactor.stats.pages_moved  # noqa: SLF001
    print(
        f"after {ticks} ticks and {moved} migrated pages the VM upgraded to "
        f"{vm.mode.value}"
    )
    print(f"VMM segment: {format_size(vm.vmm_segment.size)}")


if __name__ == "__main__":
    demo_self_ballooning()
    demo_compaction_upgrade()
