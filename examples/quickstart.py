#!/usr/bin/env python3
"""Quickstart: measure virtualized address-translation overhead.

Builds three machines for the graph500 workload -- native, base
virtualized (the 24-reference 2D walk), and the paper's VMM Direct mode
-- runs the same reference trace through each, and prints the overhead
comparison plus per-walk statistics.

Run:  python examples/quickstart.py
"""

from repro.sim.simulator import simulate
from repro.workloads.registry import create_workload

TRACE_LENGTH = 40_000


def main() -> None:
    workload = create_workload("graph500")
    print(f"workload: {workload.spec.name} ({workload.spec.description})")
    print(f"footprint: {workload.spec.footprint_bytes >> 30} GB\n")

    print(f"{'config':>8} | {'overhead':>9} | {'walks':>7} | {'cycles/walk':>11}")
    print("-" * 46)
    results = {}
    for config in ("4K", "4K+4K", "4K+VD", "DD"):
        result = simulate(config, workload, trace_length=TRACE_LENGTH)
        results[config] = result
        print(
            f"{config:>8} | {result.overhead_percent:>8.1f}% "
            f"| {result.run.walks:>7} | {result.run.cycles_per_walk:>11.1f}"
        )

    native = results["4K"].overhead_percent
    virt = results["4K+4K"].overhead_percent
    vd = results["4K+VD"].overhead_percent
    print()
    print(f"virtualization multiplied translation overhead by {virt / native:.1f}x;")
    print(f"VMM Direct brought it back to {vd / native:.2f}x native, and")
    print(f"Dual Direct to {results['DD'].overhead_percent:.2f}% absolute.")


if __name__ == "__main__":
    main()
