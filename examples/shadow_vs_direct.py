#!/usr/bin/env python3
"""Shadow paging vs VMM Direct: the Section IX.D head-to-head.

Shadow paging also eliminates the 2D walk -- but pays a VM exit on every
guest page-table write.  This example runs the full workload suite
through both alternatives and shows the two categories the paper finds:
allocation-heavy workloads (memcached, GemsFDTD, omnetpp, canneal) where
shadow coherence traffic dominates, and static workloads where shadow
paging is fine.  VMM Direct is near-native for both.

Run:  python examples/shadow_vs_direct.py [--quick]
"""

import sys

from repro.experiments.shadow import format_comparison, run


def main() -> None:
    length = 10_000 if "--quick" in sys.argv else 40_000
    result = run(trace_length=length, progress=True)
    print()
    print(format_comparison(result))
    worst_shadow = max(r.shadow_slowdown_4k for r in result.rows)
    worst_vd = max(r.vmm_direct_slowdown for r in result.rows)
    print(
        f"\nworst case vs native: shadow paging {100 * worst_shadow:.1f}%, "
        f"VMM Direct {100 * worst_vd:.1f}%"
    )
    category1 = [r.workload for r in result.rows if r.shadow_category == 1]
    print(f"coherence-bound workloads (category 1): {', '.join(category1)}")


if __name__ == "__main__":
    main()
