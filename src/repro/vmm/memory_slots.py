"""KVM memory slots: the gPA -> host-backing bookkeeping of Figure 10.

KVM maps a VM's guest physical memory onto the host virtual address
space of its QEMU process through *memory slots* -- contiguous gPA
ranges.  x86-64 VMs have two large slots: one for memory below the 4 GB
I/O gap and one for memory above it.  The prototype (Section VI.C)
manipulates these slots for self-ballooning (the second slot is
pre-extended by a reserve that is ballooned out at startup) and for the
I/O-gap reclaim (shrink the first slot, extend the second).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address import AddressRange, format_size
from repro.mem.physical_layout import IO_GAP_END, PhysicalLayout


@dataclass
class MemorySlot:
    """One contiguous gPA range backed by host memory."""

    index: int
    gpa_range: AddressRange
    name: str = ""

    def __contains__(self, gpa: int) -> bool:
        return gpa in self.gpa_range

    def describe(self) -> str:
        """Summary line for logs."""
        return (
            f"slot {self.index} ({self.name or 'unnamed'}): "
            f"gPA [{self.gpa_range.start:#x}, {self.gpa_range.end:#x}) "
            f"({format_size(self.gpa_range.size)})"
        )


class MemorySlots:
    """The slot table of one VM."""

    def __init__(self, guest_layout: PhysicalLayout, reserve_bytes: int = 0) -> None:
        """Build the standard two-slot layout, plus an optional reserve.

        ``reserve_bytes`` extends the above-gap slot beyond the nominal
        guest memory size; that extra gPA range starts out ballooned
        (unusable by the guest) and is released piecemeal by
        self-ballooning.
        """
        self.slots: list[MemorySlot] = []
        regions = guest_layout.regions
        if len(regions) == 1:
            # Small VM: all memory below the gap, a single slot.
            nominal_top = regions[0].end
            self.slots.append(MemorySlot(0, AddressRange(0, nominal_top), "low"))
            if reserve_bytes:
                # The reserve always lives above the gap.
                self.slots.append(
                    MemorySlot(
                        1,
                        AddressRange(IO_GAP_END, IO_GAP_END + reserve_bytes),
                        "high",
                    )
                )
        else:
            below, above = regions
            self.slots.append(MemorySlot(0, below, "low"))
            self.slots.append(
                MemorySlot(
                    1, AddressRange(above.start, above.end + reserve_bytes), "high"
                )
            )
        self._reserve_start = self.slots[-1].gpa_range.end - reserve_bytes
        self._reserve_released = 0
        self.reserve_bytes = reserve_bytes

    @property
    def high_slot(self) -> MemorySlot:
        """The above-gap slot (slot 1, or slot 0 in gapless small VMs)."""
        return self.slots[-1]

    @property
    def low_slot(self) -> MemorySlot:
        """The below-gap slot."""
        return self.slots[0]

    def slot_for(self, gpa: int) -> MemorySlot | None:
        """The slot covering ``gpa`` (None for the I/O gap itself)."""
        for slot in self.slots:
            if gpa in slot:
                return slot
        return None

    @property
    def total_bytes(self) -> int:
        """Total gPA bytes across all slots (reserve included)."""
        return sum(slot.gpa_range.size for slot in self.slots)

    # ------------------------------------------------------------------
    # Slot surgery (Section VI.C)

    @property
    def reserve_remaining(self) -> int:
        """Unreleased bytes of the self-ballooning reserve."""
        return self.reserve_bytes - self._reserve_released

    def release_reserve(self, nbytes: int) -> AddressRange:
        """Release ``nbytes`` of the ballooned-out reserve to the guest.

        Released ranges advance from the start of the reserve upward;
        raises ValueError when the reserve is exhausted.
        """
        if nbytes > self.reserve_remaining:
            raise ValueError(
                f"reserve has only {self.reserve_remaining} bytes left, "
                f"requested {nbytes}"
            )
        start = self._reserve_start + self._reserve_released
        self._reserve_released += nbytes
        return AddressRange.of_size(start, nbytes)

    def shrink_low_slot(self, removed: AddressRange) -> None:
        """Drop ``removed`` from the tail of the below-gap slot."""
        low = self.low_slot
        if removed.end != low.gpa_range.end or removed.start < low.gpa_range.start:
            raise ValueError("can only shrink the low slot from its tail")
        low.gpa_range = AddressRange(low.gpa_range.start, removed.start)

    def extend_high_slot(self, nbytes: int) -> AddressRange:
        """Grow the above-gap slot by ``nbytes``; returns the added range."""
        high = self.high_slot
        added = AddressRange.of_size(high.gpa_range.end, nbytes)
        high.gpa_range = AddressRange(high.gpa_range.start, added.end)
        return added
