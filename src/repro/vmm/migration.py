"""Dirty-page tracking for live migration: why Guest Direct exists.

Section III.C motivates Guest Direct mode as the configuration that
keeps "features like page sharing and live migration that depend on
4KB nested pages": pre-copy live migration write-protects the guest's
memory in the *nested* page table and logs faults to find dirty pages.
A VMM segment has no nested entries to write-protect, so Dual Direct
and VMM Direct cannot track dirtiness for covered memory -- Guest
Direct (and Base Virtualized) can.

This module implements the dirty log over the nested page table and a
pre-copy round driver, so the Table II trade-off is executable rather
than narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address import BASE_PAGE_SIZE
from repro.vmm.hypervisor import VirtualMachine


class MigrationUnsupportedError(Exception):
    """The VM's mode precludes dirty tracking for some of its memory."""


@dataclass
class PreCopyRound:
    """One iteration of the pre-copy loop."""

    index: int
    pages_sent: int
    pages_dirtied_during: int


@dataclass
class DirtyLog:
    """Write-protection-based dirty tracking over a VM's nested table.

    ``start`` write-protects every nested leaf; the VM reports guest
    writes through :meth:`record_write` (in real KVM, the EPT-violation
    handler); ``collect`` harvests and re-arms the log.
    """

    vm: VirtualMachine
    _armed: bool = False
    _dirty: set[int] = field(default_factory=set)

    def start(self) -> None:
        """Begin tracking; requires every guest page to be trackable."""
        segment = self.vm.vmm_segment
        if segment.enabled:
            raise MigrationUnsupportedError(
                f"{self.vm.name}: VMM segment covers "
                f"[{segment.base:#x}, {segment.limit:#x}); no nested "
                f"entries exist there to write-protect (Table II)"
            )
        for _, entry in self.vm.nested_table.leaves():
            entry.writable = False
        self._armed = True
        self._dirty.clear()

    @property
    def armed(self) -> bool:
        """True while the log is collecting."""
        return self._armed

    def record_write(self, gpa: int) -> None:
        """A guest write faulted on a write-protected nested entry."""
        if not self._armed:
            return
        gppn = gpa // BASE_PAGE_SIZE
        self._dirty.add(gppn)
        walked = self.vm.nested_table.lookup(gppn * BASE_PAGE_SIZE)
        if walked is not None:
            walked.steps[-1].entry.writable = True  # re-enable until next round

    def collect(self) -> set[int]:
        """Harvest the dirty set and re-arm protection for those pages."""
        dirty = set(self._dirty)
        self._dirty.clear()
        for gppn in dirty:
            walked = self.vm.nested_table.lookup(gppn * BASE_PAGE_SIZE)
            if walked is not None:
                walked.steps[-1].entry.writable = False
        return dirty

    def stop(self) -> None:
        """End tracking and restore write permissions."""
        for _, entry in self.vm.nested_table.leaves():
            entry.writable = True
        self._armed = False


def precopy_migrate(
    vm: VirtualMachine,
    write_rounds: list[list[int]],
    stop_threshold_pages: int = 64,
    max_rounds: int = 16,
) -> list[PreCopyRound]:
    """Drive a pre-copy migration against scripted guest write activity.

    ``write_rounds[i]`` lists the gPAs the guest writes while round
    ``i`` transfers memory.  Rounds continue until the dirty set falls
    below ``stop_threshold_pages`` (stop-and-copy) or ``max_rounds``.
    Returns the per-round log.  Raises
    :class:`MigrationUnsupportedError` for VMs whose mode precludes
    tracking (Dual/VMM Direct).
    """
    log = DirtyLog(vm)
    log.start()
    try:
        to_send = {frame for _, entry in vm.nested_table.leaves() for frame in [entry.frame]}
        rounds: list[PreCopyRound] = []
        for index in range(max_rounds):
            writes = write_rounds[index] if index < len(write_rounds) else []
            for gpa in writes:
                log.record_write(gpa)
            dirtied = log.collect()
            rounds.append(
                PreCopyRound(
                    index=index,
                    pages_sent=len(to_send),
                    pages_dirtied_during=len(dirtied),
                )
            )
            if len(dirtied) <= stop_threshold_pages:
                break
            to_send = dirtied
        return rounds
    finally:
        log.stop()
