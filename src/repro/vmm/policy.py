"""Mode policy for fragmented systems: Table III as executable logic.

Table III prescribes, per workload class and fragmentation state, which
mode a VM starts in, which techniques repair the fragmentation
(self-ballooning for the guest, compaction for the host) and which mode
the VM converges to.  :func:`plan_modes` encodes the table;
:class:`FragmentationManager` executes a plan against live guest-OS /
hypervisor state, driving the compaction daemon and upgrading the mode
when contiguity appears.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.address import BASE_PAGE_SIZE
from repro.core.escape_filter import EscapeFilter
from repro.core.modes import TranslationMode
from repro.core.segments import SegmentRegisters
from repro.faults.degradation import DegradationAction
from repro.guest.balloon import SelfBalloonDriver
from repro.guest.guest_os import GuestOS, SegmentCreationError
from repro.guest.process import GuestProcess
from repro.mem.compaction import CompactionDaemon
from repro.vmm.hypervisor import VirtualMachine, VmmSegmentError


class WorkloadClass(enum.Enum):
    """The two application categories of Tables II and III."""

    BIG_MEMORY = "big-memory"
    COMPUTE = "compute"


@dataclass(frozen=True)
class FragmentationState:
    """Which address spaces are too fragmented for a direct segment."""

    host_fragmented: bool = False
    guest_fragmented: bool = False


@dataclass(frozen=True)
class ModePlan:
    """One row of Table III."""

    initial_mode: TranslationMode
    final_mode: TranslationMode
    uses_self_ballooning: bool
    uses_compaction: bool

    @property
    def upgrades(self) -> bool:
        """True when the VM changes mode over time."""
        return self.initial_mode is not self.final_mode


def plan_modes(workload: WorkloadClass, state: FragmentationState) -> ModePlan:
    """Table III, verbatim.

    Unfragmented systems (not a Table III row) go straight to the best
    mode for the class: Dual Direct for big-memory, VMM Direct for
    compute.
    """
    big = workload is WorkloadClass.BIG_MEMORY
    host, guest = state.host_fragmented, state.guest_fragmented
    if big:
        if host and guest:
            return ModePlan(
                TranslationMode.GUEST_DIRECT,
                TranslationMode.DUAL_DIRECT,
                uses_self_ballooning=True,
                uses_compaction=True,
            )
        if host:
            return ModePlan(
                TranslationMode.GUEST_DIRECT,
                TranslationMode.DUAL_DIRECT,
                uses_self_ballooning=False,
                uses_compaction=True,
            )
        if guest:
            return ModePlan(
                TranslationMode.DUAL_DIRECT,
                TranslationMode.DUAL_DIRECT,
                uses_self_ballooning=True,
                uses_compaction=False,
            )
        return ModePlan(
            TranslationMode.DUAL_DIRECT,
            TranslationMode.DUAL_DIRECT,
            uses_self_ballooning=False,
            uses_compaction=False,
        )
    # Compute workloads never use guest segments; guest fragmentation is
    # irrelevant and only the host side gates VMM Direct.
    if host:
        return ModePlan(
            TranslationMode.BASE_VIRTUALIZED,
            TranslationMode.VMM_DIRECT,
            uses_self_ballooning=False,
            uses_compaction=True,
        )
    return ModePlan(
        TranslationMode.VMM_DIRECT,
        TranslationMode.VMM_DIRECT,
        uses_self_ballooning=False,
        uses_compaction=False,
    )


@dataclass(frozen=True)
class DegradationPolicy:
    """Tunables of the graceful-degradation ladder (hard faults).

    The ladder, mildest rung first: *escape* the page through the
    filter; if the filter is at capacity, *shrink* the segment past the
    page when it sits near an edge (cheap: a register write plus lazy
    PTEs for the small trimmed range); otherwise *fall back* to nested
    paging entirely (a mid-segment shrink would throw away half the
    contiguity for one bad frame).
    """

    #: A page within this fraction of the segment size from BASE or
    #: LIMIT counts as "near an edge" and is shrunk past rather than
    #: forcing a full fall-back.
    edge_fraction: float = 0.125

    def __post_init__(self) -> None:
        if not 0.0 <= self.edge_fraction <= 0.5:
            raise ValueError(
                f"edge_fraction must be in [0, 0.5], got {self.edge_fraction}"
            )


def choose_degradation(
    segment: SegmentRegisters,
    escape_filter: EscapeFilter,
    gppn: int,
    policy: DegradationPolicy | None = None,
) -> DegradationAction:
    """Pick the mildest viable ladder rung for a fault under ``segment``.

    ``gppn`` is the guest-physical page whose segment-computed host
    frame went bad.  Pure function of the segment geometry, the filter
    state and the policy -- the hypervisor performs the chosen action.
    """
    policy = policy or DegradationPolicy()
    if not escape_filter.is_full or gppn in escape_filter.inserted_pages:
        return DegradationAction.ESCAPE
    gpa = gppn * BASE_PAGE_SIZE
    edge_bytes = int(segment.size * policy.edge_fraction)
    near_base = gpa < segment.base + edge_bytes
    near_limit = gpa >= segment.limit - edge_bytes
    if near_base or near_limit:
        return DegradationAction.SHRINK
    return DegradationAction.FALLBACK


class FragmentationManager:
    """Executes a :class:`ModePlan` against a live VM.

    Typical life cycle::

        manager = FragmentationManager(vm, guest_os, process, plan)
        manager.prepare_guest()        # self-balloon if the plan says so
        while not manager.at_final_mode:
            manager.tick(pages_budget) # compaction progress + upgrade try

    ``tick`` returns the VM's current mode so callers can model the
    performance of each phase.
    """

    def __init__(
        self,
        vm: VirtualMachine,
        guest_os: GuestOS,
        process: GuestProcess,
        plan: ModePlan,
    ) -> None:
        self.vm = vm
        self.guest_os = guest_os
        self.process = process
        self.plan = plan
        self._compactor: CompactionDaemon | None = None
        if plan.uses_compaction:
            # The daemon may relocate any host block except those backing
            # this VM's nested page table or mapped guest memory (a real
            # kernel would migrate-and-remap them; we pin them instead
            # and let the "other tenants'" fragmentation blocks move).
            self._compactor = CompactionDaemon(
                vm.hypervisor.allocator,
                is_movable=lambda frame: frame not in self._pinned_frames,
            )
            # Compact toward exactly what create_vmm_segment will map:
            # the VM's above-gap memory slot.
            segment_bytes = vm.slots.high_slot.gpa_range.size
            self._compactor.request(segment_bytes // BASE_PAGE_SIZE)
        self._pinned_frames: set[int] = set()
        self._refresh_pins()

    def _refresh_pins(self) -> None:
        table = self.vm.nested_table
        pins = set(table.node_frames)
        for _, entry in table.leaves():
            pins.add(entry.frame)
        pins.update(self.vm.escaped_remaps.values())
        self._pinned_frames = pins

    # ------------------------------------------------------------------

    def prepare_guest(self) -> None:
        """Create the guest segment, self-ballooning first if needed."""
        needs_guest_segment = self.plan.initial_mode in (
            TranslationMode.GUEST_DIRECT,
            TranslationMode.DUAL_DIRECT,
        ) or self.plan.final_mode in (
            TranslationMode.GUEST_DIRECT,
            TranslationMode.DUAL_DIRECT,
        )
        if not needs_guest_segment:
            self._enter_initial_mode()
            return
        primary = self.process.primary_region
        if primary is None:
            raise SegmentCreationError("big-memory process lacks a primary region")
        try:
            self.guest_os.create_guest_segment(self.process)
        except SegmentCreationError:
            if not self.plan.uses_self_ballooning:
                raise
            driver = SelfBalloonDriver(self.guest_os, self.vm)
            driver.make_contiguous(primary.range.size)
            self.guest_os.create_guest_segment(self.process)
        self._enter_initial_mode()

    def _enter_initial_mode(self) -> None:
        mode = self.plan.initial_mode
        if mode.uses_vmm_segment:
            self.vm.create_vmm_segment()  # plan said host is unfragmented
        self.vm.set_mode(mode)

    # ------------------------------------------------------------------

    @property
    def at_final_mode(self) -> bool:
        """True once the VM runs in the plan's final mode."""
        return self.vm.mode is self.plan.final_mode

    def tick(self, page_budget: int = 4096) -> TranslationMode:
        """Advance compaction and upgrade the mode when possible."""
        if self.at_final_mode or self._compactor is None:
            return self.vm.mode
        self._refresh_pins()
        self._compactor.step(page_budget)
        if self._compactor.complete:
            try:
                self.vm.create_vmm_segment()
            except VmmSegmentError:
                return self.vm.mode  # raced; keep compacting
            self.vm.set_mode(self.plan.final_mode)
        return self.vm.mode
