"""Hypervisor model: VMs, nested paging, slots, policy, shadow, KSM."""
