"""Shadow paging: the software alternative the paper compares against.

Section II.A / IX.D: with shadow paging the VMM composes the guest page
table (gVA -> gPA) and its own nested mapping (gPA -> hPA) into a
*shadow* page table (gVA -> hPA) that the hardware walks directly -- TLB
misses cost a native 1D walk.  The price is coherence: every guest
page-table update must trap to the VMM (a VM exit) so the shadow copy
can be rebuilt, which is why workloads with frequent memory allocation
(memcached et al.) perform poorly under shadow paging (Section IX.D's
first category).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.address import BASE_PAGE_SIZE, PageSize
from repro.core.costs import CostModel
from repro.mem.page_table import PageTable


@dataclass
class ShadowStats:
    """Coherence-traffic accounting."""

    vm_exits: int = 0
    shadow_updates: int = 0
    full_rebuilds: int = 0

    def exit_cycles(self, costs: CostModel) -> float:
        """Cycles burned keeping the shadow coherent."""
        return self.vm_exits * costs.vm_exit_cycles


class ShadowPageTable:
    """A shadow (gVA -> hPA) table kept coherent with a guest table.

    ``translate_gpa`` is the VMM's gPA -> hPA function (nested-table
    lookup plus demand allocation).  The shadow is maintained lazily:
    :meth:`sync` folds one guest mapping in (charging a VM exit), and
    :meth:`observe_guest_updates` charges exits for guest PTE writes that
    occurred since the last check -- the write-protection traps a real
    shadow-paging VMM takes.
    """

    def __init__(
        self,
        guest_table: PageTable,
        translate_gpa: Callable[[int], int],
        alloc_frame: Callable[[], int],
    ) -> None:
        self.guest_table = guest_table
        self.translate_gpa = translate_gpa
        self.table = PageTable(alloc_frame)
        self.stats = ShadowStats()
        self._synced_update_count = guest_table.update_count

    def sync(self, gva: int) -> None:
        """Shadow fault: build the shadow entry for ``gva``.

        Composes the two translations for the page containing ``gva``
        and installs a shadow leaf at the *finer* of the two mapping
        granularities (a 2 MB guest page backed by 4 KB host pages must
        shadow at 4 KB, since the composition is only linear there).
        """
        guest_walk = self.guest_table.walk(gva)
        guest_size = guest_walk.page_size
        gpa_base = guest_walk.frame * BASE_PAGE_SIZE
        # Determine host granularity at the page's base.
        hpa_base = self.translate_gpa(gpa_base)
        shadow_size = PageSize.SIZE_4K if guest_size != PageSize.SIZE_4K else guest_size
        if guest_size == PageSize.SIZE_4K:
            gva_page = gva & ~(int(PageSize.SIZE_4K) - 1)
            self._install(gva_page, hpa_base, PageSize.SIZE_4K)
        else:
            # Shadow the specific 4 KB sub-page touched.
            sub = (gva % int(guest_size)) // BASE_PAGE_SIZE
            gva_page = (gva & ~(int(guest_size) - 1)) + sub * BASE_PAGE_SIZE
            hpa = self.translate_gpa(gpa_base + sub * BASE_PAGE_SIZE)
            self._install(gva_page, hpa, shadow_size)
        self.stats.vm_exits += 1
        self.stats.shadow_updates += 1

    def _install(self, gva_page: int, hpa_page: int, size: PageSize) -> None:
        if self.table.is_mapped(gva_page):
            self.table.unmap(gva_page)
        self.table.map(gva_page, hpa_page, size)

    def observe_guest_updates(self) -> int:
        """Charge VM exits for guest PTE writes since the last call.

        Returns how many updates were observed.  A real VMM traps each
        write to a write-protected guest page table; we read the guest
        table's update counter instead.
        """
        current = self.guest_table.update_count
        new_updates = current - self._synced_update_count
        self._synced_update_count = current
        self.stats.vm_exits += new_updates
        self.stats.shadow_updates += new_updates
        return new_updates

    def invalidate(self) -> None:
        """Guest CR3 write / large unmap: drop the whole shadow."""
        self.table.clear()
        self.stats.full_rebuilds += 1
        self.stats.vm_exits += 1


def shadow_slowdown_fraction(
    pt_updates_per_mref: float,
    ideal_cycles_per_ref: float,
    costs: CostModel,
) -> float:
    """Execution-time slowdown from shadow coherence traffic.

    The paper's Section IX.D observation in model form: a workload
    issuing ``pt_updates_per_mref`` guest page-table writes per million
    memory references pays one VM exit per write, so the slowdown over
    native is ``updates * exit_cost / base_time``.
    """
    exit_cycles = pt_updates_per_mref * costs.vm_exit_cycles
    base_cycles = 1e6 * ideal_cycles_per_ref
    return exit_cycles / base_cycles
