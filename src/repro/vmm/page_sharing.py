"""Content-based page sharing (KSM-style) and the Section IX.E study.

The VMM scans memory for pages with identical contents and keeps a
single copy-on-write frame for each distinct content [52].  VMM direct
segments preclude sharing for the memory they cover (Table II), so the
paper measures how much sharing big-memory workloads would lose: two
40 GB VMs were co-scheduled for every workload pair, and sharing never
saved more than 3% of memory, because big-memory data pages are unique
to the workload (only zero pages and OS/code pages deduplicate).

We model page contents as fingerprints: a page is either a zero page,
an OS/code page drawn from a pool common across VMs running the same
distro, or a workload data page unique to its VM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Fingerprint kinds.
ZERO_PAGE = ("zero", 0)


@dataclass(frozen=True)
class ContentProfile:
    """How a VM's pages fingerprint (per workload + OS image).

    * ``zero_fraction`` -- untouched/zeroed data pages;
    * ``os_pages`` -- kernel text/data and shared libraries, identical
      across VMs booted from the same image;
    * the remaining data pages are unique to the VM.
    """

    zero_fraction: float
    os_pages: int

    def fingerprints(
        self, total_pages: int, vm_id: int, seed: int = 0
    ) -> list[tuple[str, int]]:
        """Fingerprint every page of a VM."""
        rng = random.Random(seed * 1000003 + vm_id)
        prints: list[tuple[str, int]] = []
        data_pages = max(0, total_pages - self.os_pages)
        for i in range(self.os_pages):
            prints.append(("os", i))  # same across VMs: shareable
        for i in range(data_pages):
            if rng.random() < self.zero_fraction:
                prints.append(ZERO_PAGE)
            else:
                prints.append(("data", vm_id * (1 << 40) + i))  # unique
        return prints


@dataclass
class SharingResult:
    """Outcome of a KSM scan across a set of VMs."""

    total_pages: int
    distinct_pages: int

    @property
    def pages_saved(self) -> int:
        """Frames reclaimed by deduplication."""
        return self.total_pages - self.distinct_pages

    @property
    def savings_fraction(self) -> float:
        """Fraction of memory saved (the paper's <=3% for big-memory)."""
        return self.pages_saved / self.total_pages if self.total_pages else 0.0


def ksm_scan(vm_fingerprints: list[list[tuple[str, int]]]) -> SharingResult:
    """Deduplicate identical-content pages across VMs.

    Every set of pages with the same fingerprint collapses to one frame
    (plus copy-on-write bookkeeping we do not model).
    """
    total = sum(len(prints) for prints in vm_fingerprints)
    distinct = len({fp for prints in vm_fingerprints for fp in prints})
    return SharingResult(total_pages=total, distinct_pages=distinct)


def sharing_study(
    profile_a: ContentProfile,
    profile_b: ContentProfile,
    vm_pages: int,
    seed: int = 0,
) -> SharingResult:
    """Co-schedule two VMs (the paper's pairwise study) and scan."""
    prints_a = profile_a.fingerprints(vm_pages, vm_id=1, seed=seed)
    prints_b = profile_b.fingerprints(vm_pages, vm_id=2, seed=seed)
    return ksm_scan([prints_a, prints_b])
