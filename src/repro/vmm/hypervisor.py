"""The hypervisor: VMs, nested page tables, VMM segments, mode switching.

This is the KVM-shaped half of the prototype (Section VI): it owns host
physical memory, builds per-VM nested page tables on demand (nested
EPT-style faults), creates VMM direct segments from contiguous host
memory, escapes faulty pages through the escape filter, and implements
the VMM side of self-ballooning and the I/O-gap reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address import (
    BASE_PAGE_SIZE,
    AddressRange,
    PageSize,
    align_down,
    page_number,
)
from repro.core.costs import DEFAULT_COSTS
from repro.core.escape_filter import EscapeFilter
from repro.core.modes import TranslationMode
from repro.core.segments import SegmentRegisters
from repro.errors import (
    BalloonError,
    EscapeFilterFullError,
    VmmSegmentError,
    VmmSwapError,
)
from repro.faults.degradation import (
    DegradationAction,
    DegradationEvent,
    DegradationLog,
)
from repro.mem.badpages import BadPageList
from repro.mem.frame_allocator import FrameAllocator, OutOfMemoryError
from repro.mem.page_table import PageTable
from repro.mem.physical_layout import PhysicalLayout

# VmmSegmentError and VmmSwapError historically lived here; they are
# re-exported from repro.errors so existing imports keep working.
__all__ = [
    "Hypervisor",
    "VirtualMachine",
    "VmExitStats",
    "VmmSegmentError",
    "VmmSwapError",
]

#: Mode each segment-backed mode falls back to when its VMM segment is
#: lost (Table II column-wise: drop the gPA->hPA segment, keep the rest).
FALLBACK_MODES = {
    TranslationMode.DUAL_DIRECT: TranslationMode.GUEST_DIRECT,
    TranslationMode.VMM_DIRECT: TranslationMode.BASE_VIRTUALIZED,
}


@dataclass
class VmExitStats:
    """VM exit/entry accounting (segment state save/restore)."""

    exits: int = 0
    entries: int = 0


class VirtualMachine:
    """One guest VM: gPA layout, slots, nested page table, segment state."""

    def __init__(
        self,
        name: str,
        hypervisor: "Hypervisor",
        memory_bytes: int,
        nested_page_size: PageSize = PageSize.SIZE_4K,
        reserve_bytes: int = 0,
        emulate_segments: bool = False,
        nested_geometry=None,
    ) -> None:
        from repro.vmm.memory_slots import MemorySlots  # local to avoid cycle

        self.name = name
        self.hypervisor = hypervisor
        self.memory_bytes = memory_bytes
        self.nested_page_size = nested_page_size
        self.emulate_segments = emulate_segments
        self.guest_layout = PhysicalLayout(memory_bytes)
        self.slots = MemorySlots(self.guest_layout, reserve_bytes=reserve_bytes)
        #: ``nested_geometry`` is the G-stage geometry (e.g. Sv48x4 with
        #: its widened root); None keeps the x86-64 EPT default.
        self.nested_table = PageTable(
            hypervisor.alloc_pt_frame, geometry=nested_geometry
        )
        self.vmm_segment = SegmentRegisters.disabled()
        self.escape_filter = EscapeFilter()
        self.mode = TranslationMode.BASE_VIRTUALIZED
        self.exit_stats = VmExitStats()
        self._saved_segment_state: SegmentRegisters | None = None
        #: gPA pages whose host frames were reclaimed by ballooning.
        self.ballooned_gpa_pages: set[int] = set()
        #: gPA pages evicted to (modelled) host swap.
        self.swapped_gpa_pages: set[int] = set()
        self.vmm_swap_outs = 0
        self.vmm_swap_ins = 0
        #: Pages remapped around hard faults: gppn -> replacement frame.
        self.escaped_remaps: dict[int, int] = {}
        #: Host-frame reservation backing the VMM segment, as
        #: (start_frame, num_frames); outlives segment shrinks so the
        #: trimmed ranges keep their backing (and their data).
        self._segment_reservation: tuple[int, int] | None = None
        #: gPA ranges trimmed off the segment by graceful degradation,
        #: as (start_gppn, num_pages, offset_frames); still backed by
        #: the reservation at the segment-computed frames.
        self._degraded_ranges: list[tuple[int, int, int]] = []
        #: Injected fault arming: the next N balloon hot-adds fail.
        self.balloon_failures_armed = 0

    # ------------------------------------------------------------------
    # Nested paging (gPA -> hPA)

    def handle_nested_fault(self, gpa: int) -> None:
        """EPT-violation handler: back ``gpa`` with host memory.

        Three cases, mirroring the prototype's modified fault handler:

        * the gPA lies in the VMM segment but was filtered out -- either
          a genuinely escaped (faulty) page, remapped to a replacement
          frame, or a Bloom-filter false positive, mapped to its
          segment-computed frame (Section V: "the VMM must create
          mappings for these pages as well");
        * in emulation mode, any gPA inside the segment gets its
          computed mapping installed as a PTE (Section VI.B);
        * otherwise, ordinary demand paging at the VM's nested page size.
        """
        gppn = page_number(gpa)
        if gppn in self.swapped_gpa_pages:
            # Swap-in: restore residency with a fresh host frame.
            self.swapped_gpa_pages.discard(gppn)
            self.vmm_swap_ins += 1
            frame = self.hypervisor.alloc_host_block(0)
            self.nested_table.map(
                gppn * BASE_PAGE_SIZE, frame * BASE_PAGE_SIZE, PageSize.SIZE_4K
            )
            return
        segment = self.vmm_segment
        if segment.enabled and segment.covers(gpa):
            if self.escape_filter.may_contain(gppn):
                self._map_escaped_page(gppn)
                return
            if self.emulate_segments:
                gpa_page = align_down(gpa, PageSize.SIZE_4K)
                self.nested_table.map(
                    gpa_page, segment.translate_unchecked(gpa_page), PageSize.SIZE_4K
                )
                return
        frame = self.degraded_frame_for(gppn, create=True)
        if frame is not None:
            self.nested_table.map(
                gppn * BASE_PAGE_SIZE, frame * BASE_PAGE_SIZE, PageSize.SIZE_4K
            )
            return
        self._demand_map(gpa)

    def _map_escaped_page(self, gppn: int) -> None:
        computed_frame = gppn + self.vmm_segment.offset // BASE_PAGE_SIZE
        if self.hypervisor.bad_pages and computed_frame in self.hypervisor.bad_pages:
            # Genuine hard fault: remap to a healthy replacement frame.
            replacement = self.escaped_remaps.get(gppn)
            if replacement is None:
                replacement = self.hypervisor.alloc_host_block(0)
                self.escaped_remaps[gppn] = replacement
            frame = replacement
        else:
            # False positive: the segment-computed frame is fine; install
            # it as an ordinary PTE so paging reproduces the segment map.
            frame = computed_frame
        self.nested_table.map(gppn * BASE_PAGE_SIZE, frame * BASE_PAGE_SIZE, PageSize.SIZE_4K)

    def _demand_map(self, gpa: int) -> None:
        if self.slots.slot_for(gpa) is None:
            raise MemoryError(
                f"{self.name}: nested fault at {gpa:#x} outside all memory slots"
            )
        if page_number(gpa) in self.ballooned_gpa_pages:
            raise MemoryError(
                f"{self.name}: guest touched ballooned-out page {gpa:#x}"
            )
        slot = self.slots.slot_for(gpa)
        page_size = self.nested_page_size
        while True:
            gpa_page = align_down(gpa, page_size)
            # A large nested page must lie entirely within the memory
            # slot (KVM maps slots independently; a 1 GB mapping must
            # not straddle the I/O gap).  Fall back to a smaller size.
            if (
                page_size != PageSize.SIZE_4K
                and slot is not None
                and not slot.gpa_range.contains_range(
                    AddressRange.of_size(gpa_page, int(page_size))
                )
            ):
                page_size = (
                    PageSize.SIZE_2M
                    if page_size == PageSize.SIZE_1G
                    else PageSize.SIZE_4K
                )
                continue
            order = {PageSize.SIZE_4K: 0, PageSize.SIZE_2M: 9, PageSize.SIZE_1G: 18}[
                page_size
            ]
            try:
                frame = self.hypervisor.alloc_host_block(order)
            except OutOfMemoryError:
                if page_size == PageSize.SIZE_4K:
                    raise
                page_size = (
                    PageSize.SIZE_2M if page_size == PageSize.SIZE_1G else PageSize.SIZE_4K
                )
                continue
            if self.nested_table.is_mapped(gpa_page):
                self.hypervisor.allocator.free_block(frame)
                return
            try:
                self.nested_table.map(gpa_page, frame * BASE_PAGE_SIZE, page_size)
            except ValueError:
                # A finer mapping exists under this large page; retry small.
                self.hypervisor.allocator.free_block(frame)
                if page_size == PageSize.SIZE_4K:
                    raise
                page_size = PageSize.SIZE_4K
                continue
            return

    def populate_nested(self, gpa_ranges) -> int:
        """Eagerly back guest-physical ranges with host memory.

        Used at system-build time so measured runs see steady-state
        nested tables.  gPAs covered by an enabled hardware VMM segment
        are skipped (the segment translates them without a nested
        mapping); with ``emulate_segments`` the fault handler installs
        the computed PTEs instead.  Returns fault-handler invocations.
        """
        faults = 0
        hw_segment = self.vmm_segment.enabled and not self.emulate_segments
        for gpa_range in gpa_ranges:
            gpa = align_down(gpa_range.start, PageSize.SIZE_4K)
            while gpa < gpa_range.end:
                if hw_segment and self.vmm_segment.covers(gpa):
                    gpa += int(PageSize.SIZE_4K)
                    continue
                walked = self.nested_table.lookup(gpa)
                if walked is None:
                    self.handle_nested_fault(gpa)
                    faults += 1
                    walked = self.nested_table.lookup(gpa)
                    assert walked is not None
                gpa = align_down(gpa, walked.page_size) + int(walked.page_size)
        return faults

    # ------------------------------------------------------------------
    # VMM segment (Sections III.A / III.B)

    def create_vmm_segment(self, gpa_range: AddressRange | None = None) -> SegmentRegisters:
        """Map a contiguous gPA range onto contiguous host memory.

        Defaults to the VM's above-gap memory slot (everything above the
        I/O gap, including any memory relocated there by the I/O-gap
        reclaim).  Reserves contiguous host physical memory, programs
        the VMM segment registers, and escapes any hard-faulted host
        frames inside the reservation through the escape filter.
        """
        if gpa_range is None:
            gpa_range = self.slots.high_slot.gpa_range
        num_frames = gpa_range.size // BASE_PAGE_SIZE
        try:
            host_start = self.hypervisor.allocator.reserve_contiguous(num_frames)
        except OutOfMemoryError as exc:
            raise VmmSegmentError(
                f"no contiguous {gpa_range.size} bytes of host memory"
            ) from exc
        registers = SegmentRegisters.mapping(gpa_range, host_start * BASE_PAGE_SIZE)
        self.vmm_segment = registers
        self._segment_reservation = (host_start, num_frames)
        self._escape_bad_frames(host_start, num_frames)
        return registers

    def _escape_bad_frames(self, host_start: int, num_frames: int) -> None:
        offset_frames = self.vmm_segment.offset // BASE_PAGE_SIZE
        for bad_frame in self.hypervisor.bad_pages.bad_frames_in(host_start, num_frames):
            gppn = bad_frame - offset_frames
            self.escape_filter.insert(gppn)
            self._map_escaped_page(gppn)

    def drop_vmm_segment(self) -> None:
        """Tear down the VMM segment, returning its host memory.

        Freed via the reservation record (not BASE+OFFSET arithmetic):
        after a degradation shrink the registers cover only part of the
        reservation, but the whole reservation is still allocated.
        """
        if self._segment_reservation is None:
            return
        start_frame, num_frames = self._segment_reservation
        self.hypervisor.allocator.free_contiguous(start_frame, num_frames)
        self._segment_reservation = None
        self.vmm_segment = SegmentRegisters.disabled()
        self.escape_filter.clear()
        self.escaped_remaps.clear()
        self._degraded_ranges.clear()

    # ------------------------------------------------------------------
    # Graceful degradation (runtime hard faults, Section V spirit)

    @property
    def reserved_frame_range(self) -> tuple[int, int] | None:
        """Host frames ``[start, end)`` reserved for the VMM segment."""
        if self._segment_reservation is None:
            return None
        start, num = self._segment_reservation
        return start, start + num

    def degraded_frame_for(self, gppn: int, create: bool = False) -> int | None:
        """Host frame backing ``gppn`` in a degraded (trimmed) range.

        Trimmed ranges keep their reservation backing, so the old
        segment-computed frame is still the correct translation --
        unless that frame is itself bad, in which case the page is
        remapped to a healthy replacement (allocated on first touch when
        ``create`` is set; until then the translation is indeterminate
        and this returns None).
        """
        for start, num, offset_frames in self._degraded_ranges:
            if start <= gppn < start + num:
                computed = gppn + offset_frames
                if computed in self.hypervisor.bad_pages:
                    replacement = self.escaped_remaps.get(gppn)
                    if replacement is None and create:
                        replacement = self.hypervisor.alloc_host_block(0)
                        self.escaped_remaps[gppn] = replacement
                    return replacement
                return computed
        return None

    def arm_balloon_failures(self, count: int = 1) -> None:
        """Make the next ``count`` balloon hot-adds fail (fault injection)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.balloon_failures_armed += count

    def shrink_vmm_segment_past(self, gppn: int) -> int:
        """Shrink the segment past the faulty gPA page ``gppn``.

        Trims whichever end loses fewer pages (raising BASE past the
        page or lowering LIMIT onto it).  The trimmed range keeps its
        reservation backing and falls back to nested paging lazily
        (computed PTEs installed on next touch), so host physical
        addresses -- and with them the data -- are unchanged.  Returns
        the number of pages trimmed.
        """
        seg = self.vmm_segment
        gpa = gppn * BASE_PAGE_SIZE
        if not (seg.enabled and seg.covers(gpa)):
            raise ValueError(f"gPA page {gppn:#x} is not segment-covered")
        drop_from_base = (gpa + BASE_PAGE_SIZE) - seg.base
        drop_from_limit = seg.limit - gpa
        if drop_from_base <= drop_from_limit:
            dropped = AddressRange(seg.base, gpa + BASE_PAGE_SIZE)
            remaining = AddressRange(gpa + BASE_PAGE_SIZE, seg.limit)
        else:
            dropped = AddressRange(gpa, seg.limit)
            remaining = AddressRange(seg.base, gpa)
        self._degraded_ranges.append(
            (
                page_number(dropped.start),
                dropped.size // BASE_PAGE_SIZE,
                seg.offset // BASE_PAGE_SIZE,
            )
        )
        if remaining.size:
            self.vmm_segment = SegmentRegisters(
                base=remaining.start, limit=remaining.end, offset=seg.offset
            )
        else:
            self.vmm_segment = SegmentRegisters.disabled()
        return dropped.size // BASE_PAGE_SIZE

    def degrade_to_paging(self) -> TranslationMode:
        """Drop the segment datapath; fall back to the best paging mode.

        The reservation keeps backing the old range at identical host
        physical addresses; PTEs reproducing the segment translation are
        installed lazily by the nested fault handler.  Returns the new
        translation mode (Dual Direct -> Guest Direct, VMM Direct ->
        Base Virtualized).
        """
        seg = self.vmm_segment
        if seg.enabled:
            self._degraded_ranges.append(
                (
                    page_number(seg.base),
                    seg.size // BASE_PAGE_SIZE,
                    seg.offset // BASE_PAGE_SIZE,
                )
            )
        self.vmm_segment = SegmentRegisters.disabled()
        self.mode = FALLBACK_MODES.get(self.mode, self.mode)
        return self.mode

    def react_to_hard_fault(self, frame: int, ref_index: int) -> DegradationEvent | None:
        """Degrade gracefully around a new hard fault at host ``frame``.

        Returns the recorded :class:`DegradationEvent` when this VM owns
        the frame, or None so the hypervisor can try other owners.
        """
        reserved = self.reserved_frame_range
        if reserved is not None and reserved[0] <= frame < reserved[1]:
            seg = self.vmm_segment
            if seg.enabled:
                gppn = frame - seg.offset // BASE_PAGE_SIZE
                if seg.covers(gppn * BASE_PAGE_SIZE):
                    return self._degrade_segment_page(gppn, frame, ref_index)
            return self._remap_degraded_frame(frame, ref_index)
        return self._remap_paged_frame(frame, ref_index)

    def _degrade_segment_page(
        self, gppn: int, frame: int, ref_index: int
    ) -> DegradationEvent:
        """The degradation ladder for a fault under the live segment."""
        from repro.vmm.policy import choose_degradation  # noqa: PLC0415 (cycle)

        log = self.hypervisor.degradation_log
        costs = DEFAULT_COSTS
        mode = self.mode
        action = choose_degradation(
            self.vmm_segment,
            self.escape_filter,
            gppn,
            self.hypervisor.degradation_policy,
        )
        if action is DegradationAction.ESCAPE:
            try:
                self.escape_filter.insert(gppn)
            except EscapeFilterFullError:
                # Re-run the ladder knowing escape is off the table.
                action = choose_degradation(
                    self.vmm_segment,
                    self.escape_filter,
                    gppn,
                    self.hypervisor.degradation_policy,
                )
            else:
                self._map_escaped_page(gppn)
                return log.record(
                    ref_index,
                    self.name,
                    DegradationAction.ESCAPE,
                    f"hard fault at frame {frame:#x}: escaped gPA page {gppn:#x}",
                    from_mode=mode,
                    to_mode=mode,
                    cycle_cost=costs.page_fault_cycles,
                )
        if action is DegradationAction.SHRINK:
            trimmed = self.shrink_vmm_segment_past(gppn)
            if not self.vmm_segment.enabled:
                # The shrink consumed the whole segment.
                self.mode = FALLBACK_MODES.get(self.mode, self.mode)
            return log.record(
                ref_index,
                self.name,
                DegradationAction.SHRINK,
                f"hard fault at frame {frame:#x}: shrank segment past gPA "
                f"page {gppn:#x} ({trimmed} pages trimmed)",
                from_mode=mode,
                to_mode=self.mode,
                cycle_cost=costs.vm_exit_cycles + costs.page_fault_cycles,
            )
        new_mode = self.degrade_to_paging()
        return log.record(
            ref_index,
            self.name,
            DegradationAction.FALLBACK,
            f"hard fault at frame {frame:#x}: escape filter full and page "
            f"mid-segment; dropped segment, fell back to nested paging",
            from_mode=mode,
            to_mode=new_mode,
            cycle_cost=costs.vm_exit_cycles + costs.page_fault_cycles,
        )

    def _remap_degraded_frame(self, frame: int, ref_index: int) -> DegradationEvent:
        """Fault in a reservation range already trimmed off the segment."""
        log = self.hypervisor.degradation_log
        costs = DEFAULT_COSTS
        for start, num, offset_frames in self._degraded_ranges:
            gppn = frame - offset_frames
            if start <= gppn < start + num:
                gpa = gppn * BASE_PAGE_SIZE
                walked = self.nested_table.lookup(gpa)
                if walked is not None and page_number(walked.translate(gpa)) == frame:
                    # Already paged at the bad frame: migrate it now.
                    replacement = self.hypervisor.alloc_host_block(0)
                    self.escaped_remaps[gppn] = replacement
                    self.nested_table.unmap(gpa)
                    self.nested_table.map(
                        gpa, replacement * BASE_PAGE_SIZE, PageSize.SIZE_4K
                    )
                    detail = (
                        f"hard fault at frame {frame:#x}: migrated degraded "
                        f"gPA page {gppn:#x} to frame {replacement:#x}"
                    )
                else:
                    # Untouched: the lazy computed-PTE path remaps it on
                    # first access (degraded_frame_for sees the bad frame).
                    detail = (
                        f"hard fault at frame {frame:#x}: degraded gPA page "
                        f"{gppn:#x} will be remapped on first touch"
                    )
                return log.record(
                    ref_index,
                    self.name,
                    DegradationAction.REMAP,
                    detail,
                    from_mode=self.mode,
                    to_mode=self.mode,
                    cycle_cost=costs.page_fault_cycles,
                )
        return log.record(
            ref_index,
            self.name,
            DegradationAction.TOLERATE,
            f"hard fault at frame {frame:#x}: inside the reservation but "
            f"outside the segment and every degraded range",
            from_mode=self.mode,
            to_mode=self.mode,
        )

    def _remap_paged_frame(self, frame: int, ref_index: int) -> DegradationEvent | None:
        """Migrate an ordinary paged frame this VM owns, if it owns it."""
        log = self.hypervisor.degradation_log
        costs = DEFAULT_COSTS
        if frame in self.nested_table.node_frames:
            return log.record(
                ref_index,
                self.name,
                DegradationAction.TOLERATE,
                f"hard fault at frame {frame:#x}: nested page-table node "
                f"(reconstructible from VMM records)",
                from_mode=self.mode,
                to_mode=self.mode,
            )
        for virt, entry in self.nested_table.leaves():
            span = int(entry.page_size) // BASE_PAGE_SIZE
            if not entry.frame <= frame < entry.frame + span:
                continue
            order = {
                PageSize.SIZE_4K: 0,
                PageSize.SIZE_2M: 9,
                PageSize.SIZE_1G: 18,
            }[entry.page_size]
            replacement = self.hypervisor.alloc_host_block(order)
            self.nested_table.unmap(virt)
            self.nested_table.map(
                virt, replacement * BASE_PAGE_SIZE, entry.page_size
            )
            # The faulty block goes back to the allocator, which
            # quarantines it on any later allocation attempt.
            self.hypervisor.allocator.free_block(entry.frame)
            return log.record(
                ref_index,
                self.name,
                DegradationAction.REMAP,
                f"hard fault at frame {frame:#x}: migrated "
                f"{entry.page_size.label} nested page at gPA {virt:#x} to "
                f"frame {replacement:#x}",
                from_mode=self.mode,
                to_mode=self.mode,
                cycle_cost=costs.page_fault_cycles * span,
            )
        return None

    # ------------------------------------------------------------------
    # Mode management

    def set_mode(self, mode: TranslationMode) -> None:
        """Switch the VM's translation mode (hardware supports this
        dynamically, Section III.E)."""
        if not mode.virtualized:
            raise ValueError(f"{mode} is not a virtualized mode")
        if mode.uses_vmm_segment and not self.vmm_segment.enabled:
            raise VmmSegmentError(f"{mode} requires a VMM segment; create one first")
        self.mode = mode

    # ------------------------------------------------------------------
    # VM exit/entry: segment state save/restore (Section III.A)

    def vm_exit(self) -> None:
        """Hardware saves BASE_V/LIMIT_V/OFFSET_V and the escape filter."""
        self._saved_segment_state = self.vmm_segment
        self._saved_filter_state = self.escape_filter.save()
        self.exit_stats.exits += 1

    def vm_entry(self) -> None:
        """Hardware restores the state saved at the matching exit."""
        if self._saved_segment_state is not None:
            self.vmm_segment = self._saved_segment_state
            self.escape_filter.restore(self._saved_filter_state)
        self.exit_stats.entries += 1

    # ------------------------------------------------------------------
    # Table II capability checks: what the active segments preclude

    def can_share_page(self, gppn: int) -> bool:
        """Content-based sharing is possible for pages the VMM maps with
        page tables; VMM-segment-covered memory cannot be deduplicated
        (Table II: page sharing 'limited' for Dual/VMM Direct).

        Escaped pages are paged and therefore shareable again.
        """
        gpa = gppn * BASE_PAGE_SIZE
        if not self.vmm_segment.enabled or not self.vmm_segment.covers(gpa):
            return True
        return self.escape_filter.may_contain(gppn)

    def can_vmm_swap_page(self, gppn: int) -> bool:
        """VMM swapping needs a nested mapping to invalidate; segment-
        covered pages have none (Table II: VMM swapping 'limited')."""
        return self.can_share_page(gppn)

    def can_balloon_page(self, gppn: int) -> bool:
        """Ballooning reclaims individual nested mappings, so it is
        likewise limited to memory outside the VMM segment."""
        return self.can_share_page(gppn)

    def vmm_swap_out(self, gppn: int) -> None:
        """Evict one guest-physical page to host swap.

        Requires a 4 KB nested mapping to invalidate; segment-covered
        pages raise :class:`VmmSwapError` (Table II: VMM swapping
        'limited' for Dual/VMM Direct).  The guest's next access
        refaults the page in through the nested fault handler.
        """
        if not self.can_vmm_swap_page(gppn):
            raise VmmSwapError(
                f"gPA page {gppn:#x} is VMM-segment-covered; no nested "
                f"entry exists to evict (Table II)"
            )
        gpa = gppn * BASE_PAGE_SIZE
        walked = self.nested_table.lookup(gpa)
        if walked is None:
            raise VmmSwapError(f"gPA page {gppn:#x} is not resident")
        if walked.page_size != PageSize.SIZE_4K:
            raise VmmSwapError(
                f"gPA page {gppn:#x} is mapped by a "
                f"{walked.page_size.label} nested page; split it first"
            )
        removed = self.nested_table.unmap(gpa)
        self.hypervisor.allocator.free_block(removed.frame)
        self.swapped_gpa_pages.add(gppn)
        self.vmm_swap_outs += 1

    # ------------------------------------------------------------------
    # Balloon port (guest's SelfBalloonDriver calls these, Section VI.C)

    def reclaim_guest_frames(self, frames: list[int]) -> None:
        """Free the host backing of ballooned-out guest frames."""
        for gframe in frames:
            self.ballooned_gpa_pages.add(gframe)
            entry = self.nested_table.lookup(gframe * BASE_PAGE_SIZE)
            if entry is not None and entry.page_size == PageSize.SIZE_4K:
                removed = self.nested_table.unmap(gframe * BASE_PAGE_SIZE)
                self.hypervisor.allocator.free_block(removed.frame)

    def release_reserved_region(self, num_frames: int) -> AddressRange:
        """Hot-add reserved contiguous gPA back to the guest.

        An armed injected failure (see :meth:`arm_balloon_failures`)
        makes the hot-add fail after the reclaim half of the inflation
        already happened -- the worst case for the driver, which must
        deflate to recover.  The tolerated failure is logged.
        """
        if self.balloon_failures_armed:
            self.balloon_failures_armed -= 1
            self.hypervisor.degradation_log.record(
                self.hypervisor.current_ref_index,
                self.name,
                DegradationAction.TOLERATE,
                f"balloon hot-add of {num_frames} frames failed (injected); "
                f"driver deflated and continued",
                from_mode=self.mode,
                to_mode=self.mode,
            )
            raise BalloonError(
                f"{self.name}: hot-add of {num_frames} frames failed "
                f"(injected fault)"
            )
        return self.slots.release_reserve(num_frames * BASE_PAGE_SIZE)

    def unballoon_guest_frames(self, frames: list[int]) -> None:
        """Roll back :meth:`reclaim_guest_frames` for a failed inflation.

        The host backing is not restored eagerly; dropping the pages
        from the ballooned set lets them refault in on next touch.
        """
        for gframe in frames:
            self.ballooned_gpa_pages.discard(gframe)

    # ------------------------------------------------------------------
    # Hotplug port (I/O-gap reclaim, Section VI.C)

    def shrink_below_gap_slot(self, removed: AddressRange) -> None:
        """Guest unplugged ``removed``; shrink slot 0 and free backing."""
        self.slots.shrink_low_slot(removed)
        for gppn in removed.pages():
            entry = self.nested_table.lookup(gppn * BASE_PAGE_SIZE)
            if entry is not None and entry.page_size == PageSize.SIZE_4K:
                freed = self.nested_table.unmap(gppn * BASE_PAGE_SIZE)
                self.hypervisor.allocator.free_block(freed.frame)

    def extend_above_gap_slot(self, num_frames: int) -> AddressRange:
        """Grow slot 1 by ``num_frames`` frames of fresh gPA space."""
        return self.slots.extend_high_slot(num_frames * BASE_PAGE_SIZE)


@dataclass
class Hypervisor:
    """Host-side state: physical memory, bad pages, the VM table."""

    host_memory_bytes: int
    bad_pages: BadPageList = field(default_factory=BadPageList)
    include_io_gap: bool = False
    layout: PhysicalLayout = field(init=False)
    allocator: FrameAllocator = field(init=False)
    vms: dict[str, VirtualMachine] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.layout = PhysicalLayout(
            self.host_memory_bytes, include_io_gap=self.include_io_gap
        )
        self.allocator = FrameAllocator(self.layout.regions)
        self._quarantined: list[int] = []
        #: Flight recorder for every graceful-degradation reaction.
        self.degradation_log = DegradationLog()
        #: Measured-trace reference index of the event being delivered
        #: (-1 outside a measured run); set by the fault injector.
        self.current_ref_index = -1
        #: Ladder policy; None means "defaults" (resolved lazily because
        #: repro.vmm.policy imports this module).
        self.degradation_policy = None

    def create_vm(
        self,
        name: str,
        memory_bytes: int,
        nested_page_size: PageSize = PageSize.SIZE_4K,
        reserve_bytes: int = 0,
        emulate_segments: bool = False,
        nested_geometry=None,
    ) -> VirtualMachine:
        """Register a new VM (its memory is demand-allocated, not eager)."""
        if name in self.vms:
            raise ValueError(f"VM {name!r} already exists")
        vm = VirtualMachine(
            name,
            self,
            memory_bytes,
            nested_page_size=nested_page_size,
            reserve_bytes=reserve_bytes,
            emulate_segments=emulate_segments,
            nested_geometry=nested_geometry,
        )
        self.vms[name] = vm
        return vm

    def destroy_vm(self, name: str) -> None:
        """Tear down a VM, returning all its host memory.

        Nested leaves that point into the segment reservation (computed
        PTEs for escaped false positives and degraded ranges) are not
        individual allocations; they are returned wholesale when the
        reservation itself is dropped.
        """
        vm = self.vms.pop(name)
        reserved = vm.reserved_frame_range
        for _, entry in vm.nested_table.leaves():
            if reserved is not None and reserved[0] <= entry.frame < reserved[1]:
                continue
            self.allocator.free_block(entry.frame)
        vm.nested_table.clear(free_frame=self.allocator.free_block)
        self.allocator.free_block(vm.nested_table.root.frame)
        vm.drop_vmm_segment()

    def inject_hard_fault(self, frame: int) -> DegradationEvent:
        """A DRAM hard fault develops at host ``frame`` mid-run.

        Section V's motivating scenario, made dynamic: the frame is
        added to the bad-page list, then the system degrades gracefully
        -- free frames are quarantined; frames backing VM memory are
        escaped, shrunk around, migrated, or force a fall-back to nested
        paging, whichever rung the policy ladder picks.  Returns the
        recorded :class:`DegradationEvent`.
        """
        ref = self.current_ref_index
        self.bad_pages.mark_bad(frame)
        try:
            self.allocator.alloc_specific(frame, 0)
        except OutOfMemoryError:
            pass  # in use -- find the owner below
        else:
            self._quarantined.append(frame)
            return self.degradation_log.record(
                ref,
                "",
                DegradationAction.QUARANTINE,
                f"hard fault at free frame {frame:#x}: quarantined",
            )
        for vm in self.vms.values():
            event = vm.react_to_hard_fault(frame, ref)
            if event is not None:
                return event
        return self.degradation_log.record(
            ref,
            "",
            DegradationAction.TOLERATE,
            f"hard fault at frame {frame:#x}: allocated but not VM memory "
            f"(quarantined on next free)",
        )

    # ------------------------------------------------------------------
    # Host allocation helpers

    def alloc_host_block(self, order: int) -> int:
        """Allocate a host block, quarantining blocks with hard faults.

        A real OS keeps faulty frames on a bad-page list and never
        allocates them [26]; we model that by retrying around any block
        that contains a bad frame.
        """
        for _ in range(64):
            frame = self.allocator.alloc_block(order)
            size = 1 << order
            if not any(
                bad in self.bad_pages for bad in range(frame, frame + size)
            ):
                return frame
            self._quarantined.append(frame)
        raise OutOfMemoryError("could not find a healthy host block")

    def alloc_pt_frame(self) -> int:
        """Frame for a nested-page-table node."""
        return self.alloc_host_block(0)
