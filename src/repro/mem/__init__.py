"""Physical-memory substrate: allocator, page tables, layout, compaction."""
