"""Incremental memory compaction: relocate pages to rebuild contiguity.

Section IV: host physical memory fragmentation is addressed by "the slower
technique of memory compaction which slowly relocates pages and creates a
VMM segment", as Linux's compaction daemon does [20].  Table III's policy
uses it to upgrade modes over time: a VM starts in Guest Direct (or Base
Virtualized) and, once compaction has produced enough contiguous host
memory, the VMM creates a VMM segment and switches to Dual Direct (or
VMM Direct).

The daemon mirrors Linux's two-scanner structure: a *migration scanner*
walks the target window collecting movable allocated blocks, and a *free
scanner* keeps a queue of free blocks outside the window (snapshotted
from the allocator, highest addresses first) to migrate into.  Work is
performed in bounded steps so experiments can model gradual progress:
each :meth:`step` call migrates at most a page budget, invoking a
relocation callback per moved block so the owner (e.g. the VMM's nested
page table) can update its mappings.
"""

from __future__ import annotations

import bisect
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.mem.frame_allocator import MAX_ORDER, FrameAllocator


@dataclass
class CompactionStats:
    """Work performed by the daemon so far."""

    pages_moved: int = 0
    blocks_moved: int = 0
    steps: int = 0
    windows_abandoned: int = 0
    free_scanner_refills: int = 0


class CompactionDaemon:
    """Creates a contiguous free window by migrating movable allocations.

    Parameters
    ----------
    allocator:
        The physical allocator to compact.
    is_movable:
        Predicate over block start frames; unmovable blocks (e.g. pinned
        kernel memory) make a window unusable.
    on_move:
        Callback ``(old_frame, new_frame, order)`` invoked after a block's
        contents are migrated, before the old block is freed.  The owner
        must rewrite any translations pointing at the old frames.
    """

    def __init__(
        self,
        allocator: FrameAllocator,
        is_movable: Callable[[int], bool] = lambda frame: True,
        on_move: Callable[[int, int, int], None] = lambda old, new, order: None,
    ) -> None:
        self._allocator = allocator
        self._is_movable = is_movable
        self._on_move = on_move
        self._goal_frames: int | None = None
        self._window: tuple[int, int] | None = None
        self._dest: dict[int, deque[int]] | None = None  # order -> free frames
        self._migration_queue: deque[tuple[int, int]] | None = None
        self._rescanned = False
        self._abandoned_windows: set[int] = set()
        self.stats = CompactionStats()

    # ------------------------------------------------------------------

    def request(self, num_frames: int) -> None:
        """Set the goal: a free contiguous run of ``num_frames`` frames."""
        if num_frames <= 0:
            raise ValueError("requested run must be positive")
        self._goal_frames = num_frames
        self._window = None
        self._dest = None
        self._migration_queue = None
        self._abandoned_windows.clear()

    @property
    def goal_frames(self) -> int | None:
        """Currently requested run length, if any."""
        return self._goal_frames

    @property
    def complete(self) -> bool:
        """True once the allocator has a free run of the requested size."""
        if self._goal_frames is None:
            return False
        return self._allocator.largest_free_run_frames() >= self._goal_frames

    def run_to_completion(
        self, step_pages: int = 4096, max_steps: int = 100_000
    ) -> bool:
        """Drive :meth:`step` until done; returns success."""
        for _ in range(max_steps):
            if self.complete:
                return True
            if self.step(step_pages) == 0 and not self.complete:
                return False
        return self.complete

    def step(self, page_budget: int) -> int:
        """Migrate up to ``page_budget`` pages toward the goal.

        Returns the number of pages actually moved (0 when finished or
        stuck: nothing movable, or no free space to migrate into).
        """
        if self._goal_frames is None or self.complete:
            return 0
        self.stats.steps += 1
        if self._window is None:
            self._window = self._choose_window(self._goal_frames)
            self._dest = None
            self._migration_queue = None
            if self._window is None:
                return 0
        if self._dest is None:
            self._refill_free_scanner()
        if self._migration_queue is None:
            self._refill_migration_scanner()
        moved = 0
        while moved < page_budget:
            block = self._next_block_in_window()
            if block is None:
                # Window evacuated (or only unmovable blocks remain) but
                # the goal is not met; pick a new window next step.
                self.stats.windows_abandoned += 1
                self._abandoned_windows.add(self._window[0])
                self._window = None
                break
            frame, order = block
            if not self._is_movable(frame):
                continue  # consumed; skipped in place
            if not self._migrate(frame, order):
                break  # no destination space: stuck for now
            moved += 1 << order
        self.stats.pages_moved += moved
        return moved

    # ------------------------------------------------------------------
    # Migration scanner

    def _refill_migration_scanner(self) -> None:
        """Snapshot the allocated blocks overlapping the window."""
        assert self._window is not None
        start, end = self._window
        blocks = sorted(
            (frame, order)
            for frame, order in self._allocator.allocations().items()
            if frame < end and frame + (1 << order) > start
        )
        self._migration_queue = deque(blocks)
        self._rescanned = False

    def _next_block_in_window(self) -> tuple[int, int] | None:
        """Consume the next still-allocated block of the window."""
        assert self._migration_queue is not None
        while True:
            while self._migration_queue:
                frame, order = self._migration_queue.popleft()
                if self._allocator.allocation_order(frame) == order:
                    return frame, order
            # Queue drained: rescan once per window in case blocks were
            # allocated into it (or skipped as unmovable) meanwhile.
            if self._rescanned:
                return None
            self._refill_migration_scanner()
            self._rescanned = True
            # Everything the rescan found that is unmovable would loop
            # forever; filter those out now.
            self._migration_queue = deque(
                (f, o) for f, o in self._migration_queue if self._is_movable(f)
            )
            if not self._migration_queue:
                return None

    def _migrate(self, frame: int, order: int) -> bool:
        new_frame = self._take_destination(order)
        if new_frame is None:
            return False
        self._on_move(frame, new_frame, order)
        self._allocator.free_block(frame)
        self.stats.blocks_moved += 1
        return True

    # ------------------------------------------------------------------
    # Free scanner

    def _refill_free_scanner(self) -> None:
        """Snapshot the free blocks outside the window, high-first.

        Like Linux's free scanner, destinations are taken from the far
        end of memory so the evacuated window is not refilled.
        """
        assert self._window is not None
        start, end = self._window
        dest: dict[int, deque[int]] = {order: deque() for order in range(MAX_ORDER + 1)}
        blocks: list[tuple[int, int]] = []
        for order in range(MAX_ORDER + 1):
            size = 1 << order
            for frame in self._allocator.free_blocks(order):
                if frame + size <= start or frame >= end:
                    blocks.append((frame, order))
        # Highest addresses first: keeps low memory free for the window.
        blocks.sort(reverse=True)
        for frame, order in blocks:
            dest[order].append(frame)
        self._dest = dest
        self.stats.free_scanner_refills += 1

    def _take_destination(self, order: int) -> int | None:
        """Claim a free block of ``order`` outside the window.

        Pops from the snapshot queue (verifying the block is still free),
        splitting a larger block when the exact order is exhausted.
        Returns the allocated start frame, or None when out of space.
        """
        assert self._dest is not None
        for candidate in range(order, MAX_ORDER + 1):
            queue = self._dest[candidate]
            while queue:
                frame = queue.popleft()
                if not self._allocator.is_free_block(frame, candidate):
                    continue  # stale snapshot entry
                if candidate == order:
                    self._allocator.alloc_specific(frame, order)
                    return frame
                # Split: take the low piece, requeue the rest.
                self._allocator.alloc_specific(frame, order)
                remainder = frame + (1 << order)
                end = frame + (1 << candidate)
                while remainder < end:
                    piece_order = min(
                        MAX_ORDER,
                        (remainder & -remainder).bit_length() - 1,
                    )
                    while remainder + (1 << piece_order) > end:
                        piece_order -= 1
                    self._dest[piece_order].appendleft(remainder)
                    remainder += 1 << piece_order
                return frame
        # Snapshot exhausted; one refill attempt in case frees happened
        # (e.g. blocks we migrated out of the window earlier coalesced).
        self._refill_free_scanner()
        for candidate in range(order, MAX_ORDER + 1):
            if self._dest[candidate]:
                queue = self._dest[candidate]
                while queue:
                    frame = queue.popleft()
                    if not self._allocator.is_free_block(frame, candidate):
                        continue
                    self._allocator.alloc_specific(frame, order)
                    if candidate > order:
                        remainder = frame + (1 << order)
                        end = frame + (1 << candidate)
                        while remainder < end:
                            piece_order = min(
                                MAX_ORDER,
                                (remainder & -remainder).bit_length() - 1,
                            )
                            while remainder + (1 << piece_order) > end:
                                piece_order -= 1
                            self._dest[piece_order].appendleft(remainder)
                            remainder += 1 << piece_order
                    return frame
        return None

    # ------------------------------------------------------------------
    # Window selection

    def _choose_window(self, num_frames: int) -> tuple[int, int] | None:
        """Pick the cheapest window of ``num_frames`` frames to evacuate.

        Scans candidate windows at a coarse stride, scoring each by the
        number of allocated frames it overlaps (via a prefix sum over
        the sorted allocation list, so the scan is cheap even with a
        million live blocks).  Windows that previously failed to
        evacuate (unmovable blocks) are skipped.
        """
        allocations = sorted(self._allocator.allocations().items())
        total = self._allocator.total_frames
        if num_frames > total:
            return None
        starts = [frame for frame, _ in allocations]
        prefix = [0]
        for _, order in allocations:
            prefix.append(prefix[-1] + (1 << order))

        def cost(start: int, end: int) -> int:
            # Blocks are small relative to the window; counting blocks
            # whose start lies in [start, end) is accurate to one block
            # at each boundary.
            lo = bisect.bisect_left(starts, start)
            hi = bisect.bisect_left(starts, end)
            return prefix[hi] - prefix[lo]

        stride = max(1, num_frames // 8)
        best: tuple[int, tuple[int, int]] | None = None
        window_start = 0
        while window_start + num_frames <= total + stride:
            start = min(window_start, total - num_frames)
            end = start + num_frames
            if start not in self._abandoned_windows:
                c = cost(start, end)
                if best is None or c < best[0]:
                    best = (c, (start, end))
                    if c == 0:
                        break
            window_start += stride
        return best[1] if best else None
