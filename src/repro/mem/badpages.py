"""Bad-page tracking: permanent hard faults in physical memory.

Section V motivates the escape filter with DRAM hard faults: commodity
OSes keep a bad-page list and never allocate those frames [26], but a
single bad frame inside an otherwise contiguous region would prevent a
direct segment from covering it.  This module models the bad-page list
and the fault-injection used by the Figure 13 experiment (1..16 bad pages
drawn uniformly at random, 30 trials each).
"""

from __future__ import annotations

import random
from collections.abc import Iterable


class BadPageList:
    """The set of physically faulty frames of one machine."""

    def __init__(self, frames: Iterable[int] = ()) -> None:
        self._frames: set[int] = set(frames)

    @classmethod
    def random(
        cls, num_bad: int, frame_range: range, *, seed: int
    ) -> "BadPageList":
        """Draw ``num_bad`` distinct faulty frames uniformly from a range.

        This is the fault-injection of Section IX.C ("30 different random
        sets of bad pages" per count).  ``seed`` is keyword-only and has
        no default on purpose: a silently-shared default seed makes "30
        random trials" draw the identical bad-page set 30 times.  Derive
        a distinct seed per trial (see experiments/figure13.py).
        """
        if num_bad > len(frame_range):
            raise ValueError("more bad pages requested than frames available")
        rng = random.Random(seed)
        return cls(rng.sample(frame_range, num_bad))

    @property
    def frames(self) -> frozenset[int]:
        """The faulty frames."""
        return frozenset(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, frame: int) -> bool:
        return frame in self._frames

    def mark_bad(self, frame: int) -> None:
        """Record a newly-discovered hard fault."""
        self._frames.add(frame)

    def bad_frames_in(self, start_frame: int, num_frames: int) -> list[int]:
        """Faulty frames inside ``[start_frame, start_frame + num_frames)``.

        These are the frames a direct segment over that range must escape.
        """
        end = start_frame + num_frames
        return sorted(f for f in self._frames if start_frame <= f < end)
