"""Buddy allocator over 4 KB physical frames, with fragmentation tooling.

Both the guest OS and the VMM need a physical-frame allocator:

* ordinary demand paging allocates single frames (order 0);
* large pages allocate aligned order-9 (2 MB) and order-18 (1 GB) blocks;
* direct segments need one huge contiguous reservation (Section VI.A);
* the fragmentation experiments (Section IV) need a way to shatter free
  memory so that no large contiguous run exists, and the compaction
  daemon needs to relocate frames to reassemble one.

The allocator is sparse: free blocks are kept as per-order sets of block
start frames, so a 96 GB address space costs memory proportional to the
number of live blocks, not the number of frames.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.address import BASE_PAGE_SIZE, AddressRange

# Historical home of OutOfMemoryError; canonical definitions now live in
# repro.errors.  Re-exported so existing imports keep working.
from repro.errors import OutOfMemoryError, TransientAllocationError

__all__ = [
    "MAX_ORDER",
    "OutOfMemoryError",
    "TransientAllocationError",
    "FrameAllocator",
    "RetryStats",
]

#: Largest buddy order we manage: order 18 = 2**18 frames = 1 GB blocks.
MAX_ORDER = 18

#: Retry budget for transiently-failing allocations, and the modelled
#: cost of the first backoff (doubled on each further attempt).
MAX_ALLOC_RETRIES = 8
BACKOFF_BASE_CYCLES = 500


@dataclass
class RetryStats:
    """Accounting for the allocator's transient-failure retry loop."""

    attempts: int = 0
    transient_failures: int = 0
    backoff_cycles: int = 0


class FrameAllocator:
    """Buddy allocator over the frames of one or more DRAM regions.

    Frames are numbered by physical address / 4 KB.  Blocks of order ``k``
    cover ``2**k`` frames and are naturally aligned.  The allocator
    tracks every allocation so fragmentation statistics and compaction
    can enumerate live blocks.
    """

    def __init__(self, regions: Iterable[AddressRange]) -> None:
        self._free: list[set[int]] = [set() for _ in range(MAX_ORDER + 1)]
        self._allocated: dict[int, int] = {}  # block start frame -> order
        self._total_frames = 0
        self._region_frames: list[tuple[int, int]] = []
        #: Armed injected failures: the next N alloc_block calls fail
        #: transiently before succeeding (consumed one per attempt).
        self._transient_failures_armed = 0
        self.retry_stats = RetryStats()
        for region in regions:
            self._add_region(region)

    @classmethod
    def of_size(cls, nbytes: int) -> "FrameAllocator":
        """Allocator over a single region ``[0, nbytes)``."""
        return cls([AddressRange(0, nbytes)])

    def add_region(self, region: AddressRange) -> None:
        """Hot-plug a new DRAM region into the allocator (Section IV).

        The region becomes free memory.  Used by memory hotplug to extend
        guest physical memory, and by self-ballooning to release reserved
        contiguous memory back to the guest.
        """
        self._add_region(region)

    def unplug_range(self, region: AddressRange) -> None:
        """Hot-unplug ``region``: its frames leave the allocator entirely.

        Every frame in the range must be free.  Unlike an allocation, the
        frames no longer count toward :attr:`total_frames` -- this is how
        the I/O-gap reclaim removes below-gap addresses from use.
        """
        start = region.start // BASE_PAGE_SIZE
        end = region.end // BASE_PAGE_SIZE
        if end <= start:
            return
        self._carve(start, end)
        self._total_frames -= end - start

    def _add_region(self, region: AddressRange) -> None:
        start = -(-region.start // BASE_PAGE_SIZE)  # ceil
        end = region.end // BASE_PAGE_SIZE
        if end <= start:
            return
        self._region_frames.append((start, end))
        self._total_frames += end - start
        self._seed_free_blocks(start, end)

    def _seed_free_blocks(self, start: int, end: int) -> None:
        """Split ``[start, end)`` into maximal naturally-aligned blocks."""
        frame = start
        while frame < end:
            order = min(MAX_ORDER, (frame & -frame).bit_length() - 1 if frame else MAX_ORDER)
            while order > 0 and frame + (1 << order) > end:
                order -= 1
            self._free[order].add(frame)
            frame += 1 << order

    # ------------------------------------------------------------------
    # Introspection

    @property
    def total_frames(self) -> int:
        """Frames managed by this allocator."""
        return self._total_frames

    @property
    def free_frames(self) -> int:
        """Currently free frames."""
        return sum(len(blocks) << order for order, blocks in enumerate(self._free))

    @property
    def allocated_frames(self) -> int:
        """Currently allocated frames."""
        return self._total_frames - self.free_frames

    def allocations(self) -> dict[int, int]:
        """Live allocations as ``{start_frame: order}`` (copy)."""
        return dict(self._allocated)

    def allocation_order(self, frame: int) -> int | None:
        """Order of the allocated block starting at ``frame``, or None."""
        return self._allocated.get(frame)

    def free_blocks(self, order: int) -> tuple[int, ...]:
        """Start frames of the free blocks of exactly ``order`` (copy)."""
        return tuple(self._free[order])

    def is_free_block(self, frame: int, order: int) -> bool:
        """True if ``frame`` starts a free block of exactly ``order``."""
        return frame in self._free[order]

    def largest_free_order(self) -> int:
        """Order of the biggest free block, or -1 if memory is exhausted."""
        for order in range(MAX_ORDER, -1, -1):
            if self._free[order]:
                return order
        return -1

    def largest_free_run_frames(self) -> int:
        """Length in frames of the longest run of free frames.

        Adjacent free buddy blocks are coalesced on free, but blocks of
        different orders can still abut; this walks the sorted free-block
        list to find the true longest physically-contiguous free run,
        which is what bounds direct-segment creation.
        """
        blocks = sorted(
            (frame, 1 << order)
            for order, frames in enumerate(self._free)
            for frame in frames
        )
        best = current = 0
        expected_next: int | None = None
        for frame, length in blocks:
            if frame == expected_next:
                current += length
            else:
                current = length
            expected_next = frame + length
            best = max(best, current)
        return best

    # ------------------------------------------------------------------
    # Allocation

    def inject_transient_failures(self, count: int) -> None:
        """Arm ``count`` injected transient allocation failures.

        The next ``count`` allocation *attempts* fail as a real kernel's
        allocation fast path does under temporary reclaim pressure;
        :meth:`alloc_block` retries with exponential backoff (modelled in
        cycles, recorded in :attr:`retry_stats`), so runs survive any
        burst shorter than its retry budget.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._transient_failures_armed += count

    @property
    def transient_failures_armed(self) -> int:
        """Injected failures not yet consumed by allocation attempts."""
        return self._transient_failures_armed

    def alloc_block(self, order: int) -> int:
        """Allocate a naturally-aligned block of ``2**order`` frames.

        Returns the start frame.  Raises :class:`OutOfMemoryError` when no
        block of sufficient order exists, or
        :class:`TransientAllocationError` when injected transient
        failures outlast the retry budget.
        """
        for attempt in range(MAX_ALLOC_RETRIES):
            self.retry_stats.attempts += 1
            if self._transient_failures_armed:
                self._transient_failures_armed -= 1
                self.retry_stats.transient_failures += 1
                self.retry_stats.backoff_cycles += BACKOFF_BASE_CYCLES << attempt
                continue
            return self._alloc_block_now(order)
        raise TransientAllocationError(
            f"allocation of order-{order} block failed "
            f"{MAX_ALLOC_RETRIES} times (injected transient faults)"
        )

    def _alloc_block_now(self, order: int) -> int:
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order must be 0..{MAX_ORDER}, got {order}")
        found = None
        for candidate in range(order, MAX_ORDER + 1):
            if self._free[candidate]:
                found = candidate
                break
        if found is None:
            raise OutOfMemoryError(f"no free block of order >= {order}")
        frame = min(self._free[found])
        self._free[found].discard(frame)
        while found > order:
            found -= 1
            self._free[found].add(frame + (1 << found))
        self._allocated[frame] = order
        return frame

    def alloc_frame(self) -> int:
        """Allocate a single 4 KB frame."""
        return self.alloc_block(0)

    def alloc_specific(self, frame: int, order: int) -> int:
        """Allocate the exact block ``[frame, frame + 2**order)``.

        Used by hotplug (which must target specific addresses, Section IV)
        and by tests.  The block must be naturally aligned and entirely
        free.
        """
        if frame % (1 << order):
            raise ValueError(f"frame {frame:#x} not aligned to order {order}")
        # Fast path: a free block starts exactly at ``frame``.  The
        # general carve below scans every free block, which matters when
        # compaction calls this once per migrated page.
        for have in range(order, MAX_ORDER + 1):
            if frame % (1 << have):
                break
            if frame in self._free[have]:
                self._free[have].discard(frame)
                if have > order:
                    self._seed_free_blocks(frame + (1 << order), frame + (1 << have))
                self._allocated[frame] = order
                return frame
        self._carve(frame, frame + (1 << order))
        self._allocated[frame] = order
        return frame

    def reserve_contiguous(
        self, num_frames: int, within: AddressRange | None = None
    ) -> int:
        """Reserve the lowest free run of at least ``num_frames`` frames.

        This is the paper's startup reservation for direct segments
        (Section VI.A).  The run need not be power-of-two sized; it is
        carved out of however many free blocks cover it.  Returns the
        first frame; the reservation is recorded as a sequence of
        order-0..MAX_ORDER allocations starting at that frame.

        ``within`` restricts the search to runs whose frames fall inside
        the given *frame-number* range (used e.g. to place page-table
        pools inside the VMM direct segment, Section III.B).
        """
        run = self._find_free_run(num_frames, within)
        if run is None:
            raise OutOfMemoryError(
                f"no contiguous run of {num_frames} frames available"
            )
        self._carve(run, run + num_frames)
        # Record the reservation as maximal aligned sub-blocks so that
        # free_contiguous can return them.
        frame = run
        end = run + num_frames
        while frame < end:
            order = self._max_subblock_order(frame, end)
            self._allocated[frame] = order
            frame += 1 << order
        return run

    def free_contiguous(self, start_frame: int, num_frames: int) -> None:
        """Release a reservation made by :meth:`reserve_contiguous`."""
        frame = start_frame
        end = start_frame + num_frames
        while frame < end:
            order = self._allocated.get(frame)
            if order is None or frame + (1 << order) > end:
                raise ValueError(
                    f"frame {frame:#x} is not part of the given reservation"
                )
            self.free_block(frame)
            frame += 1 << order

    @staticmethod
    def _max_subblock_order(frame: int, end: int) -> int:
        order = min(MAX_ORDER, (frame & -frame).bit_length() - 1 if frame else MAX_ORDER)
        while order > 0 and frame + (1 << order) > end:
            order -= 1
        return order

    def _find_free_run(
        self, num_frames: int, within: AddressRange | None = None
    ) -> int | None:
        blocks = sorted(
            (frame, 1 << order)
            for order, frames in enumerate(self._free)
            for frame in frames
        )
        if within is not None:
            clipped = []
            for frame, length in blocks:
                lo = max(frame, within.start)
                hi = min(frame + length, within.end)
                if hi > lo:
                    clipped.append((lo, hi - lo))
            blocks = clipped
        run_start: int | None = None
        run_len = 0
        expected_next: int | None = None
        for frame, length in blocks:
            if frame == expected_next and run_start is not None:
                run_len += length
            else:
                run_start = frame
                run_len = length
            expected_next = frame + length
            if run_len >= num_frames:
                return run_start
        return None

    def _carve(self, start: int, end: int) -> None:
        """Remove ``[start, end)`` from the free lists; all must be free."""
        # Collect the free blocks overlapping the range.
        overlapping: list[tuple[int, int]] = []
        for order, frames in enumerate(self._free):
            size = 1 << order
            for frame in frames:
                if frame < end and frame + size > start:
                    overlapping.append((frame, order))
        covered = sum(
            min(end, frame + (1 << order)) - max(start, frame)
            for frame, order in overlapping
        )
        if covered != end - start:
            raise OutOfMemoryError(
                f"range [{start:#x}, {end:#x}) is not entirely free"
            )
        for frame, order in overlapping:
            self._free[order].discard(frame)
            size = 1 << order
            # Return any spill-over outside the carved range to free lists.
            if frame < start:
                self._seed_free_blocks(frame, start)
            if frame + size > end:
                self._seed_free_blocks(end, frame + size)

    # ------------------------------------------------------------------
    # Freeing

    def free_block(self, frame: int) -> None:
        """Free a block previously returned by an alloc method."""
        order = self._allocated.pop(frame, None)
        if order is None:
            raise ValueError(f"frame {frame:#x} is not an allocated block start")
        self._insert_free(frame, order)

    def _insert_free(self, frame: int, order: int) -> None:
        """Insert a free block, coalescing with its buddy where possible."""
        while order < MAX_ORDER:
            buddy = frame ^ (1 << order)
            if buddy not in self._free[order]:
                break
            self._free[order].discard(buddy)
            frame = min(frame, buddy)
            order += 1
        self._free[order].add(frame)

    # ------------------------------------------------------------------
    # Fragmentation tooling

    def fragment(
        self,
        fraction: float,
        rng: random.Random | None = None,
        hold_orders: tuple[int, ...] = (0, 1, 2),
    ) -> list[int]:
        """Shatter free memory by pinning scattered small blocks.

        Allocates small blocks until ``fraction`` of total frames are held,
        choosing block addresses pseudo-randomly so the remaining free
        memory is discontiguous.  Returns the held block start frames so a
        test (or the balloon driver) can release them later.

        This models a long-running guest whose page cache and slab
        allocations have diced up physical memory (Section IV).
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        if rng is None:
            # No default seed on purpose: a silently-shared Random(0)
            # makes every "independent" fragmentation trial identical.
            raise ValueError("fragment() requires an explicit rng")
        target = int(self._total_frames * fraction)
        held: list[int] = []
        held_frames = 0
        while held_frames < target:
            order = rng.choice(hold_orders)
            try:
                frame = self._alloc_random_block(order, rng)
            except OutOfMemoryError:
                break
            held.append(frame)
            held_frames += 1 << order
        return held

    def _alloc_random_block(self, order: int, rng: random.Random) -> int:
        # Pick a random non-empty order (not the smallest): real
        # long-running systems dice large free regions too, which is the
        # whole point of the fragmentation model.
        candidates = [c for c in range(order, MAX_ORDER + 1) if self._free[c]]
        if not candidates:
            raise OutOfMemoryError(f"no free block of order >= {order}")
        candidate = rng.choice(candidates)
        pool = self._free[candidate]
        if len(pool) < 64:
            frame = rng.choice(sorted(pool))
        else:
            # An arbitrary member is enough: address randomness comes
            # from the random order choice and the random split-half
            # descent below, and set iteration is O(1) where a uniform
            # draw would scan the (potentially million-entry) pool.
            frame = next(iter(pool))
        self._free[candidate].discard(frame)
        while candidate > order:
            candidate -= 1
            # Keep a random half to spread the held blocks around.
            keep_low = rng.random() < 0.5
            low, high = frame, frame + (1 << candidate)
            kept, freed = (low, high) if keep_low else (high, low)
            self._free[candidate].add(freed)
            frame = kept
        self._allocated[frame] = order
        return frame

    def free_many(self, blocks: Iterable[int]) -> None:
        """Free a list of blocks returned by :meth:`fragment`."""
        for frame in blocks:
            self.free_block(frame)
