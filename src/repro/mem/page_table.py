"""Radix page table with physically-placed nodes, generic over geometry.

Both dimensions of nested translation use the same structure: the guest
page table (gPT) maps gVA -> gPA and the nested page table (nPT) maps
gPA -> hPA (Section I).  Nodes occupy real frames of their address space's
allocator because the 2D walk must translate the *addresses of the guest
page-table entries themselves* through the nested dimension (Figure 2) --
so each PTE access has a well-defined physical address.

The level count, per-level index widths and leaf ladder come from a
:class:`repro.isa.TranslationGeometry`; the default is the paper's
x86-64 4-level radix (leaves at the PT, PD or PDPT level).  RISC-V
G-stage tables use the widened-root variant (Sv39x4 et al.), whose root
node spans multiple frames.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.core.address import (
    BASE_PAGE_SIZE,
    RADIX_BITS,
    PageSize,
    page_offset,
)
from repro.isa.geometry import X86_64, TranslationGeometry

#: Bytes per page-table entry (x86-64 and RISC-V Sv39+ alike).
PTE_SIZE = 8

#: Mask selecting one radix index (512-entry nodes; x86 default).
RADIX_MASK = (1 << RADIX_BITS) - 1

#: Page-table level at which each page size terminates (root = 0) in the
#: default x86-64 geometry; other geometries via ``geometry.leaf_level``.
LEAF_LEVEL = {PageSize.SIZE_4K: 3, PageSize.SIZE_2M: 2, PageSize.SIZE_1G: 1}


class PageFault(Exception):
    """Translation failed: no mapping for the address."""

    def __init__(self, address: int, level: int) -> None:
        super().__init__(f"page fault at {address:#x} (level {level})")
        self.address = address
        self.level = level


@dataclass(slots=True)
class PageTableEntry:
    """One slot in a page-table node: either a pointer or a leaf.

    ``frame`` is the 4 KB-frame number of the next-level node (pointer
    entries) or of the first frame of the mapped page (leaf entries).
    """

    frame: int
    leaf: bool
    page_size: PageSize | None = None  # set for leaves only
    writable: bool = True


class PageTableNode:
    """A radix node occupying one or more physical frames.

    512 entries in one frame everywhere except a widened G-stage root
    (RISC-V Sv39x4 et al.), which spans consecutive frames.
    """

    __slots__ = ("frame", "level", "entries")

    def __init__(self, frame: int, level: int) -> None:
        self.frame = frame
        self.level = level
        self.entries: dict[int, PageTableEntry] = {}

    def entry_address(self, index: int) -> int:
        """Physical address of entry ``index`` within this node."""
        return self.frame * BASE_PAGE_SIZE + index * PTE_SIZE


@dataclass(slots=True)
class WalkStep:
    """One memory reference of a page-table walk."""

    level: int
    #: Physical address (in the table's own address space) of the PTE read.
    pte_address: int
    entry: PageTableEntry


@dataclass(slots=True)
class WalkResult:
    """Outcome of a successful walk."""

    steps: list[WalkStep]
    frame: int
    page_size: PageSize

    def translate(self, address: int) -> int:
        """Physical address for ``address`` using the walked leaf."""
        return self.frame * BASE_PAGE_SIZE + page_offset(address, self.page_size)


class PageTable:
    """A radix page table whose nodes are allocated physical frames.

    ``alloc_frame`` supplies frames for new nodes; it is the hook through
    which the guest OS places its page tables inside the VMM direct
    segment (Section III.B: "the guest OS must allocate page tables within
    the VMM direct segment").  ``geometry`` selects the radix ladder
    (default: x86-64 4-level).
    """

    def __init__(
        self,
        alloc_frame: Callable[[], int],
        geometry: TranslationGeometry | None = None,
    ) -> None:
        self._alloc_frame = alloc_frame
        self.geometry = geometry or X86_64
        # Per-level walk tables, flattened out of the geometry because
        # the walk loop runs once per simulated TLB miss.
        self._shifts = tuple(
            self.geometry.level_shift(level)
            for level in range(self.geometry.levels)
        )
        self._masks = tuple(
            self.geometry.radix_mask(level)
            for level in range(self.geometry.levels)
        )
        self._levels = self.geometry.levels
        self._nodes: dict[int, PageTableNode] = {}  # pointer frame -> node
        self.root = self._new_node(level=0)
        #: Monotonic count of PTE writes; shadow paging keys off this.
        self.update_count = 0

    def _new_node(self, level: int) -> PageTableNode:
        node = PageTableNode(self._alloc_frame(), level)
        # A widened root (RISC-V G-stage) holds more entries than one
        # frame; reserve the spill frames so its entry addresses refer
        # to table-owned memory.
        node_bytes = (self._masks[level] + 1) * PTE_SIZE
        for _ in range(node_bytes // BASE_PAGE_SIZE - 1):
            self._alloc_frame()
        self._nodes[node.frame] = node
        return node

    @property
    def node_count(self) -> int:
        """Number of table nodes (root included)."""
        return len(self._nodes)

    @property
    def node_frames(self) -> frozenset[int]:
        """Frames occupied by table nodes."""
        return frozenset(self._nodes)

    # ------------------------------------------------------------------
    # Mutation

    def map(
        self,
        virtual: int,
        physical: int,
        page_size: PageSize = PageSize.SIZE_4K,
        writable: bool = True,
    ) -> None:
        """Install a leaf mapping ``virtual -> physical`` of ``page_size``.

        Both addresses must be aligned to the page size.  Remapping an
        existing leaf overwrites it (as a PTE store would); mapping a leaf
        where a pointer of a *smaller* granularity subtree exists raises,
        since a real OS must first unmap the subtree.
        """
        if page_offset(virtual, page_size) or page_offset(physical, page_size):
            raise ValueError(
                f"map of {virtual:#x} -> {physical:#x} not {page_size.label}-aligned"
            )
        leaf_level = self.geometry.leaf_level(page_size)
        shifts, masks = self._shifts, self._masks
        node = self.root
        for level in range(leaf_level):
            index = (virtual >> shifts[level]) & masks[level]
            entry = node.entries.get(index)
            if entry is None:
                child = self._new_node(level + 1)
                node.entries[index] = PageTableEntry(frame=child.frame, leaf=False)
                self.update_count += 1
                node = child
            elif entry.leaf:
                raise ValueError(
                    f"cannot map {page_size.label} page at {virtual:#x}: "
                    f"a larger leaf already covers it"
                )
            else:
                node = self._nodes[entry.frame]
        index = (virtual >> shifts[leaf_level]) & masks[leaf_level]
        existing = node.entries.get(index)
        if existing is not None and not existing.leaf:
            raise ValueError(
                f"cannot map {page_size.label} page at {virtual:#x}: "
                f"a finer-grained subtree exists there"
            )
        node.entries[index] = PageTableEntry(
            frame=physical // BASE_PAGE_SIZE,
            leaf=True,
            page_size=page_size,
            writable=writable,
        )
        self.update_count += 1

    def unmap(self, virtual: int) -> PageTableEntry:
        """Remove the leaf covering ``virtual``; returns the removed entry.

        Intermediate nodes are retained (as Linux does for non-huge
        teardown paths); they are reclaimed only by :meth:`clear`.
        """
        shifts, masks = self._shifts, self._masks
        node = self.root
        for level in range(self._levels):
            index = (virtual >> shifts[level]) & masks[level]
            entry = node.entries.get(index)
            if entry is None:
                raise PageFault(virtual, level)
            if entry.leaf:
                del node.entries[index]
                self.update_count += 1
                return entry
            node = self._nodes[entry.frame]
        raise AssertionError(f"walk exceeded {self._levels} levels")

    def clear(self, free_frame: Callable[[int], None] | None = None) -> None:
        """Drop every mapping and node except a fresh root."""
        old_frames = [f for f in self._nodes if f != self.root.frame]
        self._nodes = {self.root.frame: self.root}
        self.root.entries.clear()
        self.update_count += 1
        if free_frame is not None:
            for frame in old_frames:
                free_frame(frame)

    # ------------------------------------------------------------------
    # Walking

    def walk(self, virtual: int) -> WalkResult:
        """Walk the table for ``virtual``, recording every PTE reference.

        Raises :class:`PageFault` on a missing entry, carrying the level
        at which the walk failed (the fault handler needs it).
        """
        # This loop runs once per simulated TLB miss (several times per
        # miss in the nested case), so the radix arithmetic uses the
        # pre-flattened shift/mask tuples rather than calling
        # geometry.radix_index with its per-call validation.
        steps: list[WalkStep] = []
        node = self.root
        nodes = self._nodes
        shifts, masks = self._shifts, self._masks
        for level in range(self._levels):
            index = (virtual >> shifts[level]) & masks[level]
            entry = node.entries.get(index)
            if entry is None:
                raise PageFault(virtual, level)
            steps.append(
                WalkStep(level, node.frame * BASE_PAGE_SIZE + index * PTE_SIZE, entry)
            )
            if entry.leaf:
                assert entry.page_size is not None
                return WalkResult(steps, entry.frame, entry.page_size)
            node = nodes[entry.frame]
        raise AssertionError(f"walk exceeded {self._levels} levels without a leaf")

    def lookup(self, virtual: int) -> WalkResult | None:
        """Like :meth:`walk` but returns None instead of faulting."""
        try:
            return self.walk(virtual)
        except PageFault:
            return None

    def translate(self, virtual: int) -> int:
        """Full translation of ``virtual`` to a physical address."""
        return self.walk(virtual).translate(virtual)

    def is_mapped(self, virtual: int) -> bool:
        """True if a leaf covers ``virtual``."""
        return self.lookup(virtual) is not None

    # ------------------------------------------------------------------
    # Enumeration

    def leaves(self) -> Iterator[tuple[int, PageTableEntry]]:
        """Yield ``(virtual_base, entry)`` for every leaf, in no order."""
        yield from self._iter_leaves(self.root, 0)

    def _iter_leaves(
        self, node: PageTableNode, virtual_prefix: int
    ) -> Iterator[tuple[int, PageTableEntry]]:
        shift = self._shifts[node.level]
        for index, entry in node.entries.items():
            virtual = virtual_prefix | (index << shift)
            if entry.leaf:
                yield virtual, entry
            else:
                yield from self._iter_leaves(self._nodes[entry.frame], virtual)

    def leaf_count(self) -> int:
        """Number of installed leaf mappings."""
        return sum(1 for _ in self.leaves())
