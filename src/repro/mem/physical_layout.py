"""Physical address-space layout, including the x86-64 I/O gap.

Section IV: the x86-64 architecture reserves roughly the last gigabyte of
the 32-bit physical address space (3 GB .. 4 GB) for memory-mapped I/O.
The chipset remaps the DRAM that would have sat under the gap to above
4 GB, so physical memory is split into a region below the gap and a region
above it.  This split is what prevents one direct segment from covering
all of a machine's (or VM's) physical memory, and what the paper's
I/O-gap-reclaim technique (hot-unplug below the gap, extend above it)
works around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address import GIB, MIB, AddressRange

#: Start of the memory-mapped I/O hole (3 GB).
IO_GAP_START = 3 * GIB

#: End of the memory-mapped I/O hole (4 GB).
IO_GAP_END = 4 * GIB

#: The hole itself, as a range.
IO_GAP = AddressRange(IO_GAP_START, IO_GAP_END)

#: Memory the paper found sufficient to keep below the gap for the guest
#: kernel to boot (Section VI.C: "256MB is enough to boot Linux correctly").
KERNEL_RESERVED_BELOW_GAP = 256 * MIB


@dataclass(frozen=True)
class PhysicalLayout:
    """DRAM regions of a physical (or guest-physical) address space.

    ``total_memory`` bytes of DRAM are laid out x86-64 style: the first
    ``min(total, 3 GB)`` bytes sit below the I/O gap, and the remainder is
    remapped above 4 GB.  Small address spaces (< 3 GB) have a single
    region and no split.
    """

    total_memory: int
    include_io_gap: bool = True

    def __post_init__(self) -> None:
        if self.total_memory <= 0:
            raise ValueError("physical memory size must be positive")

    @property
    def regions(self) -> tuple[AddressRange, ...]:
        """DRAM-backed address ranges, in address order."""
        if not self.include_io_gap or self.total_memory <= IO_GAP_START:
            return (AddressRange(0, self.total_memory),)
        below = AddressRange(0, IO_GAP_START)
        above = AddressRange(IO_GAP_END, IO_GAP_END + self.total_memory - IO_GAP_START)
        return (below, above)

    @property
    def highest_address(self) -> int:
        """One past the last DRAM-backed address."""
        return self.regions[-1].end

    @property
    def largest_region(self) -> AddressRange:
        """The biggest single DRAM region (segment-candidate upper bound)."""
        return max(self.regions, key=lambda r: r.size)

    def is_dram(self, address: int) -> bool:
        """True if ``address`` is backed by DRAM (not the I/O hole)."""
        return any(address in region for region in self.regions)
