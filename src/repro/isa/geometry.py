"""ISA-generic translation geometry: the contract behind the walkers.

Nothing in the paper's dimensionality argument is x86-specific: a nested
walk over ``n`` guest levels and ``m`` nested levels costs
``(n+1)(m+1)-1`` references whatever the radix widths are.  This module
captures everything the rest of the simulator needs to know about one
paging scheme in a single frozen value:

* address width and the canonicality rule derived from it,
* bits per radix level (root first -- levels may differ, e.g. RISC-V's
  widened G-stage root),
* the base-page size, the PTE size, and the page-size ladder each
  geometry supports,
* how the second-stage (nested / G-stage) variant of the geometry is
  derived for two-dimensional walks.

Registered instances:

=============  ======  ===============  ====================================
name           VA bits radix (root..)   notes
=============  ======  ===============  ====================================
``x86_64``     48      9,9,9,9          the paper's testbed; bit-identical
                                        to the previously hard-coded values
``sv39``       39      9,9,9            RISC-V 3-level (512 GiB)
``sv48``       48      9,9,9,9          RISC-V 4-level
``sv57``       57      9,9,9,9,9        RISC-V 5-level
=============  ======  ===============  ====================================

For RISC-V the G-stage (``hgatp``) geometry widens the root by two bits
(Sv39x4/Sv48x4/Sv57x4): guest-physical addresses carry two extra bits and
the root table holds 2048 entries in 16 KiB.  :meth:`TranslationGeometry.
gstage` derives that variant; for x86 the nested dimension (EPT) reuses
the same 4-level geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address import PageSize
from repro.errors import ConfigError


@dataclass(frozen=True)
class TranslationGeometry:
    """One paging scheme: address width, radix ladder, page sizes.

    ``radix_bits`` is root-first and may be ragged (the widened G-stage
    root).  All derived per-level tables are precomputed once because
    they sit on the walker's per-miss path.
    """

    name: str
    #: Meaningful bits of a virtual (or input) address.
    address_bits: int
    #: Index bits consumed per radix level, root first.
    radix_bits: tuple[int, ...]
    #: Offset bits of the base page (4 KiB everywhere we model).
    base_page_bits: int = 12
    #: Architectural names of the levels, root first (for reports/docs).
    level_names: tuple[str, ...] = ()
    #: Bytes per page-table entry.
    pte_bytes: int = 8
    #: Extra root index bits of the second-stage variant (RISC-V's
    #: Sv39x4-style widened G-stage root; 0 for x86's EPT).
    gstage_root_extra_bits: int = 0

    # Precomputed per-level tables (derived, excluded from comparisons).
    _level_shifts: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _level_masks: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.radix_bits:
            raise ConfigError(f"{self.name}: geometry needs at least one level")
        if any(bits <= 0 for bits in self.radix_bits):
            raise ConfigError(
                f"{self.name}: radix widths must be positive, got {self.radix_bits}"
            )
        total = self.base_page_bits + sum(self.radix_bits)
        if total != self.address_bits:
            raise ConfigError(
                f"{self.name}: base page bits + radix bits = {total} "
                f"!= address bits {self.address_bits}"
            )
        if self.level_names and len(self.level_names) != len(self.radix_bits):
            raise ConfigError(
                f"{self.name}: {len(self.level_names)} level names for "
                f"{len(self.radix_bits)} levels"
            )
        shifts = []
        acc = self.base_page_bits
        for bits in reversed(self.radix_bits):
            shifts.append(acc)
            acc += bits
        object.__setattr__(self, "_level_shifts", tuple(reversed(shifts)))
        object.__setattr__(
            self,
            "_level_masks",
            tuple((1 << bits) - 1 for bits in self.radix_bits),
        )

    # ------------------------------------------------------------------
    # Shape

    @property
    def levels(self) -> int:
        """Number of radix levels (root counted)."""
        return len(self.radix_bits)

    @property
    def address_space_size(self) -> int:
        """Bytes of the full (lower-half) address space."""
        return 1 << self.address_bits

    def level_shift(self, level: int) -> int:
        """Bit position of the index ``level`` selects (root = 0).

        Equivalently: the offset width covered by one entry at this
        level, so a leaf terminating here maps ``1 << level_shift(level)``
        bytes.
        """
        self._check_level(level)
        return self._level_shifts[level]

    def radix_mask(self, level: int) -> int:
        """Mask selecting one index at ``level``."""
        self._check_level(level)
        return self._level_masks[level]

    def radix_index(self, address: int, level: int) -> int:
        """Radix index of ``address`` at page-table ``level`` (0 = root)."""
        self._check_level(level)
        return (address >> self._level_shifts[level]) & self._level_masks[level]

    def radix_indices(self, address: int) -> tuple[int, ...]:
        """All radix indices of ``address``, root first."""
        return tuple(
            (address >> shift) & mask
            for shift, mask in zip(self._level_shifts, self._level_masks)
        )

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self.radix_bits):
            raise ConfigError(
                f"{self.name}: page-table level must be "
                f"0..{len(self.radix_bits) - 1}, got {level}"
            )

    def level_label(self, level: int) -> str:
        """Architectural name of ``level`` (root = 0)."""
        self._check_level(level)
        if self.level_names:
            return self.level_names[level]
        return f"L{self.levels - level}"

    # ------------------------------------------------------------------
    # Page-size ladder

    def supports_page(self, page_size: PageSize) -> bool:
        """True if a leaf of ``page_size`` exists in this geometry."""
        return page_size.bits in self._level_shifts

    def leaf_level(self, page_size: PageSize) -> int:
        """Level at which a leaf of ``page_size`` terminates (root = 0)."""
        try:
            return self._level_shifts.index(page_size.bits)
        except ValueError:
            raise ConfigError(
                f"{self.name}: no level maps {page_size.label} pages "
                f"(level extents: "
                f"{[1 << s for s in self._level_shifts]} bytes)"
            ) from None

    def walk_levels(self, page_size: PageSize) -> int:
        """Levels walked to reach a leaf of ``page_size`` (the paper's n)."""
        return self.leaf_level(page_size) + 1

    def page_sizes(self) -> tuple[PageSize, ...]:
        """Supported page sizes, smallest first."""
        return tuple(ps for ps in PageSize if self.supports_page(ps))

    # ------------------------------------------------------------------
    # Canonicality

    def is_canonical(self, address: int) -> bool:
        """True if ``address`` fits the (lower-half) address space."""
        return 0 <= address < (1 << self.address_bits)

    def check_canonical(self, address: int) -> int:
        """Validate an address, returning it unchanged; raise on violation."""
        if not self.is_canonical(address):
            raise ConfigError(
                f"address {address:#x} outside {self.name}'s "
                f"{self.address_bits}-bit space"
            )
        return address

    # ------------------------------------------------------------------
    # Walk-cache shape

    def skippable_levels(self) -> tuple[int, ...]:
        """Levels a paging-structure cache may skip (every non-leaf one).

        The leaf PTE is always loaded; prefix caches cover the levels
        above it.  x86: PML4E/PDPTE/PDE (0, 1, 2).
        """
        return tuple(range(self.levels - 1))

    def pwc_shifts(self) -> dict[int, int]:
        """Prefix shift per skippable level (x86: {0: 39, 1: 30, 2: 21})."""
        return {level: self._level_shifts[level] for level in self.skippable_levels()}

    # ------------------------------------------------------------------
    # Two-stage composition

    def gstage(self) -> "TranslationGeometry":
        """The second-stage (nested) geometry for this ISA.

        RISC-V widens the G-stage root by two bits (Sv39x4 et al.): the
        guest-physical space gains two bits and the root table grows to
        2048 entries.  x86's EPT reuses the same geometry unchanged.
        """
        extra = self.gstage_root_extra_bits
        if extra == 0:
            return self
        widened = (self.radix_bits[0] + extra,) + self.radix_bits[1:]
        return TranslationGeometry(
            name=f"{self.name}x{1 << extra}",
            address_bits=self.address_bits + extra,
            radix_bits=widened,
            base_page_bits=self.base_page_bits,
            level_names=self.level_names,
            pte_bytes=self.pte_bytes,
            gstage_root_extra_bits=0,
        )

    # ------------------------------------------------------------------
    # Identity

    def fingerprint(self) -> dict:
        """JSON-ready identity of this geometry (store/cache key material)."""
        return {
            "name": self.name,
            "address_bits": self.address_bits,
            "radix_bits": list(self.radix_bits),
            "base_page_bits": self.base_page_bits,
            "pte_bytes": self.pte_bytes,
            "gstage_root_extra_bits": self.gstage_root_extra_bits,
        }


# ----------------------------------------------------------------------
# Registry

#: The paper's testbed geometry; every derived number (shifts, leaf
#: levels, PWC prefixes) is bit-identical to the previously hard-coded
#: x86 constants -- tests/isa/test_geometry.py proves it.
X86_64 = TranslationGeometry(
    name="x86_64",
    address_bits=48,
    radix_bits=(9, 9, 9, 9),
    level_names=("PML4", "PDPT", "PD", "PT"),
    gstage_root_extra_bits=0,
)

SV39 = TranslationGeometry(
    name="sv39",
    address_bits=39,
    radix_bits=(9, 9, 9),
    level_names=("VPN2", "VPN1", "VPN0"),
    gstage_root_extra_bits=2,
)

SV48 = TranslationGeometry(
    name="sv48",
    address_bits=48,
    radix_bits=(9, 9, 9, 9),
    level_names=("VPN3", "VPN2", "VPN1", "VPN0"),
    gstage_root_extra_bits=2,
)

SV57 = TranslationGeometry(
    name="sv57",
    address_bits=57,
    radix_bits=(9, 9, 9, 9, 9),
    level_names=("VPN4", "VPN3", "VPN2", "VPN1", "VPN0"),
    gstage_root_extra_bits=2,
)

#: Default ISA when a configuration names none (the paper's testbed).
DEFAULT_ISA = "x86_64"

#: Registered geometries by canonical name.
GEOMETRIES: dict[str, TranslationGeometry] = {
    g.name: g for g in (X86_64, SV39, SV48, SV57)
}

#: Accepted aliases (case-insensitive) -> canonical name.
_ALIASES = {
    "x86": "x86_64",
    "x86_64_4level": "x86_64",
    "x86-64": "x86_64",
}


def get_geometry(name: str) -> TranslationGeometry:
    """Look up a registered geometry by (case-insensitive) name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return GEOMETRIES[key]
    except KeyError:
        raise ConfigError(
            f"unknown ISA {name!r}: expected one of "
            f"{', '.join(sorted(GEOMETRIES))}"
        ) from None
