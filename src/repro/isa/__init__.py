"""ISA-generic translation geometry and symbolic walk plans.

The public contract: :class:`TranslationGeometry` describes one paging
scheme (address width, radix ladder, page sizes, canonicality, G-stage
composition); :func:`get_geometry` resolves registered names
(``x86_64``, ``sv39``, ``sv48``, ``sv57``); :mod:`repro.isa.walkplan`
enumerates walk reference sequences symbolically for mode arithmetic
and property tests.
"""

from repro.isa.geometry import (
    DEFAULT_ISA,
    GEOMETRIES,
    SV39,
    SV48,
    SV57,
    X86_64,
    TranslationGeometry,
    get_geometry,
)
from repro.isa.walkplan import (
    PlannedStep,
    expected_2d_references,
    walk_plan_1d,
    walk_plan_2d,
)

__all__ = [
    "DEFAULT_ISA",
    "GEOMETRIES",
    "SV39",
    "SV48",
    "SV57",
    "X86_64",
    "TranslationGeometry",
    "get_geometry",
    "PlannedStep",
    "expected_2d_references",
    "walk_plan_1d",
    "walk_plan_2d",
]
