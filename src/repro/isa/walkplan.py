"""Symbolic 2D walk enumeration: the paper's Figure 2 for any geometry.

The walkers in :mod:`repro.core.walker` execute walks against real page
tables; this module enumerates the *reference sequence* of a walk purely
from the geometry pair, so mode arithmetic and property tests can state
the closed forms -- ``(n+1)(m+1)-1`` steps for a full 2D walk, and the
exact reductions large-page leaves and paging-structure-cache hits buy
-- and cross-check them against what the walkers actually do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address import PageSize
from repro.errors import ConfigError
from repro.isa.geometry import TranslationGeometry


@dataclass(frozen=True)
class PlannedStep:
    """One memory reference of a (possibly nested) walk.

    ``dimension`` is ``"guest"`` for first-dimension PTE loads and
    ``"nested"`` for second-dimension loads; native 1D walks use
    ``"guest"`` throughout.  ``guest_level`` names the guest level being
    resolved (None for the final-gPA nested sub-walk); ``nested_level``
    is set for nested references only.
    """

    dimension: str
    guest_level: int | None = None
    nested_level: int | None = None


def walk_plan_1d(
    geometry: TranslationGeometry,
    page_size: PageSize = PageSize.SIZE_4K,
    skip_levels: int = 0,
) -> list[PlannedStep]:
    """References of a native walk to a ``page_size`` leaf.

    ``skip_levels`` models a paging-structure-cache hit covering that
    many upper levels; the leaf PTE is always loaded.
    """
    leaf = geometry.leaf_level(page_size)
    if not 0 <= skip_levels <= leaf:
        raise ConfigError(
            f"{geometry.name}: cannot skip {skip_levels} of "
            f"{leaf} skippable levels"
        )
    return [
        PlannedStep(dimension="guest", guest_level=level)
        for level in range(skip_levels, leaf + 1)
    ]


def walk_plan_2d(
    guest_geometry: TranslationGeometry,
    nested_geometry: TranslationGeometry | None = None,
    guest_page: PageSize = PageSize.SIZE_4K,
    nested_page: PageSize = PageSize.SIZE_4K,
    guest_skip_levels: int = 0,
) -> list[PlannedStep]:
    """References of a full 2D walk (Figure 2), generated from (n, m).

    Every guest PTE pointer is a guest-physical address needing an
    ``m``-step nested sub-walk before the guest PTE itself loads; the
    final gPA needs one more nested sub-walk.  With ``n`` guest and
    ``m`` nested levels this is ``n*(m+1) + m == (n+1)*(m+1) - 1``
    references -- the paper's 24 at four levels in both dimensions.

    ``nested_geometry`` defaults to the guest geometry's G-stage
    composition (:meth:`TranslationGeometry.gstage`).  ``guest_skip_levels``
    models a guest-dimension PWC hit: each skipped guest level removes
    ``m + 1`` references (its nested sub-walk plus the guest PTE load).
    """
    if nested_geometry is None:
        nested_geometry = guest_geometry.gstage()
    nested_leaf = nested_geometry.leaf_level(nested_page)
    steps: list[PlannedStep] = []

    def nested_sub_walk(guest_level: int | None) -> None:
        for nested_level in range(nested_leaf + 1):
            steps.append(
                PlannedStep(
                    dimension="nested",
                    guest_level=guest_level,
                    nested_level=nested_level,
                )
            )

    for planned in walk_plan_1d(guest_geometry, guest_page, guest_skip_levels):
        nested_sub_walk(planned.guest_level)
        steps.append(planned)
    nested_sub_walk(None)  # the final gPA's own translation
    return steps


def expected_2d_references(n: int, m: int) -> int:
    """The closed form: ``(n+1)(m+1) - 1`` references for an (n, m) walk."""
    return (n + 1) * (m + 1) - 1
