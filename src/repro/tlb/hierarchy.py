"""The Sandy Bridge-like TLB hierarchy of Table VI.

Geometry (from the paper's testbed description):

* L1 data TLBs, split by page size:
  4 KB: 64 entries, 4-way; 2 MB: 32 entries, 4-way; 1 GB: 4 entries,
  fully associative.
* Unified L2 TLB: 512 entries, 4-way, 4 KB translations.
* "EPT TLB/NTLB: shares the TLB (no separate structure)" -- nested
  (gPA -> hPA) translations occupy the same L2 array as regular entries.

That last line is load-bearing: Section IX.A attributes the observed
1.29-1.62x TLB-miss inflation under virtualization to nested entries
stealing L2 capacity.  We reproduce it structurally by inserting nested
entries into the same L2 ``SetAssociativeCache`` under a distinct tag
kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.address import PageSize
from repro.tlb.tlb import SetAssociativeCache, TLBStats


class HitLevel(enum.Enum):
    """Where a translation was found."""

    L1 = "L1"
    L2 = "L2"
    MISS = "miss"


#: Tag-kind prefixes.  Regular entries translate guest-virtual (or native
#: virtual) pages; nested entries translate guest-physical pages.
_KIND_REGULAR = 0
_KIND_NESTED = 1


@dataclass(frozen=True)
class TLBGeometry:
    """Sizes and associativities for the whole hierarchy."""

    l1_4k_entries: int = 64
    l1_4k_ways: int = 4
    l1_2m_entries: int = 32
    l1_2m_ways: int = 4
    l1_1g_entries: int = 4
    l1_1g_ways: int = 4  # fully associative (4 entries, 4 ways)
    l2_entries: int = 512
    l2_ways: int = 4


class TLBHierarchy:
    """L1 (split by page size) backed by a unified L2.

    The interface works on 4 KB virtual page numbers (``vpn``); larger
    page sizes derive their page numbers by shifting.  Payloads are the
    physical frame number of the mapping's first 4 KB frame; the hierarchy
    does not interpret them beyond non-None-ness.
    """

    def __init__(self, geometry: TLBGeometry | None = None) -> None:
        g = geometry or TLBGeometry()
        self.geometry = g
        self.l1 = {
            PageSize.SIZE_4K: SetAssociativeCache(g.l1_4k_entries, g.l1_4k_ways, "L1-4K"),
            PageSize.SIZE_2M: SetAssociativeCache(g.l1_2m_entries, g.l1_2m_ways, "L1-2M"),
            PageSize.SIZE_1G: SetAssociativeCache(g.l1_1g_entries, g.l1_1g_ways, "L1-1G"),
        }
        self.l2 = SetAssociativeCache(g.l2_entries, g.l2_ways, "L2")
        self.l1_stats = TLBStats()  # aggregated across the three L1s
        self.l2_stats = TLBStats()
        #: Nested-entry insertions into L2 (capacity-pressure accounting).
        self.nested_insertions = 0
        #: Nested (gPA -> hPA) probes of the shared L2 array and how
        #: many of them hit -- the profiler's NTLB event source.
        self.nested_lookups = 0
        self.nested_hits = 0
        #: Probe list for :meth:`lookup_l1`, precomputed because that
        #: method runs once per simulated reference.
        self._l1_probe = [
            (size, cache, size.bits - 12) for size, cache in self.l1.items()
        ]

    @staticmethod
    def _shift(page_size: PageSize) -> int:
        return page_size.bits - 12

    # ------------------------------------------------------------------
    # Regular (gVA -> hPA, or native VA -> PA) entries

    def lookup_l1(self, vpn: int) -> tuple[PageSize, int] | None:
        """Probe the three L1 TLBs in parallel (at most one can match).

        ``vpn`` is a 4 KB page number.  Returns ``(page_size, frame)`` of
        the matching entry or None.
        """
        for size, cache, shift in self._l1_probe:
            value = cache.peek(vpn >> shift)
            if value is not None:
                cache.lookup(vpn >> shift)  # refresh recency
                self.l1_stats.hits += 1
                return size, value
        self.l1_stats.misses += 1
        return None

    def lookup_l2(self, vpn: int) -> tuple[PageSize, int] | None:
        """Probe the unified L2 for a regular entry.

        Sandy Bridge's L2 TLB holds 4 KB translations only (Table VI);
        2 MB and 1 GB entries live in their L1s alone, so their misses
        go straight to the walker.
        """
        tag = (_KIND_REGULAR, PageSize.SIZE_4K, vpn)
        value = self.l2.lookup(tag)
        if value is not None:
            self.l2_stats.hits += 1
            return PageSize.SIZE_4K, value
        self.l2_stats.misses += 1
        return None

    def insert(self, vpn: int, page_size: PageSize, frame: int) -> None:
        """Install a completed translation into L1 (and L2 for 4 KB)."""
        self.insert_l1(vpn, page_size, frame)
        if page_size is PageSize.SIZE_4K:
            self.l2.insert((_KIND_REGULAR, page_size, vpn), frame)

    def insert_l1(self, vpn: int, page_size: PageSize, frame: int) -> None:
        """Install into the size-matching L1 only (Table I's L2-hit path)."""
        self.l1[page_size].insert(vpn >> self._shift(page_size), frame)

    # ------------------------------------------------------------------
    # Batched-engine hooks (repro.sim.engine)
    #
    # The engine classifies whole runs of references as L1 hits against
    # a residency snapshot and accounts them with array arithmetic; these
    # hooks expose exactly the state it needs while keeping the scalar
    # path (`lookup_l1`/`insert*`) the single source of truth for
    # per-reference semantics.

    def l1_residency(self) -> dict[PageSize, list]:
        """Resident tags of each L1 TLB (page numbers at that size)."""
        return {size: cache.resident_tags() for size, cache in self.l1.items()}

    def bulk_account_l1_hits(self, counts: dict[PageSize, int]) -> None:
        """Record L1 hits in bulk, exactly as ``lookup_l1`` would.

        ``counts`` maps page size -> number of hits that matched that
        L1.  Equivalent to that many scalar hits: the aggregate
        ``l1_stats`` and the matching cache's own stats advance; nothing
        else changes (recency is replayed separately via ``touch_mru``).
        """
        for size, count in counts.items():
            if count:
                self.l1[size].stats.hits += count
                self.l1_stats.hits += count

    # ------------------------------------------------------------------
    # Nested (gPA -> hPA) entries, sharing the L2 array

    def lookup_nested(self, gppn: int, page_size: PageSize) -> int | None:
        """Probe the shared L2 for a nested translation.

        ``gppn`` is a guest-physical 4 KB page number; the probe is made
        at the nested mapping's page size.
        """
        tag = (_KIND_NESTED, page_size, gppn >> self._shift(page_size))
        value = self.l2.lookup(tag)
        self.nested_lookups += 1
        if value is not None:
            self.nested_hits += 1
        return value

    def insert_nested(self, gppn: int, page_size: PageSize, frame: int) -> None:
        """Install a nested translation into the shared L2 array.

        This is the capacity-sharing behaviour of Table VI ("EPT TLB/NTLB:
        shares the TLB"): every insertion can evict a regular entry.
        """
        tag = (_KIND_NESTED, page_size, gppn >> self._shift(page_size))
        self.l2.insert(tag, frame)
        self.nested_insertions += 1

    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Drop all entries everywhere (e.g. on address-space switch)."""
        for cache in self.l1.values():
            cache.flush()
        self.l2.flush()

    def invalidate_page(self, vpn: int) -> None:
        """INVLPG: drop any regular entries covering a 4 KB vpn."""
        for size, cache in self.l1.items():
            cache.invalidate(vpn >> self._shift(size))
        for size in (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G):
            self.l2.invalidate((_KIND_REGULAR, size, vpn >> self._shift(size)))

    def stats_snapshot(self) -> dict:
        """All hierarchy counters as plain JSON-ready data.

        Used by run observability (:mod:`repro.obs.tracing`) to embed
        TLB behaviour in manifests; values are copies, so holding a
        snapshot across ``reset_stats`` is safe.
        """
        per_l1 = {
            cache.name: {"hits": cache.stats.hits, "misses": cache.stats.misses}
            for cache in self.l1.values()
        }
        return {
            "l1": {"hits": self.l1_stats.hits, "misses": self.l1_stats.misses},
            "l2": {"hits": self.l2_stats.hits, "misses": self.l2_stats.misses},
            "l1_by_size": per_l1,
            "nested_insertions": self.nested_insertions,
            "nested_lookups": self.nested_lookups,
            "nested_hits": self.nested_hits,
        }

    def reset_stats(self) -> None:
        """Zero counters (after warm-up) without dropping entries."""
        self.l1_stats.reset()
        self.l2_stats.reset()
        self.nested_insertions = 0
        self.nested_lookups = 0
        self.nested_hits = 0
        for cache in self.l1.values():
            cache.stats.reset()
        self.l2.stats.reset()
