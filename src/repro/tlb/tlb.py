"""Set-associative, LRU-replaced TLB model.

All the translation caches in the hierarchy (L1 per-size TLBs, the
unified L2 TLB, the page-walk caches and the nested TLB) share this one
structure: a number of sets, each holding up to ``ways`` entries with LRU
replacement.  Entries are keyed by an opaque hashable tag; the hierarchy
layer decides how tags encode page numbers and entry kinds.

Sets are plain insertion-ordered dicts: a hit is re-inserted to refresh
recency, and eviction pops the oldest key -- O(1) per operation, which
matters because the simulator probes these structures once or more per
simulated memory reference.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any


@dataclass
class TLBStats:
    """Hit/miss counters of one cache structure."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per probe (0.0 when never probed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = 0


class SetAssociativeCache:
    """A generic set-associative LRU cache of tag -> payload.

    ``entries`` is total capacity; ``ways`` is associativity.  A fully
    associative structure is ``ways == entries``.  The set index is
    derived from ``hash(tag) % num_sets``; for integer page-number tags
    this reduces to the usual low-bits indexing.
    """

    __slots__ = ("entries", "ways", "num_sets", "_sets", "stats", "name")

    def __init__(self, entries: int, ways: int, name: str = "cache") -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible by {ways} ways")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._sets: list[dict[Hashable, Any]] = [dict() for _ in range(self.num_sets)]
        self.stats = TLBStats()
        self.name = name

    def lookup(self, tag: Hashable) -> Any | None:
        """Probe for ``tag``; refreshes LRU recency on a hit.

        Returns the payload, or None on a miss.  (Payloads must therefore
        not be None; the hierarchy stores frame numbers or tuples.)
        """
        index = hash(tag) % self.num_sets
        line = self._sets[index]
        value = line.get(tag)
        if value is None:
            self.stats.misses += 1
            return None
        # Re-insert to mark most-recently-used (dicts preserve order).
        del line[tag]
        line[tag] = value
        self.stats.hits += 1
        return value

    def peek(self, tag: Hashable) -> Any | None:
        """Probe without touching recency or counters (for tests)."""
        return self._sets[hash(tag) % self.num_sets].get(tag)

    def insert(self, tag: Hashable, value: Any) -> None:
        """Install ``tag -> value``, evicting the set's LRU entry if full."""
        if value is None:
            raise ValueError("payload None is reserved for misses")
        index = hash(tag) % self.num_sets
        line = self._sets[index]
        if tag in line:
            del line[tag]
        elif len(line) >= self.ways:
            line.pop(next(iter(line)))
            self.stats.evictions += 1
        line[tag] = value

    def touch_mru(self, tag: Hashable) -> None:
        """Refresh recency of a resident entry without touching stats.

        The batched engine accounts hits in bulk but must leave LRU
        order exactly as the scalar path would; it replays the recency
        effect of a hit run by touching each distinct tag in last-use
        order.  Raises KeyError if the tag is not resident (the engine
        only touches tags it has proven resident).
        """
        line = self._sets[hash(tag) % self.num_sets]
        line[tag] = line.pop(tag)

    def resident_tags(self) -> list[Hashable]:
        """All currently valid tags (LRU order within each set)."""
        return [tag for line in self._sets for tag in line]

    def invalidate(self, tag: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        line = self._sets[hash(tag) % self.num_sets]
        return line.pop(tag, None) is not None

    def flush(self) -> None:
        """Drop every entry (counters are preserved)."""
        for line in self._sets:
            line.clear()

    def __len__(self) -> int:
        return sum(len(line) for line in self._sets)

    def occupancy(self) -> float:
        """Fraction of capacity currently valid."""
        return len(self) / self.entries
