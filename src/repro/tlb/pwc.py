"""Page-walk caches (MMU caches) and the nested-walk cache.

Real walkers do not pay four memory references on every miss: paging-
structure caches hold upper-level entries keyed by virtual-address
prefixes, so most walks only load the leaf PTE (Barr et al. [7],
Bhattacharjee [12], both cited by the paper in Section IX.A as the
techniques that absorb part of the base-bound-check overhead too).

We model:

* :class:`PageWalkCache` -- three prefix caches (PML4E, PDPTE, PDE) over
  the *guest-virtual* (or native-virtual) address, each entry recording
  that the walk down to that level is known, so the walker can skip the
  corresponding references in **both** dimensions.
* :class:`NestedTLB` -- a cache of gPA -> hPA translations used for the
  nested sub-walks of a 2D walk; Table VI notes the testbed has no
  separate structure (it shares the L2 TLB), so by default the hierarchy's
  shared L2 plays this role and this class is used for sensitivity
  studies with a dedicated structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.geometry import TranslationGeometry
from repro.tlb.tlb import SetAssociativeCache

#: Default entries per paging-structure cache level (Intel-like).
DEFAULT_PWC_ENTRIES = 32
DEFAULT_PWC_WAYS = 4

#: Prefix shift for each skippable level of the default x86-64 geometry:
#: a PML4E entry covers 512 GB (bits 47..39), a PDPTE 1 GB (47..30), a
#: PDE 2 MB (47..21).  Other geometries derive their ladder from
#: :meth:`repro.isa.TranslationGeometry.pwc_shifts`.
_LEVEL_SHIFT = {0: 39, 1: 30, 2: 21}


@dataclass(slots=True)
class PWCProbe:
    """Result of a page-walk-cache probe."""

    #: Deepest level whose entry was found (-1 when nothing hit).  A hit
    #: at level L means references for levels 0..L can be skipped; the
    #: walk resumes at level L+1.
    deepest_level: int

    @property
    def skipped_levels(self) -> int:
        """How many upper-level references the hit removes."""
        return self.deepest_level + 1


class PageWalkCache:
    """Prefix caches over every skippable (non-leaf) level.

    x86-64: PML4E (0), PDPTE (1), PDE (2).  The ladder follows the
    geometry: sv39 has two skippable levels, sv57 four, and a widened
    G-stage root keeps the same prefix shifts as its base levels.
    """

    def __init__(
        self,
        entries: int = DEFAULT_PWC_ENTRIES,
        ways: int = DEFAULT_PWC_WAYS,
        geometry: TranslationGeometry | None = None,
    ) -> None:
        shifts = _LEVEL_SHIFT if geometry is None else geometry.pwc_shifts()
        self._caches = {
            level: SetAssociativeCache(entries, ways, f"PWC-L{level}")
            for level in shifts
        }
        # probe/fill run on every simulated walk; precompute the
        # (level, cache, shift) orders instead of indexing dicts per call.
        # Probing goes deepest-first (longest prefix match).
        self._probe_order = [
            (level, self._caches[level], shifts[level])
            for level in sorted(shifts, reverse=True)
        ]
        self._fill_order = list(reversed(self._probe_order))

    def probe(self, address: int) -> PWCProbe:
        """Find the deepest cached prefix of ``address``.

        Probes PDE first (skips the most), falling back to PDPTE and
        PML4E, mirroring how hardware selects the longest match.
        """
        for level, cache, shift in self._probe_order:
            if cache.lookup(address >> shift) is not None:
                return PWCProbe(deepest_level=level)
        return PWCProbe(deepest_level=-1)

    def fill(self, address: int, upto_level: int) -> None:
        """Record that levels 0..``upto_level`` of this walk were resolved."""
        for level, cache, shift in self._fill_order:
            if level > upto_level:
                break
            cache.insert(address >> shift, True)

    def flush(self) -> None:
        """Drop all cached prefixes (context switch)."""
        for cache in self._caches.values():
            cache.flush()

    @property
    def stats(self) -> dict[int, tuple[int, int]]:
        """Per-level (hits, misses) counters."""
        return {
            level: (cache.stats.hits, cache.stats.misses)
            for level, cache in self._caches.items()
        }


class NestedTLB:
    """Dedicated gPA -> hPA cache (optional; default systems share L2).

    Entries are keyed by guest-physical 4 KB page number and store the
    host frame.  Used by sensitivity experiments that give the nested
    dimension its own structure instead of sharing the L2 TLB.
    """

    def __init__(self, entries: int = 32, ways: int = 4) -> None:
        self._cache = SetAssociativeCache(entries, ways, "NTLB")

    def lookup(self, gppn: int) -> int | None:
        """Probe for a guest-physical page; returns host frame or None."""
        return self._cache.lookup(gppn)

    def insert(self, gppn: int, host_frame: int) -> None:
        """Install a nested translation."""
        self._cache.insert(gppn, host_frame)

    def flush(self) -> None:
        """Drop all entries (VM switch)."""
        self._cache.flush()

    @property
    def stats(self):
        """Hit/miss counters."""
        return self._cache.stats
