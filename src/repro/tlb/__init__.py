"""TLB hierarchy (Table VI geometry) and page-walk caches."""
