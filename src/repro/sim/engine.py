"""Batched translation fast path.

:func:`repro.sim.simulator.run_trace` historically lowered the numpy
trace to a Python list and called ``mmu.access(va)`` once per reference;
for hit-dominated steady-state traces that spends almost all its time in
Python dict probes that never change anything except LRU recency.  This
module processes the trace in numpy chunks instead:

1. snapshot the resident (page-number, page-size) sets of the three L1
   TLBs;
2. bulk-classify a block of references against the snapshot with array
   operations (``np.isin``) -- a reference whose page is resident at some
   size is a guaranteed L1 hit, because L1 hits never insert or evict;
3. account the maximal all-hit prefix with array arithmetic (counter
   increments plus a per-distinct-tag LRU recency replay);
4. fall back to the scalar :meth:`repro.core.mmu.MMU.access` for the
   following miss run (mode fast paths, L2 probes, walks, replacements
   and insertions all live there, untouched), detecting the end of the
   run with cheap residency peeks;
5. invalidate the snapshot and repeat.

**Equivalence invariant**: after ``run(addresses)`` every observable --
``MMUCounters``, hierarchy hit/miss stats, TLB and page-walk-cache
contents *including LRU order*, page tables -- is bit-identical to the
scalar loop's.  The bulk path only handles references it has *proven*
are L1 hits against fresh state, accounts them exactly as ``lookup_l1``
would, and replays recency in last-use order; everything else runs
through the unmodified scalar path in original trace order.
``tests/sim/test_engine_equivalence.py`` asserts this across all
supported configuration labels.

The fault-injection / oracle paths never use this engine: injected
faults mutate translation state mid-trace at reference granularity, so
:func:`run_trace` keeps the scalar loop for them.

**Profiler neutrality**: the cycle-accounting profiler
(:mod:`repro.obs.profiler`) hooks only the walk paths, which the bulk
fast path never enters -- references it fast-paths are proven L1 hits
that cost zero modelled cycles and are recovered as event counts from
counter deltas at finalize.  Every L1 miss funnels through the scalar
:meth:`MMU.access` below, so a profiled batched run attributes exactly
the same cycles to exactly the same axes as a profiled scalar run.
"""

from __future__ import annotations

import numpy as np

from repro.core.address import PageSize
from repro.core.mmu import MMU

#: Initial references classified per vectorized step.  Grows toward
#: :data:`MAX_CHUNK` while classification keeps proving whole chunks
#: hit, shrinks back after every miss so a miss-heavy phase never pays
#: for classifying thousands of references it cannot fast-path.
MIN_CHUNK = 256

#: Upper bound on the adaptive chunk size.
MAX_CHUNK = 16384

#: Hit-prefix length below which a classification attempt is considered
#: wasted (the vectorized work outweighed the references it advanced);
#: consecutive wasted attempts trigger exponentially longer scalar
#: bursts so sustained miss-heavy phases degrade to ~pure scalar cost.
WASTED_PREFIX = 32

#: First scalar-burst length after a wasted classification attempt.
MIN_BURST = 64

DEFAULT_BLOCK = MAX_CHUNK  # backward-compatible alias


class BatchedTranslationEngine:
    """Drives an address stream through an MMU, fast-pathing L1 hits.

    One engine instance wraps one MMU; it keeps no state between
    :meth:`run` calls beyond the wrapped references, so interleaving
    scalar ``mmu.access`` calls with engine runs is safe (the engine
    re-snapshots residency whenever state may have changed).
    """

    def __init__(self, mmu: MMU, block: int = MAX_CHUNK) -> None:
        if block <= 0:
            raise ValueError(f"block size must be positive, got {block}")
        self.mmu = mmu
        self.hierarchy = mmu.hierarchy
        self.max_chunk = block
        # Resolved once per run: disabled/absent registries collapse to
        # None so the per-chunk hooks stay a single identity check.
        metrics = getattr(mmu, "metrics", None)
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        #: L1 probe order must match ``TLBHierarchy.lookup_l1`` exactly:
        #: the first size whose cache holds the page wins.
        self._sizes = list(self.hierarchy.l1)
        self._shifts = [size.bits - 12 for size in self._sizes]

    # ------------------------------------------------------------------

    def run(self, addresses: np.ndarray) -> None:
        """Translate every address, exactly like a scalar access loop."""
        n = int(addresses.size)
        if n == 0:
            return
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        vpns = addresses >> 12
        tag_arrays = [vpns >> shift for shift in self._shifts]

        pos = 0
        snapshot: list[np.ndarray] | None = None
        chunk = min(MIN_CHUNK, self.max_chunk)
        burst = MIN_BURST
        while pos < n:
            if snapshot is None:
                snapshot = self._snapshot()
            end = min(pos + chunk, n)
            masks = [
                np.isin(tags[pos:end], resident)
                for tags, resident in zip(tag_arrays, snapshot)
            ]
            hit_any = masks[0]
            for mask in masks[1:]:
                hit_any = hit_any | mask
            if hit_any.all():
                self._bulk_hits(pos, end, masks, tag_arrays)
                pos = end
                chunk = min(chunk * 4, self.max_chunk)
                continue  # snapshot still valid: hits change no residency
            miss_rel = int(np.argmax(~hit_any))
            if miss_rel:
                clipped = [mask[:miss_rel] for mask in masks]
                self._bulk_hits(pos, pos + miss_rel, clipped, tag_arrays)
                pos += miss_rel
            pos = self._scalar_miss_run(addresses, vpns, pos, n)
            if miss_rel < WASTED_PREFIX:
                # Classification barely advanced: the trace is in a
                # miss-heavy phase where vectorization cannot pay for
                # itself.  Run scalar for exponentially longer bursts,
                # re-probing the vector path between them.
                take = min(burst, n - pos)
                self._scalar_burst(addresses, pos, take)
                pos += take
                burst = min(burst * 2, self.max_chunk)
            else:
                burst = MIN_BURST
            snapshot = None  # misses inserted/evicted: re-snapshot
            chunk = min(MIN_CHUNK, self.max_chunk)

    # ------------------------------------------------------------------

    def _snapshot(self) -> list[np.ndarray]:
        """Resident tag arrays per L1, in probe order."""
        if self._metrics is not None:
            self._metrics.inc("engine.snapshots")
        residency = self.hierarchy.l1_residency()
        return [
            np.array(residency[size], dtype=np.int64)
            if residency[size]
            else np.empty(0, dtype=np.int64)
            for size in self._sizes
        ]

    def _bulk_hits(
        self,
        start: int,
        end: int,
        masks: list[np.ndarray],
        tag_arrays: list[np.ndarray],
    ) -> None:
        """Account ``[start, end)`` -- all proven L1 hits -- in bulk."""
        total = end - start
        counters = self.mmu.counters
        counters.accesses += total
        counters.l1_hits += total
        if self._metrics is not None:
            self._metrics.observe("engine.batch_chunk_refs", total)
            self._metrics.inc("engine.bulk_hit_refs", total)

        counts: dict[PageSize, int] = {}
        claimed: np.ndarray | None = None
        for size, mask, tags in zip(self._sizes, masks, tag_arrays):
            # Probe priority: a page resident at an earlier size claims
            # the hit (mirrors lookup_l1's first-match return).
            if claimed is not None:
                mask = mask & ~claimed
                claimed = claimed | mask
            else:
                claimed = mask.copy()
            count = int(mask.sum())
            counts[size] = count
            if count:
                self._replay_recency(size, tags[start:end][mask])
        self.hierarchy.bulk_account_l1_hits(counts)

    def _replay_recency(self, size: PageSize, hit_tags: np.ndarray) -> None:
        """Reproduce the LRU effect of scalar hits on one L1 cache.

        A run of hits leaves each distinct tag at the recency position
        of its *last* hit; touching distinct tags in ascending order of
        last occurrence recreates that order with O(distinct) work.
        """
        cache = self.hierarchy.l1[size]
        reversed_tags = hit_tags[::-1]
        unique, first_rev_index = np.unique(reversed_tags, return_index=True)
        if unique.size == 1:
            cache.touch_mru(int(unique[0]))
            return
        # Last occurrence in original order == first in reversed order;
        # ascending last-occurrence == descending reversed index.
        for tag in unique[np.argsort(-first_rev_index, kind="stable")]:
            cache.touch_mru(int(tag))

    def _scalar_miss_run(
        self, addresses: np.ndarray, vpns: np.ndarray, pos: int, n: int
    ) -> int:
        """Scalar-process references until the next guaranteed L1 hit.

        The reference at ``pos`` is a known miss; subsequent references
        stay on the scalar path until a residency peek (no stats, no
        recency) proves the next one would hit L1 again.
        """
        access = self.mmu.access
        l1_items = list(zip(self._shifts, self.hierarchy.l1.values()))
        while pos < n:
            access(int(addresses[pos]))
            pos += 1
            if pos < n:
                vpn = int(vpns[pos])
                for shift, cache in l1_items:
                    if cache.peek(vpn >> shift) is not None:
                        return pos
        return pos

    def _scalar_burst(self, addresses: np.ndarray, pos: int, take: int) -> None:
        """Plain scalar processing of ``take`` references -- no peeks.

        Used in miss-heavy phases: residency peeks between references
        would cost more than they save, and the scalar path is exact by
        definition.
        """
        access = self.mmu.access
        for va in addresses[pos : pos + take].tolist():
            access(va)


def access_batch(mmu: MMU, addresses: np.ndarray, block: int = DEFAULT_BLOCK) -> None:
    """Convenience wrapper: one-shot batched translation of a stream."""
    BatchedTranslationEngine(mmu, block=block).run(addresses)
