"""Trace-driven simulation runs and their results.

A run drives a workload's page-reference trace through a built system's
MMU: a warm-up prefix populates page tables, TLBs and walk caches (the
paper measures steady state -- its workloads run for minutes before and
during measurement), counters are reset, and the measured portion
produces a :class:`SimulationResult` combining raw counters with the
paper's derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mmu import MMUCounters
from repro.errors import ConfigError
from repro.faults.degradation import DegradationLog
from repro.faults.injector import FaultInjector
from repro.faults.oracle import OracleReport, TranslationOracle
from repro.model.counters import MeasuredRun, measured_run
from repro.model.overhead import OverheadResult, overhead_from_trace
from repro.obs.tracing import RunObservability, RunObserver
from repro.sim import trace_cache
from repro.sim.config import SystemConfig, parse_config, validate_run_parameters
from repro.sim.system import SimulatedSystem, build_system, populate_for_addresses
from repro.workloads.base import Workload

#: Fraction of the trace used to warm TLBs and walk caches (page tables
#: are pre-populated separately, so warm-up only needs to fill caches).
DEFAULT_WARMUP_FRACTION = 0.15


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured from one (workload, config) run."""

    config: SystemConfig
    workload_name: str
    run: MeasuredRun
    overhead: OverheadResult
    counters: MMUCounters
    l2_tlb_misses: int
    #: How the system absorbed injected faults; None without injection.
    degradation_log: DegradationLog | None = None
    #: Consistency-check tally; None when no oracle was attached.
    oracle_report: OracleReport | None = None
    #: Observability record (metrics snapshot, interval samples, span
    #: timing); None unless a :class:`RunObserver` was attached.  Plain
    #: picklable data, so parallel sweep workers ship it back intact.
    obs: RunObservability | None = None

    @property
    def overhead_percent(self) -> float:
        """The Figure 11/12 bar height for this run."""
        return self.overhead.overhead_percent

    @property
    def profile(self) -> dict | None:
        """Cycle-attribution snapshot of a profiled run, if any.

        Populated when the attached observer was built from
        ``ObsOptions(profile=True)`` (the ``--profile`` flag); see
        :mod:`repro.obs.profiler`.  Attaching the profiler leaves every
        simulation counter bit-identical -- it only mirrors them.
        """
        return self.obs.profile if self.obs is not None else None

    def describe(self) -> str:
        """One-paragraph human-readable summary of the run."""
        run = self.run
        lines = [
            f"{self.workload_name or 'workload'} under {self.config.label}: "
            f"{self.overhead_percent:.2f}% translation overhead",
            f"  {run.trace_length} references, {run.l1_misses} L1 TLB misses "
            f"({run.misses_per_kilo_ref:.1f}/kref), {run.walks} walks",
            f"  {run.cycles_per_walk:.1f} cycles and {run.refs_per_walk:.1f} "
            f"page-table references per walk",
        ]
        fractions = []
        for label, value in (
            ("both", run.fraction_both),
            ("VMM-only", run.fraction_vmm_only),
            ("guest-only", run.fraction_guest_only),
            ("neither", run.fraction_neither),
        ):
            if value > 0:
                fractions.append(f"{label} {100 * value:.1f}%")
        if fractions:
            lines.append("  segment classification: " + ", ".join(fractions))
        return "\n".join(lines)


def run_trace(
    system: SimulatedSystem,
    trace: np.ndarray,
    ideal_cycles_per_ref: float,
    workload_name: str = "",
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    prepopulate: bool = True,
    refs_per_entry: float = 1.0,
    fault_injector: FaultInjector | None = None,
    oracle: TranslationOracle | None = None,
    unique_pages: np.ndarray | None = None,
    observer: RunObserver | None = None,
) -> SimulationResult:
    """Drive ``trace`` through ``system`` and measure the steady state.

    ``trace`` holds page offsets relative to the workload arena; they
    are rebased onto the process's primary region.  With ``prepopulate``
    (the default) the touched pages are faulted in up front, so measured
    misses reflect steady-state walks, not demand paging.
    ``unique_pages`` optionally supplies the trace's pre-computed sorted
    unique page indices (the trace cache shares one array across every
    config of a sweep), saving the per-run ``np.unique``.

    Without ``fault_injector``/``oracle`` the trace runs through the
    batched engine (:mod:`repro.sim.engine`) -- counters and TLB state
    come out bit-identical to the scalar loop, only faster.  With either
    attached, the scalar per-reference loop runs instead: injected
    faults and shadow checks need reference-granular interleaving.

    An ``observer`` attaches its metrics registry to the system after
    warm-up (so histograms cover only the measured portion) and samples
    cumulative counters every ``observer.interval`` measured references.
    On the batched path this drives the engine in interval-sized chunks,
    which the engine's statelessness between runs makes bit-identical to
    one big run; the result carries the frozen record in ``.obs``.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    base_va = system.base_va
    rebased = (trace.astype(np.int64) << 12) + base_va
    if prepopulate:
        if unique_pages is not None and base_va & 0xFFF == 0:
            unique_addresses = (unique_pages.astype(np.int64) << 12) + base_va
        else:
            unique_addresses = np.unique(rebased & ~np.int64(0xFFF))
        populate_for_addresses(system, unique_addresses)
    mmu = system.mmu

    split = int(len(rebased) * warmup_fraction)
    interval = observer.interval if observer is not None else None
    if fault_injector is None and oracle is None:
        mmu.access_batch(rebased[:split])
        mmu.counters.reset()
        system.hierarchy.reset_stats()
        if observer is not None:
            observer.attach(system)
            observer.begin()
        measured = rebased[split:]
        if interval is None:
            mmu.access_batch(measured)
        else:
            n = len(measured)
            for start in range(0, n, interval):
                stop = min(start + interval, n)
                mmu.access_batch(measured[start:stop])
                observer.sample(stop, system)
    else:
        access = mmu.access
        for va in map(int, rebased[:split]):
            access(va)
        mmu.counters.reset()
        system.hierarchy.reset_stats()
        if observer is not None:
            observer.attach(system)
            if fault_injector is not None:
                fault_injector.metrics = observer.metrics
            observer.begin()
        for index, va in enumerate(map(int, rebased[split:])):
            if fault_injector is not None:
                fault_injector.deliver_due(index, system)
            frame = access(va)
            if oracle is not None:
                oracle.observe(index, va, frame)
            if interval is not None and (index + 1) % interval == 0:
                observer.sample(index + 1, system)
        measured_tail = len(rebased) - split
        if interval is not None and measured_tail % interval:
            observer.sample(measured_tail, system)

    measured_entries = len(rebased) - split
    # Each trace entry is one page visit standing for refs_per_entry
    # consecutive references; only the first of a run can change TLB
    # state, so reference counts scale without re-simulating the rest.
    measured_refs = int(measured_entries * refs_per_entry)
    counters = mmu.counters
    run = measured_run(
        system.config.label,
        workload_name,
        measured_refs,
        counters,
        nested_insertions=system.hierarchy.nested_insertions,
    )
    overhead = overhead_from_trace(
        measured_refs, ideal_cycles_per_ref, counters.translation_cycles
    )
    degradation_log = None
    if fault_injector is not None and system.hypervisor is not None:
        degradation_log = system.hypervisor.degradation_log
    obs = None
    if observer is not None:
        obs = observer.finalize(
            system,
            workload_name=workload_name,
            overhead_percent=overhead.overhead_percent,
            measured_refs=measured_refs,
        )
    return SimulationResult(
        config=system.config,
        workload_name=workload_name,
        run=run,
        overhead=overhead,
        counters=counters,
        l2_tlb_misses=counters.l2_misses,
        degradation_log=degradation_log,
        oracle_report=oracle.report if oracle is not None else None,
        obs=obs,
    )


def simulate(
    config_label: str,
    workload: Workload,
    trace_length: int | None = None,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    fault_injector: FaultInjector | None = None,
    oracle_sample_every: int | None = None,
    use_trace_cache: bool = True,
    observer: RunObserver | None = None,
    **build_kwargs,
) -> SimulationResult:
    """One-call convenience: build the system, generate a trace, run it.

    ``oracle_sample_every`` attaches a :class:`TranslationOracle`
    checking one in that many measured references (the report lands on
    the result).  Traces are memoized per (workload, length, seed)
    through :mod:`repro.sim.trace_cache` so sweeping many configs over
    one cell generates the trace -- and its unique-page array -- once;
    pass ``use_trace_cache=False`` for workloads whose ``trace`` is not
    a pure function of (length, seed).
    """
    config = parse_config(config_label)
    validate_run_parameters(
        workload.spec.footprint_bytes,
        trace_length=trace_length,
        warmup_fraction=warmup_fraction,
    )
    system = build_system(config, workload.spec, **build_kwargs)
    if use_trace_cache:
        cached = trace_cache.get_trace(
            workload, trace_length, seed, isa=config.isa_name()
        )
        trace, unique_pages = cached.pages, cached.unique_pages
    else:
        trace = workload.trace(trace_length, seed=seed)
        unique_pages = None
    oracle = None
    if oracle_sample_every is not None:
        oracle = TranslationOracle(system, sample_every=oracle_sample_every)
    if observer is not None:
        observer.set_run_info(seed, trace_length)
    return run_trace(
        system,
        trace,
        workload.spec.ideal_cycles_per_ref,
        workload_name=workload.spec.name,
        warmup_fraction=warmup_fraction,
        refs_per_entry=workload.spec.refs_per_entry,
        fault_injector=fault_injector,
        oracle=oracle,
        unique_pages=unique_pages,
        observer=observer,
    )
