"""Declarative system configurations, named as the paper's bar labels.

Figure 11/12 name configurations by page size per translation level:
``4K`` is native with 4 KB pages, ``4K+2M`` is a guest using 4 KB pages
over a VMM using 2 MB nested pages, ``DS`` is the unvirtualized direct
segment, ``DD`` is Dual Direct, ``4K+VD`` is VMM Direct under a 4 KB
guest, ``4K+GD`` is Guest Direct, and ``THP`` enables transparent huge
pages in the (native or guest) OS.

A label may carry an ISA prefix selecting the translation geometry:
``sv48/4K+2M`` runs the same configuration over RISC-V Sv48 paging with
Sv48x4 G-stage nesting.  Bare labels mean the paper's x86-64 testbed --
their parse, their reports and their store keys are identical to the
pre-ISA-axis behaviour.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.address import PageSize
from repro.core.modes import TranslationMode
from repro.errors import ConfigError
from repro.isa.geometry import DEFAULT_ISA, TranslationGeometry, get_geometry


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to assemble one simulated machine."""

    label: str
    mode: TranslationMode
    #: Page size the application/guest OS uses for the data arena.
    guest_page: PageSize
    #: VMM (nested) page size; None for native modes.
    nested_page: PageSize | None
    #: Transparent huge pages in the guest (guest_page must be 4K).
    thp: bool = False
    #: Translation geometry name (underscore-prefixed: the ISA rides in
    #: the label, and report serialization skips private fields so bare
    #: x86 labels keep byte-identical reports).
    _isa: str = DEFAULT_ISA

    def __post_init__(self) -> None:
        if self.mode.virtualized and self.nested_page is None:
            raise ConfigError(f"{self.label}: virtualized config needs a nested page size")
        if not self.mode.virtualized and self.nested_page is not None:
            raise ConfigError(f"{self.label}: native config cannot have a nested page size")
        if self.thp and self.guest_page is not PageSize.SIZE_4K:
            raise ConfigError(f"{self.label}: THP only applies to 4K guests")
        geometry = get_geometry(self._isa)  # unknown ISA -> ConfigError
        if not geometry.supports_page(self.guest_page):
            raise ConfigError(
                f"{self.label}: {geometry.name} has no "
                f"{self.guest_page.label} leaf level"
            )
        if self.nested_page is not None and not geometry.gstage().supports_page(
            self.nested_page
        ):
            raise ConfigError(
                f"{self.label}: {geometry.gstage().name} has no "
                f"{self.nested_page.label} leaf level"
            )

    @property
    def virtualized(self) -> bool:
        """True for VM configurations."""
        return self.mode.virtualized

    # Plain methods, not properties: result serialization walks every
    # public property, and the ISA axis must not drift x86 reports.

    def isa_name(self) -> str:
        """Canonical name of the configured ISA geometry."""
        return self._isa

    def translation_geometry(self) -> TranslationGeometry:
        """The first-dimension (guest/native) geometry."""
        return get_geometry(self._isa)

    def nested_geometry(self) -> TranslationGeometry:
        """The second-dimension (G-stage/EPT) geometry."""
        return self.translation_geometry().gstage()


_MODE_SUFFIXES = {
    "VD": TranslationMode.VMM_DIRECT,
    "GD": TranslationMode.GUEST_DIRECT,
}


def parse_config(label: str) -> SystemConfig:
    """Parse a Figure 11/12 bar label into a :class:`SystemConfig`.

    Grammar::

        config:       [<isa>/]<bars>       e.g. sv48/4K+2M, sv39/DD
        native:       4K | 2M | 1G | THP | DS
        virtualized:  <guest>+<nested>     e.g. 4K+4K, 2M+1G, THP+2M
                      <guest>+VD | <guest>+GD   e.g. 4K+VD, THP+GD
                      DD

    An explicit default-ISA prefix (``x86_64/4K``) normalizes to the
    bare label so one configuration never has two spellings (and two
    store keys).
    """
    stripped = label.strip()
    if "/" in stripped:
        prefix, _, rest = stripped.partition("/")
        geometry = get_geometry(prefix)  # unknown ISA -> ConfigError
        if "/" in rest:
            raise ConfigError(
                f"malformed configuration label {label!r}: "
                f"at most one ISA prefix is allowed"
            )
        parsed = parse_config(rest)
        if geometry.name == DEFAULT_ISA:
            return parsed
        return dataclasses.replace(
            parsed,
            label=f"{geometry.name}/{parsed.label}",
            _isa=geometry.name,
        )
    text = stripped.upper()
    if not text:
        raise ConfigError(
            "empty configuration label; expected one of e.g. "
            "4K, 2M, 1G, THP, DS, DD, 4K+2M, 4K+VD, THP+GD"
        )
    if text.count("+") > 1:
        raise ConfigError(
            f"malformed configuration label {label!r}: at most one '+' "
            f"(guest+nested) is allowed"
        )
    if text == "DD":
        return SystemConfig(
            label="DD",
            mode=TranslationMode.DUAL_DIRECT,
            guest_page=PageSize.SIZE_4K,
            nested_page=PageSize.SIZE_4K,
        )
    if text == "DS":
        return SystemConfig(
            label="DS",
            mode=TranslationMode.NATIVE_DIRECT_SEGMENT,
            guest_page=PageSize.SIZE_4K,
            nested_page=None,
        )
    if "+" not in text:
        guest_page, thp = _parse_guest(text)
        return SystemConfig(
            label=text,
            mode=TranslationMode.NATIVE,
            guest_page=guest_page,
            nested_page=None,
            thp=thp,
        )
    guest_text, nested_text = text.split("+", 1)
    guest_page, thp = _parse_guest(guest_text)
    if nested_text in _MODE_SUFFIXES:
        return SystemConfig(
            label=text,
            mode=_MODE_SUFFIXES[nested_text],
            guest_page=guest_page,
            nested_page=PageSize.SIZE_4K,
            thp=thp,
        )
    try:
        nested_page = PageSize.from_label(nested_text)
    except ValueError:
        raise ConfigError(
            f"unknown nested level {nested_text!r} in {label!r}: expected "
            f"a page size (4K, 2M, 1G) or a mode (VD, GD)"
        ) from None
    return SystemConfig(
        label=text,
        mode=TranslationMode.BASE_VIRTUALIZED,
        guest_page=guest_page,
        nested_page=nested_page,
        thp=thp,
    )


def _parse_guest(text: str) -> tuple[PageSize, bool]:
    if text == "THP":
        return PageSize.SIZE_4K, True
    try:
        return PageSize.from_label(text), False
    except ValueError:
        raise ConfigError(
            f"unknown guest level {text!r}: expected a page size "
            f"(4K, 2M, 1G) or THP"
        ) from None


def validate_geometry(geometry) -> None:
    """Reject degenerate TLB geometries before a system is built.

    A zero-entry or negative TLB, or a cache with more ways than
    entries, silently produces nonsense statistics; fail fast instead.
    Accepts any object with the :class:`repro.tlb.hierarchy.TLBGeometry`
    fields (duck-typed to keep this module free of TLB imports).
    """
    pairs = (
        ("l1_4k", geometry.l1_4k_entries, geometry.l1_4k_ways),
        ("l1_2m", geometry.l1_2m_entries, geometry.l1_2m_ways),
        ("l1_1g", geometry.l1_1g_entries, geometry.l1_1g_ways),
        ("l2", geometry.l2_entries, geometry.l2_ways),
    )
    for name, entries, ways in pairs:
        if entries <= 0:
            raise ConfigError(f"{name}: TLB needs at least one entry, got {entries}")
        if ways <= 0:
            raise ConfigError(f"{name}: TLB needs at least one way, got {ways}")
        if entries % ways:
            raise ConfigError(
                f"{name}: {entries} entries not divisible into {ways} ways"
            )


def validate_run_parameters(
    footprint_bytes: int,
    trace_length: int | None = None,
    warmup_fraction: float | None = None,
) -> None:
    """Reject impossible run parameters with a :class:`ConfigError`."""
    if footprint_bytes <= 0:
        raise ConfigError(
            f"workload footprint must be positive, got {footprint_bytes}"
        )
    if trace_length is not None and trace_length <= 0:
        raise ConfigError(f"trace length must be positive, got {trace_length}")
    if warmup_fraction is not None and not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )


#: The native bars of Figures 11 and 12.
NATIVE_CONFIGS = ("4K", "2M", "1G")

#: The virtualized baseline bars (guest x VMM page-size grid subset the
#: paper plots).
VIRTUALIZED_BASELINE_CONFIGS = (
    "4K+4K",
    "4K+2M",
    "4K+1G",
    "2M+2M",
    "2M+1G",
    "1G+1G",
)

#: The paper's proposed-design bars.
PROPOSED_CONFIGS = ("DS", "DD", "4K+VD", "4K+GD")
