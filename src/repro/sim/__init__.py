"""Simulation driver: configs, system assembly, trace runs."""
