"""Process-wide memoization of generated workload traces.

A sweep simulates the same (workload, trace length, seed) cell under a
dozen configurations; regenerating the identical trace -- and re-running
``np.unique`` over it for prepopulation -- for every configuration is
pure waste.  This cache generates each trace once, computes its unique
page set once, marks both arrays read-only, and shares them across every
config of the sweep.

The parallel experiment runner (:mod:`repro.experiments.parallel`)
pre-warms this cache in the parent process before forking its worker
pool, so on fork-based platforms the trace arrays are shared
copy-on-write across all workers instead of being regenerated (or
pickled) per process.  Under a ``spawn`` start method workers simply
regenerate lazily -- slower, still correct.

Keys include the workload class, name and footprint because test
workloads (e.g. ``TinyWorkload``) reuse one name across different
footprints, and the footprint changes the generated trace.

Residency is bounded two ways -- by entry count (:data:`MAX_ENTRIES`)
and by total array bytes (:data:`MAX_BYTES`) -- with least-recently-used
eviction: a hit refreshes its entry, inserts evict from the cold end
until both bounds hold.  The most recent entry is never evicted, even
when it alone exceeds the byte bound (the caller needs it regardless).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.workloads.base import Workload

#: Cached traces before the least-recently-used entries are discarded.
#: A full figure sweep needs one entry per workload; the bound only
#: matters for long-lived processes sweeping many lengths/seeds.
MAX_ENTRIES = 32

#: Built-in byte bound: 256 MiB holds every default-length trace of a
#: full figure sweep with room to spare while keeping a long-lived
#: sweep process bounded.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment override for the byte bound (fabric workers co-located
#: on one host shrink it; a beefy sweep box can raise it).
MAX_BYTES_ENV = "REPRO_TRACE_CACHE_BYTES"


def _max_bytes_from_env() -> int:
    raw = os.environ.get(MAX_BYTES_ENV)
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{MAX_BYTES_ENV}={raw!r} is not an integer byte count"
        ) from None
    if value <= 0:
        raise ConfigError(f"{MAX_BYTES_ENV} must be positive, got {value}")
    return value


#: Total bytes of cached trace arrays before LRU eviction kicks in
#: (``REPRO_TRACE_CACHE_BYTES`` in the environment, the
#: ``--trace-cache-bytes`` CLI flag via :func:`set_max_bytes`, or
#: :data:`DEFAULT_MAX_BYTES`).  Read at every eviction, so tests may
#: monkeypatch it directly.
MAX_BYTES = _max_bytes_from_env()


def set_max_bytes(value: int) -> None:
    """Rebind the byte bound and evict immediately if it shrank."""
    global MAX_BYTES
    if value <= 0:
        raise ConfigError(
            f"trace-cache byte bound must be positive, got {value}"
        )
    MAX_BYTES = value
    _evict(_METRICS)

#: (class qualname, workload name, footprint, requested length, seed,
#: ISA geometry name).
TraceKey = tuple[str, str, int, int | None, int, str]


@dataclass(frozen=True)
class CachedTrace:
    """One generated trace plus its derived unique-page array."""

    #: Page indices relative to the workload arena (read-only int64).
    pages: np.ndarray
    #: Sorted unique page indices (read-only; feeds prepopulation).
    unique_pages: np.ndarray

    @property
    def nbytes(self) -> int:
        """Resident bytes this entry pins (both arrays)."""
        return int(self.pages.nbytes) + int(self.unique_pages.nbytes)


@dataclass
class CacheStats:
    """Lifetime hit/miss/eviction counts of the process-wide cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Total bytes released by evictions (lifetime).
    evicted_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "hit_rate": round(self.hit_rate, 4),
        }


_CACHE: dict[TraceKey, CachedTrace] = {}
_STATS = CacheStats()

#: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.  The cache
#: is process-wide, so attachment is explicit rather than per-run; each
#: request bumps ``trace_cache.hits`` / ``trace_cache.misses`` there too.
_METRICS = None


def stats() -> CacheStats:
    """The live counter object (read it, or ``reset()`` it in tests)."""
    return _STATS


def attach_metrics(registry) -> None:
    """Mirror cache activity into a metrics registry (None detaches)."""
    global _METRICS
    _METRICS = registry


def trace_key(
    workload: Workload, length: int | None, seed: int, isa: str = "x86_64"
) -> TraceKey:
    """Cache key for one (workload, length, seed, isa) trace request.

    Traces are page indices relative to the arena, so today they do not
    vary with the ISA -- but the key carries the geometry name anyway so
    an x86 cell and an Sv48 cell can never alias, even once a geometry
    influences generation (e.g. canonicality-clamped generators).
    """
    spec = workload.spec
    return (
        type(workload).__qualname__,
        spec.name,
        spec.footprint_bytes,
        length,
        seed,
        isa,
    )


def get_trace(
    workload: Workload, length: int | None, seed: int, isa: str = "x86_64"
) -> CachedTrace:
    """The memoized trace for a request, generating it on first use.

    Hits refresh the entry's recency (dict insertion order doubles as
    the LRU list); misses insert at the hot end and evict from the cold
    end until both :data:`MAX_ENTRIES` and :data:`MAX_BYTES` hold.
    """
    key = trace_key(workload, length, seed, isa)
    cached = _CACHE.get(key)
    m = _METRICS
    if cached is not None:
        _STATS.hits += 1
        if m is not None and m.enabled:
            m.inc("trace_cache.hits")
        _CACHE[key] = _CACHE.pop(key)  # move to the hot (most-recent) end
        return cached
    _STATS.misses += 1
    if m is not None and m.enabled:
        m.inc("trace_cache.misses")
    pages = np.ascontiguousarray(workload.trace(length, seed=seed), dtype=np.int64)
    unique_pages = np.unique(pages)
    pages.flags.writeable = False
    unique_pages.flags.writeable = False
    cached = CachedTrace(pages=pages, unique_pages=unique_pages)
    _CACHE[key] = cached
    _evict(m)
    return cached


def _evict(m) -> None:
    """Drop least-recently-used entries until both bounds hold."""
    while len(_CACHE) > 1 and (
        len(_CACHE) > MAX_ENTRIES or cache_bytes() > MAX_BYTES
    ):
        victim = _CACHE.pop(next(iter(_CACHE)))
        _STATS.evictions += 1
        _STATS.evicted_bytes += victim.nbytes
        if m is not None and m.enabled:
            m.inc("trace_cache.evictions")
            m.inc("trace_cache.evicted_bytes", victim.nbytes)


def clear() -> None:
    """Drop every cached trace (tests; memory pressure)."""
    _CACHE.clear()


def cache_size() -> int:
    """Number of traces currently cached."""
    return len(_CACHE)


def cache_bytes() -> int:
    """Total resident bytes of every cached trace."""
    return sum(entry.nbytes for entry in _CACHE.values())
