"""Process-wide memoization of generated workload traces.

A sweep simulates the same (workload, trace length, seed) cell under a
dozen configurations; regenerating the identical trace -- and re-running
``np.unique`` over it for prepopulation -- for every configuration is
pure waste.  This cache generates each trace once, computes its unique
page set once, marks both arrays read-only, and shares them across every
config of the sweep.

The parallel experiment runner (:mod:`repro.experiments.parallel`)
pre-warms this cache in the parent process before forking its worker
pool, so on fork-based platforms the trace arrays are shared
copy-on-write across all workers instead of being regenerated (or
pickled) per process.  Under a ``spawn`` start method workers simply
regenerate lazily -- slower, still correct.

Keys include the workload class, name and footprint because test
workloads (e.g. ``TinyWorkload``) reuse one name across different
footprints, and the footprint changes the generated trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Workload

#: Cached traces before the oldest entries are discarded.  A full figure
#: sweep needs one entry per workload; the bound only matters for
#: long-lived processes sweeping many lengths/seeds.
MAX_ENTRIES = 32

#: (class qualname, workload name, footprint, requested length, seed).
TraceKey = tuple[str, str, int, int | None, int]


@dataclass(frozen=True)
class CachedTrace:
    """One generated trace plus its derived unique-page array."""

    #: Page indices relative to the workload arena (read-only int64).
    pages: np.ndarray
    #: Sorted unique page indices (read-only; feeds prepopulation).
    unique_pages: np.ndarray


@dataclass
class CacheStats:
    """Lifetime hit/miss/eviction counts of the process-wide cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


_CACHE: dict[TraceKey, CachedTrace] = {}
_STATS = CacheStats()

#: Optional :class:`repro.obs.metrics.MetricsRegistry` mirror.  The cache
#: is process-wide, so attachment is explicit rather than per-run; each
#: request bumps ``trace_cache.hits`` / ``trace_cache.misses`` there too.
_METRICS = None


def stats() -> CacheStats:
    """The live counter object (read it, or ``reset()`` it in tests)."""
    return _STATS


def attach_metrics(registry) -> None:
    """Mirror cache activity into a metrics registry (None detaches)."""
    global _METRICS
    _METRICS = registry


def trace_key(workload: Workload, length: int | None, seed: int) -> TraceKey:
    """Cache key for one (workload, length, seed) trace request."""
    spec = workload.spec
    return (
        type(workload).__qualname__,
        spec.name,
        spec.footprint_bytes,
        length,
        seed,
    )


def get_trace(workload: Workload, length: int | None, seed: int) -> CachedTrace:
    """The memoized trace for a request, generating it on first use."""
    key = trace_key(workload, length, seed)
    cached = _CACHE.get(key)
    m = _METRICS
    if cached is not None:
        _STATS.hits += 1
        if m is not None and m.enabled:
            m.inc("trace_cache.hits")
        return cached
    _STATS.misses += 1
    if m is not None and m.enabled:
        m.inc("trace_cache.misses")
    pages = np.ascontiguousarray(workload.trace(length, seed=seed), dtype=np.int64)
    unique_pages = np.unique(pages)
    pages.flags.writeable = False
    unique_pages.flags.writeable = False
    cached = CachedTrace(pages=pages, unique_pages=unique_pages)
    while len(_CACHE) >= MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))
        _STATS.evictions += 1
        if m is not None and m.enabled:
            m.inc("trace_cache.evictions")
    _CACHE[key] = cached
    return cached


def clear() -> None:
    """Drop every cached trace (tests; memory pressure)."""
    _CACHE.clear()


def cache_size() -> int:
    """Number of traces currently cached."""
    return len(_CACHE)
