"""Assemble complete simulated machines from a :class:`SystemConfig`.

A built system bundles the host (hypervisor or native OS), the guest OS
and process, the TLB hierarchy, the mode-appropriate walker and the MMU,
with segments created and fault handlers wired -- ready for a trace to
be driven through :func:`repro.sim.simulator.run_trace`.

Construction follows the paper's prototype recipe:

* contiguous memory for segments is reserved at startup (Section VI.A);
* VMM Direct and Dual Direct systems perform the I/O-gap reclaim first
  (Section VI.C), then reserve the remaining below-gap memory for the
  guest kernel, so application data lands inside the VMM segment;
* the guest's page-table pool is placed inside the VMM segment so page
  walks themselves resolve through it (Section III.B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address import GIB, AddressRange
from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.core.modes import TranslationMode
from repro.core.mmu import MMU
from repro.core.walker import DirectSegmentWalker, NativeWalker, NestedWalker
from repro.guest.guest_os import GuestOS, GuestOSConfig
from repro.guest.hotplug import reclaim_io_gap
from repro.guest.process import GuestProcess
from repro.mem.badpages import BadPageList
from repro.mem.frame_allocator import OutOfMemoryError
from repro.mem.physical_layout import IO_GAP_END, IO_GAP_START, PhysicalLayout
from repro.sim.config import SystemConfig, validate_geometry, validate_run_parameters
from repro.tlb.hierarchy import TLBGeometry, TLBHierarchy
from repro.vmm.hypervisor import Hypervisor, VirtualMachine
from repro.workloads.base import WorkloadSpec

#: Guest physical memory beyond the workload footprint (kernel, slack).
GUEST_MEMORY_SLACK = 4 * GIB

#: Host physical memory beyond the guest's (VMM, other tenants' slack).
HOST_MEMORY_SLACK = 4 * GIB


@dataclass
class SimulatedSystem:
    """One ready-to-run machine."""

    config: SystemConfig
    mmu: MMU
    hierarchy: TLBHierarchy
    process: GuestProcess
    guest_os: GuestOS
    #: None for native systems.
    vm: VirtualMachine | None
    hypervisor: Hypervisor | None
    costs: CostModel

    @property
    def base_va(self) -> int:
        """First virtual address of the workload's data arena."""
        primary = self.process.primary_region
        assert primary is not None
        return primary.range.start

    def refresh_segments(self) -> None:
        """Re-sync walker registers after a mode change or segment
        (re)creation (hardware would reload them on VM entry)."""
        walker = self.mmu.walker
        if isinstance(walker, NestedWalker):
            assert self.vm is not None
            if not self.guest_os.config.emulate_segments:
                walker.guest_segment = self.process.guest_segment
                walker.vmm_segment = self.vm.vmm_segment
            walker.vmm_escape_filter = self.vm.escape_filter
            walker.guest_escape_filter = self.process.guest_escape_filter
        elif isinstance(walker, DirectSegmentWalker):
            walker.segment = self.process.guest_segment
            walker.escape_filter = self.process.guest_escape_filter

    def resync_translation_state(self) -> None:
        """Bring the MMU back in line with software state after a fault.

        Graceful degradation may have shrunk a segment, repointed the
        escape filter, remapped frames or changed the VM's translation
        mode; real fault handling ends with a register reload and a TLB
        shoot-down, which this models: the MMU adopts the VM's (possibly
        downgraded) mode, the walker re-reads the segment register file,
        and every cached translation is discarded.
        """
        if self.vm is not None:
            self.mmu.mode = self.vm.mode
        self.refresh_segments()
        self.mmu.flush_tlbs()

    def context_switch(self, new_process) -> None:
        """Switch the running guest process (Section III.C).

        Hardware saves/restores BASE_G/LIMIT_G/OFFSET_G with the rest of
        the process state; the CR3 write flushes the TLBs and walk
        caches.  (The guest segment registers come from the process; the
        VMM segment registers are per-VM and survive the switch.)
        """
        registers = self.guest_os.context_switch(self.process, new_process)
        self.process = new_process
        self.mmu.flush_tlbs()
        walker = self.mmu.walker
        table = self.guest_os.page_table_of(new_process)
        if isinstance(walker, NestedWalker):
            walker.guest_table = table
            if not self.guest_os.config.emulate_segments:
                walker.guest_segment = registers
                walker.guest_escape_filter = new_process.guest_escape_filter
        else:
            walker.page_table = table
            if isinstance(walker, DirectSegmentWalker):
                walker.segment = registers
                walker.escape_filter = new_process.guest_escape_filter


def build_system(
    config: SystemConfig,
    spec: WorkloadSpec,
    costs: CostModel | None = None,
    geometry: TLBGeometry | None = None,
    bad_pages: BadPageList | None = None,
    emulate_segments: bool = False,
) -> SimulatedSystem:
    """Construct the machine for one (configuration, workload) pair.

    The returned system has empty page tables; call
    :func:`populate_for_addresses` (the simulator does this) to reach
    the steady state the paper measures, or drive accesses through the
    MMU and let demand paging fill them.
    """
    costs = costs or DEFAULT_COSTS
    validate_run_parameters(spec.footprint_bytes)
    if geometry is not None:
        validate_geometry(geometry)
    _check_address_space_fit(config, spec)
    if config.virtualized:
        return _build_virtualized(
            config, spec, costs, geometry, bad_pages, emulate_segments
        )
    return _build_native(config, spec, costs, geometry, bad_pages)


def populate_for_addresses(system: SimulatedSystem, addresses) -> None:
    """Pre-fault exactly the virtual addresses a trace will touch.

    The paper's workloads allocate and touch their datasets at startup
    and are measured in steady state; population restricted to the
    touched pages is behaviourally identical for the trace while keeping
    build time proportional to the trace, not the footprint.
    """
    process = system.process
    guest_os = system.guest_os
    table = guest_os.page_table_of(process)
    segment = process.guest_segment
    hw_guest_segment = segment.enabled and not guest_os.config.emulate_segments

    segment_gpas: list[int] = []
    for va in addresses:
        va = int(va)
        if hw_guest_segment and segment.covers(va):
            segment_gpas.append(segment.translate_unchecked(va))
            continue
        if not table.is_mapped(va):
            guest_os.handle_page_fault(process, va)
    if system.vm is None:
        return

    targets = [
        AddressRange.of_size(frame * 4096, 4096) for frame in table.node_frames
    ]
    for _, entry in table.leaves():
        targets.append(
            AddressRange.of_size(entry.frame * 4096, int(entry.page_size))
        )
    for gpa in segment_gpas:
        targets.append(AddressRange.of_size(gpa & ~0xFFF, 4096))
    system.vm.populate_nested(targets)


def _check_address_space_fit(config: SystemConfig, spec: WorkloadSpec) -> None:
    """Reject workloads whose arena overflows the ISA's virtual space.

    The arena starts at :data:`DEFAULT_PRIMARY_REGION_BASE`; its last
    byte must be canonical in the configured geometry (sv39 only has a
    512 GB space) and the (guest-)physical footprint must be addressable
    by the nested dimension.
    """
    from repro.errors import ConfigError
    from repro.guest.process import DEFAULT_PRIMARY_REGION_BASE

    isa = config.translation_geometry()
    arena_end = DEFAULT_PRIMARY_REGION_BASE + spec.footprint_bytes - 1
    if not isa.is_canonical(arena_end):
        raise ConfigError(
            f"{config.label}: workload arena ends at {arena_end:#x}, "
            f"outside {isa.name}'s {isa.address_bits}-bit virtual space"
        )
    physical_end = spec.footprint_bytes + GUEST_MEMORY_SLACK + HOST_MEMORY_SLACK - 1
    if physical_end >= config.nested_geometry().address_space_size:
        raise ConfigError(
            f"{config.label}: physical footprint {physical_end + 1:#x} exceeds "
            f"{config.nested_geometry().name}'s output space"
        )


# ----------------------------------------------------------------------
# Native systems


def _build_native(
    config: SystemConfig,
    spec: WorkloadSpec,
    costs: CostModel,
    geometry: TLBGeometry | None,
    bad_pages: BadPageList | None,
) -> SimulatedSystem:
    memory = spec.footprint_bytes + GUEST_MEMORY_SLACK + HOST_MEMORY_SLACK
    layout = PhysicalLayout(memory)
    os_config = GuestOSConfig(thp=config.thp)
    native_os = GuestOS(layout, os_config, geometry=config.translation_geometry())
    process = native_os.spawn(page_size=config.guest_page)
    process.mmap(spec.footprint_bytes, is_primary_region=True)
    table = native_os.page_table_of(process)

    hierarchy = TLBHierarchy(geometry)
    if config.mode is TranslationMode.NATIVE_DIRECT_SEGMENT:
        segment = native_os.create_guest_segment(process)
        escape = None
        if bad_pages is not None:
            from repro.core.escape_filter import EscapeFilter

            escape = EscapeFilter()
            start_frame = (segment.base + segment.offset) // 4096
            for bad in bad_pages.bad_frames_in(
                start_frame, segment.size // 4096
            ):
                escape.insert(bad - segment.offset // 4096)
        walker: NativeWalker = DirectSegmentWalker(
            table, costs, process.guest_segment, escape_filter=escape
        )
    else:
        walker = NativeWalker(table, costs)

    mmu = MMU(config.mode, hierarchy, walker, costs=costs)
    system = SimulatedSystem(
        config=config,
        mmu=mmu,
        hierarchy=hierarchy,
        process=process,
        guest_os=native_os,
        vm=None,
        hypervisor=None,
        costs=costs,
    )
    # The handler tracks the *current* process so context switches keep
    # demand paging working.
    mmu.on_guest_fault = lambda va: native_os.handle_page_fault(system.process, va)
    return system


# ----------------------------------------------------------------------
# Virtualized systems


def _build_virtualized(
    config: SystemConfig,
    spec: WorkloadSpec,
    costs: CostModel,
    geometry: TLBGeometry | None,
    bad_pages: BadPageList | None,
    emulate_segments: bool,
) -> SimulatedSystem:
    guest_memory = spec.footprint_bytes + GUEST_MEMORY_SLACK
    host_memory = guest_memory + IO_GAP_END - IO_GAP_START + HOST_MEMORY_SLACK
    hypervisor = Hypervisor(
        host_memory_bytes=host_memory,
        bad_pages=bad_pages or BadPageList(),
    )
    assert config.nested_page is not None
    vm = hypervisor.create_vm(
        "vm0",
        memory_bytes=guest_memory,
        nested_page_size=config.nested_page,
        emulate_segments=emulate_segments,
        nested_geometry=config.nested_geometry(),
    )

    uses_vmm_segment = config.mode.uses_vmm_segment
    pt_hint = (
        AddressRange(IO_GAP_END, IO_GAP_END + guest_memory) if uses_vmm_segment else None
    )
    guest_os = GuestOS(
        vm.guest_layout,
        GuestOSConfig(thp=config.thp, emulate_segments=emulate_segments),
        pt_pool_hint=pt_hint,
        geometry=config.translation_geometry(),
    )
    process = guest_os.spawn(page_size=config.guest_page)
    process.mmap(spec.footprint_bytes, is_primary_region=True)

    if uses_vmm_segment:
        # The prototype's I/O-gap reclaim: relocate below-gap guest
        # memory above the gap so one VMM segment can cover it all.
        reclaim_io_gap(guest_os, vm)
        _reserve_kernel_low_memory(guest_os)

    if config.mode.uses_guest_segment:
        guest_os.create_guest_segment(process)
    if uses_vmm_segment:
        vm.create_vmm_segment()
    vm.set_mode(config.mode)

    hierarchy = TLBHierarchy(geometry)
    table = guest_os.page_table_of(process)
    walker = NestedWalker(
        table,
        vm.nested_table,
        costs,
        hierarchy,
        guest_segment=(
            process.guest_segment if not emulate_segments else None
        ),
        vmm_segment=(vm.vmm_segment if not emulate_segments else None),
        vmm_escape_filter=vm.escape_filter,
        guest_escape_filter=process.guest_escape_filter,
    )
    mmu = MMU(
        config.mode,
        hierarchy,
        walker,
        costs=costs,
        on_nested_fault=vm.handle_nested_fault,
    )
    system = SimulatedSystem(
        config=config,
        mmu=mmu,
        hierarchy=hierarchy,
        process=process,
        guest_os=guest_os,
        vm=vm,
        hypervisor=hypervisor,
        costs=costs,
    )
    # The handler tracks the *current* process so context switches keep
    # demand paging working.
    mmu.on_guest_fault = lambda va: guest_os.handle_page_fault(system.process, va)
    return system


def _reserve_kernel_low_memory(guest_os: GuestOS) -> None:
    """Pin the remaining below-gap memory as guest-kernel memory.

    After the I/O-gap reclaim only ~256 MB remains below the gap; the
    real guest kernel lives there (Section VI.C), so application data
    never lands outside the VMM segment.
    """
    allocator = guest_os.allocator
    below_gap_frames = 0
    for start, end in allocator._region_frames:  # noqa: SLF001 - boot-time introspection
        if end * 4096 <= IO_GAP_START:
            below_gap_frames += end - start
    if not below_gap_frames:
        return
    within = AddressRange(0, IO_GAP_START // 4096)
    try:
        allocator.reserve_contiguous(below_gap_frames, within=within)
    except OutOfMemoryError:
        # The guest OS already placed something (e.g. the PT pool) below
        # the gap; pin whatever single frames remain instead.
        while True:
            try:
                run = allocator._find_free_run(1, within)  # noqa: SLF001
            except Exception:
                break
            if run is None:
                break
            allocator.alloc_specific(run, 0)
