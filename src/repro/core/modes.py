"""Translation modes of Figure 3 and the trade-off matrix of Table II.

Each guest process (address space) runs in exactly one mode at a time
(Section III); the hardware supports switching modes dynamically.  The
two native modes translate VA -> PA in one dimension; the four virtualized
modes translate gVA -> gPA -> hPA and differ in which dimension (if any) a
direct segment collapses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.address import PageSize

if TYPE_CHECKING:  # pragma: no cover - hints only (avoids an import cycle)
    from repro.isa.geometry import TranslationGeometry


class TranslationMode(enum.Enum):
    """The six modes the proposed hardware supports (Figure 3)."""

    #: Unvirtualized, page tables only (1D walk).
    NATIVE = "native"
    #: Unvirtualized direct segment (Section III.D): segment in parallel
    #: with the L2 TLB, pages for the rest of the space.
    NATIVE_DIRECT_SEGMENT = "native-ds"
    #: Virtualized, nested paging only (the 2D walk of Figure 2).
    BASE_VIRTUALIZED = "base-virtualized"
    #: Direct segments at both levels: gVA -> hPA by two adds (0D walk).
    DUAL_DIRECT = "dual-direct"
    #: Guest paging + VMM segment: 1D walk, guest unchanged (Section III.B).
    VMM_DIRECT = "vmm-direct"
    #: Guest segment + nested paging: 1D walk, VMM unchanged (Section III.C).
    GUEST_DIRECT = "guest-direct"

    @property
    def virtualized(self) -> bool:
        """True for the four modes that run under a VMM."""
        return self not in (
            TranslationMode.NATIVE,
            TranslationMode.NATIVE_DIRECT_SEGMENT,
        )

    @property
    def uses_guest_segment(self) -> bool:
        """True if the mode consults BASE_G/LIMIT_G/OFFSET_G."""
        return self in (
            TranslationMode.NATIVE_DIRECT_SEGMENT,
            TranslationMode.DUAL_DIRECT,
            TranslationMode.GUEST_DIRECT,
        )

    @property
    def uses_vmm_segment(self) -> bool:
        """True if the mode consults BASE_V/LIMIT_V/OFFSET_V."""
        return self in (TranslationMode.DUAL_DIRECT, TranslationMode.VMM_DIRECT)


@dataclass(frozen=True)
class ModeProperties:
    """One column of Table II."""

    mode: TranslationMode
    #: Dimensionality of the common-case page walk (2, 1 or 0).
    walk_dimensions: int
    #: Page-table memory accesses for most page walks (4 KB pages both
    #: levels): 24 for the 2D walk, 4 for the 1D modes, 0 for Dual Direct.
    walk_memory_accesses: int
    #: Base-bound checks performed during a page walk (Table II row 3).
    base_bound_checks: int
    guest_os_modifications: bool
    vmm_modifications: bool
    #: 'any' or 'big memory' (primary-region restrictions, Section III.A).
    application_category: str
    page_sharing: str
    ballooning: str
    guest_swapping: str
    vmm_swapping: str


_UNRESTRICTED = "unrestricted"
_LIMITED = "limited"

#: Table II, verbatim.  Keyed by mode; native modes are not in the table.
MODE_PROPERTIES: dict[TranslationMode, ModeProperties] = {
    TranslationMode.BASE_VIRTUALIZED: ModeProperties(
        mode=TranslationMode.BASE_VIRTUALIZED,
        walk_dimensions=2,
        walk_memory_accesses=24,
        base_bound_checks=0,
        guest_os_modifications=False,
        vmm_modifications=False,
        application_category="any",
        page_sharing=_UNRESTRICTED,
        ballooning=_UNRESTRICTED,
        guest_swapping=_UNRESTRICTED,
        vmm_swapping=_UNRESTRICTED,
    ),
    TranslationMode.DUAL_DIRECT: ModeProperties(
        mode=TranslationMode.DUAL_DIRECT,
        walk_dimensions=0,
        walk_memory_accesses=0,
        base_bound_checks=1,
        guest_os_modifications=True,
        vmm_modifications=True,
        application_category="big memory",
        page_sharing=_LIMITED,
        ballooning=_LIMITED,
        guest_swapping=_LIMITED,
        vmm_swapping=_LIMITED,
    ),
    TranslationMode.VMM_DIRECT: ModeProperties(
        mode=TranslationMode.VMM_DIRECT,
        walk_dimensions=1,
        walk_memory_accesses=4,
        base_bound_checks=5,
        guest_os_modifications=False,
        vmm_modifications=True,
        application_category="any",
        page_sharing=_LIMITED,
        ballooning=_LIMITED,
        guest_swapping=_UNRESTRICTED,
        vmm_swapping=_LIMITED,
    ),
    TranslationMode.GUEST_DIRECT: ModeProperties(
        mode=TranslationMode.GUEST_DIRECT,
        walk_dimensions=1,
        walk_memory_accesses=4,
        base_bound_checks=1,
        guest_os_modifications=True,
        vmm_modifications=False,
        application_category="big memory",
        page_sharing=_UNRESTRICTED,
        ballooning=_UNRESTRICTED,
        guest_swapping=_LIMITED,
        vmm_swapping=_UNRESTRICTED,
    ),
}


def walk_references(
    mode: TranslationMode,
    guest_page: PageSize = PageSize.SIZE_4K,
    nested_page: PageSize = PageSize.SIZE_4K,
    geometry: "TranslationGeometry | None" = None,
) -> int:
    """Page-table memory references for a full walk in ``mode``.

    The general 2D count with ``g`` guest levels and ``n`` nested levels is
    ``g*(n+1) + n`` (Figure 2): each of the ``g`` guest page-table pointers
    is a gPA needing an ``n``-step nested walk plus the guest PTE load
    itself, and the final gPA needs one more nested walk.  With 4 levels at
    both dimensions this is the paper's 5*4+4 = 24 references.

    ``geometry`` generalizes the level counts beyond x86's 4-level radix
    (``None`` keeps the paper's defaults): the guest dimension walks the
    geometry itself, the nested dimension its G-stage composition.
    """
    if geometry is None:
        g = guest_page.levels
        n = nested_page.levels
    else:
        g = geometry.walk_levels(guest_page)
        n = geometry.gstage().walk_levels(nested_page)
    if mode in (TranslationMode.NATIVE, TranslationMode.NATIVE_DIRECT_SEGMENT):
        return g
    if mode is TranslationMode.BASE_VIRTUALIZED:
        return g * (n + 1) + n
    if mode is TranslationMode.DUAL_DIRECT:
        return 0
    if mode is TranslationMode.VMM_DIRECT:
        # Guest page walk only; every gPA resolves by segment addition.
        return g
    if mode is TranslationMode.GUEST_DIRECT:
        # One segment addition, then a plain nested walk for the final gPA.
        return n
    raise ValueError(f"unknown mode: {mode}")


def base_bound_checks(
    mode: TranslationMode,
    guest_page: PageSize = PageSize.SIZE_4K,
    geometry: "TranslationGeometry | None" = None,
) -> int:
    """Base-bound checks during a walk (generalizes Table II row 3).

    VMM Direct checks each of the ``g`` guest-PTE pointers plus the final
    gPA (``g + 1``, i.e. 5 for 4 KB guests -- the paper's Delta_VD); Dual
    Direct and Guest Direct need a single check (Delta_GD = 1).
    ``geometry`` generalizes ``g`` beyond x86's 4-level radix.
    """
    if mode is TranslationMode.VMM_DIRECT:
        if geometry is None:
            return guest_page.levels + 1
        return geometry.walk_levels(guest_page) + 1
    if mode in (
        TranslationMode.DUAL_DIRECT,
        TranslationMode.GUEST_DIRECT,
        TranslationMode.NATIVE_DIRECT_SEGMENT,
    ):
        return 1
    return 0


def capability_matrix(
    geometry: "TranslationGeometry",
) -> dict[TranslationMode, ModeProperties]:
    """Table II re-derived for one ISA geometry.

    Direct segments are an ISA-neutral hardware proposal (three registers
    and an adder per dimension), so every registered geometry supports
    all four virtualized modes; what changes per ISA are the walk-cost
    columns: the 2D reference count ``g*(n+1)+n`` and VMM Direct's
    ``g+1`` checks follow the level counts (RISC-V's G-stage composition
    includes the widened root, which adds gPA bits but no extra level).
    The software-flexibility rows are mode properties, not ISA
    properties, and carry over from the paper's matrix verbatim.
    """
    matrix: dict[TranslationMode, ModeProperties] = {}
    for mode, props in MODE_PROPERTIES.items():
        matrix[mode] = ModeProperties(
            mode=mode,
            walk_dimensions=props.walk_dimensions,
            walk_memory_accesses=walk_references(mode, geometry=geometry),
            base_bound_checks=base_bound_checks(mode, geometry=geometry),
            guest_os_modifications=props.guest_os_modifications,
            vmm_modifications=props.vmm_modifications,
            application_category=props.application_category,
            page_sharing=props.page_sharing,
            ballooning=props.ballooning,
            guest_swapping=props.guest_swapping,
            vmm_swapping=props.vmm_swapping,
        )
    return matrix
