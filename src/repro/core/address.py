"""x86-64 address arithmetic: page sizes, radix indices, canonical form.

The paper's hardware operates on three address spaces (Section I):

* ``gVA`` -- guest virtual addresses, translated by the guest page table,
* ``gPA`` -- guest physical addresses, translated by the nested page table,
* ``hPA`` -- host physical addresses, the final output of translation.

All three are 48-bit x86-64 addresses.  This module provides the shared
arithmetic: page-size constants, page-number/offset splitting, and the
4-level radix indices used by both the guest and the nested page tables.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError

#: Number of meaningful bits in an x86-64 virtual address (256 TB space).
ADDRESS_BITS = 48

#: Size of the full x86-64 virtual address space (2**48 bytes).
ADDRESS_SPACE_SIZE = 1 << ADDRESS_BITS

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Bits per radix level in the x86-64 page table (512 entries per node).
RADIX_BITS = 9

#: Offset bits of a base (4 KB) page.
BASE_PAGE_BITS = 12

#: Size in bytes of a base (4 KB) page.
BASE_PAGE_SIZE = 1 << BASE_PAGE_BITS


class PageSize(enum.IntEnum):
    """The three x86-64 page sizes, valued by their size in bytes.

    The integer value is the page size in bytes so that arithmetic such as
    ``address // PageSize.SIZE_2M`` reads naturally.
    """

    SIZE_4K = 4 * KIB
    SIZE_2M = 2 * MIB
    SIZE_1G = 1 * GIB

    #: Number of offset bits for this page size (12, 21 or 30).  A plain
    #: per-member attribute, precomputed below: ``bits`` sits on the walk
    #: and TLB-probe hot paths, where a property call per reference is
    #: measurable.
    bits: int

    @property
    def levels(self) -> int:
        """Page-table levels walked to reach a leaf of this size.

        A 4 KB translation walks PML4, PDPT, PD and PT (4 levels); a 2 MB
        translation terminates at the PD (3 levels); a 1 GB translation
        terminates at the PDPT (2 levels).  These counts drive the paper's
        reference-count arithmetic (Figure 2).
        """
        return {PageSize.SIZE_4K: 4, PageSize.SIZE_2M: 3, PageSize.SIZE_1G: 2}[self]

    @property
    def base_pages(self) -> int:
        """Number of 4 KB pages covered by one page of this size."""
        return int(self) // BASE_PAGE_SIZE

    @property
    def label(self) -> str:
        """Short label used in experiment output ('4K', '2M', '1G')."""
        return {
            PageSize.SIZE_4K: "4K",
            PageSize.SIZE_2M: "2M",
            PageSize.SIZE_1G: "1G",
        }[self]

    @classmethod
    def from_label(cls, label: str) -> "PageSize":
        """Parse a '4K'/'2M'/'1G' label (as used in config names)."""
        table = {"4K": cls.SIZE_4K, "2M": cls.SIZE_2M, "1G": cls.SIZE_1G}
        try:
            return table[label.upper()]
        except KeyError:
            raise ValueError(f"unknown page size label: {label!r}") from None


# Precompute the hot per-member attributes (enum members accept plain
# attribute assignment; the values are immutable facts of the size).
for _member in PageSize:
    _member.bits = int(_member).bit_length() - 1
del _member


#: Names of the four x86-64 page-table levels, root first.
LEVEL_NAMES = ("PML4", "PDPT", "PD", "PT")


def is_canonical(address: int) -> bool:
    """Return True if ``address`` fits in the 48-bit address space.

    We model the lower (user) half of the canonical space only; kernel
    addresses are out of scope for the paper's DTLB study.
    """
    return 0 <= address < ADDRESS_SPACE_SIZE


def check_canonical(address: int) -> int:
    """Validate an address, returning it unchanged; raise on violation."""
    if not is_canonical(address):
        raise ValueError(f"address {address:#x} outside 48-bit space")
    return address


def page_number(address: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """Page number of ``address`` at the given granularity."""
    return address >> page_size.bits


def page_offset(address: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """Offset of ``address`` within its page at the given granularity."""
    return address & (int(page_size) - 1)


def page_base(address: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """Address of the first byte of the page containing ``address``."""
    return address & ~(int(page_size) - 1)


def align_up(address: int, page_size: PageSize) -> int:
    """Round ``address`` up to the next page boundary (identity if aligned)."""
    mask = int(page_size) - 1
    return (address + mask) & ~mask


def align_down(address: int, page_size: PageSize) -> int:
    """Round ``address`` down to a page boundary (identity if aligned)."""
    return address & ~(int(page_size) - 1)


def is_aligned(address: int, page_size: PageSize) -> bool:
    """True if ``address`` is a multiple of the page size."""
    return page_offset(address, page_size) == 0


def radix_index(address: int, level: int) -> int:
    """Radix index of ``address`` at page-table ``level`` (0 = PML4 root).

    x86-64 splits bits 47..12 into four 9-bit indices: bits 47..39 select
    the PML4 entry, 38..30 the PDPT entry, 29..21 the PD entry and 20..12
    the PT entry.
    """
    if not 0 <= level <= 3:
        raise ConfigError(f"page-table level must be 0..3, got {level}")
    shift = BASE_PAGE_BITS + RADIX_BITS * (3 - level)
    return (address >> shift) & ((1 << RADIX_BITS) - 1)


def radix_indices(address: int) -> tuple[int, int, int, int]:
    """All four radix indices of ``address``, root (PML4) first."""
    return tuple(radix_index(address, level) for level in range(4))  # type: ignore[return-value]


def vpn_to_address(vpn: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """First byte address of virtual page number ``vpn``."""
    return vpn << page_size.bits


def format_size(nbytes: int) -> str:
    """Human-readable size used in experiment reports ('80.0GB', '256MB')."""
    for unit, size in (("TB", TIB), ("GB", GIB), ("MB", MIB), ("KB", KIB)):
        if nbytes >= size:
            value = nbytes / size
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
    return f"{nbytes}B"


class AddressRange:
    """A half-open ``[start, end)`` range of addresses.

    Used for segments, memory slots, reserved regions and the I/O gap.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int) -> None:
        if end < start:
            raise ValueError(f"range end {end:#x} precedes start {start:#x}")
        self.start = start
        self.end = end

    @classmethod
    def of_size(cls, start: int, size: int) -> "AddressRange":
        """Range of ``size`` bytes beginning at ``start``."""
        return cls(start, start + size)

    @property
    def size(self) -> int:
        """Length of the range in bytes."""
        return self.end - self.start

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        """True if ``other`` lies entirely within this range."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """True if the two ranges share at least one address."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddressRange") -> "AddressRange | None":
        """Overlapping sub-range, or None if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return AddressRange(start, end)

    def pages(self, page_size: PageSize = PageSize.SIZE_4K) -> range:
        """Page numbers fully or partially covered by this range."""
        if self.size == 0:
            return range(0)
        first = page_number(self.start, page_size)
        last = page_number(self.end - 1, page_size)
        return range(first, last + 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AddressRange):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"AddressRange({self.start:#x}, {self.end:#x})"
