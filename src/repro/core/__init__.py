"""The paper's proposed hardware: segments, escape filter, walkers, MMU."""
