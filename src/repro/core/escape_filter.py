"""Escape filter: a small hardware Bloom filter that pokes holes in segments.

Section V: a single faulty physical page would otherwise prevent creation
of a large direct segment.  The escape filter lets individual pages
"escape" segment translation back to conventional paging.  An address is
translated by the segment only if it lies inside the segment *and not* in
the filter; escaped pages (and any false positives) must have ordinary
page-table mappings, which the VMM or OS creates.

The paper evaluates a 256-bit *parallel* Bloom filter with four H3 hash
functions (Sanchez et al. [44]): the bit array is split into four 64-bit
banks, one per hash function, probed concurrently.  H3 hashes are linear
over GF(2): each hash is defined by a fixed random binary matrix, and the
hash of a key is the XOR of the matrix rows selected by the key's set
bits -- cheap in hardware (an XOR tree) and well distributed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import EscapeFilterFullError

#: Geometry evaluated in Section IX.C.
DEFAULT_FILTER_BITS = 256
DEFAULT_HASH_FUNCTIONS = 4

#: Width of the hashed key in bits.  Keys are page numbers: 48-bit
#: addresses minus the 12-bit page offset.
KEY_BITS = 36


class H3Hash:
    """One H3 hash function: a random GF(2)-linear map from keys to indices.

    The function is defined by ``KEY_BITS`` rows of ``index_bits`` bits;
    ``hash(key)`` XORs together the rows at positions where ``key`` has a
    one bit.
    """

    def __init__(self, index_bits: int, rng: random.Random) -> None:
        if index_bits <= 0:
            raise ValueError("index_bits must be positive")
        self.index_bits = index_bits
        mask = (1 << index_bits) - 1
        self._rows = tuple(rng.getrandbits(index_bits) & mask for _ in range(KEY_BITS))

    def __call__(self, key: int) -> int:
        value = 0
        rows = self._rows
        bit = 0
        while key and bit < KEY_BITS:
            if key & 1:
                value ^= rows[bit]
            key >>= 1
            bit += 1
        return value


@dataclass
class EscapeFilter:
    """Parallel Bloom filter over page numbers, part of the context state.

    The filter is architectural state: it is saved and restored alongside
    the segment registers (Section V), which :meth:`save`/:meth:`restore`
    model.  ``insert`` is a privileged operation performed by the VMM (or
    the OS in unvirtualized Direct Segment mode) when it escapes a page.

    False positives are inherent to Bloom filters; :meth:`may_contain`
    therefore over-approximates the escaped set.  The software contract
    (enforced by the fault handlers in :mod:`repro.guest.guest_os` and
    :mod:`repro.vmm.hypervisor`) is that every address for which
    ``may_contain`` is true has a conventional page-table mapping.
    """

    total_bits: int = DEFAULT_FILTER_BITS
    num_hashes: int = DEFAULT_HASH_FUNCTIONS
    seed: int = 0x5EED
    #: Modelled insert limit.  A Bloom filter has no architectural cap,
    #: but its false-positive rate -- the fraction of the segment that
    #: silently pays for paging -- grows with every insertion, so the
    #: managing software refuses inserts past this point and must degrade
    #: instead (shrink the segment or fall back to nested paging).
    #: ``None`` means unlimited (the seed behaviour).
    capacity: int | None = None
    #: Lifetime hardware-probe counters (instrumentation, not
    #: architectural state: save/restore/clear leave them alone).  The
    #: profiler reads them as deltas from an attach-time baseline.
    probes: int = field(default=0, init=False)
    probe_hits: int = field(default=0, init=False)
    _banks: list[int] = field(init=False, repr=False)
    _hashes: tuple[H3Hash, ...] = field(init=False, repr=False)
    _inserted: set[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.total_bits % self.num_hashes != 0:
            raise ValueError(
                f"{self.total_bits}-bit filter not divisible into "
                f"{self.num_hashes} banks"
            )
        bank_bits = self.total_bits // self.num_hashes
        if bank_bits & (bank_bits - 1):
            raise ValueError(f"bank size {bank_bits} is not a power of two")
        rng = random.Random(self.seed)
        index_bits = bank_bits.bit_length() - 1
        self._hashes = tuple(H3Hash(index_bits, rng) for _ in range(self.num_hashes))
        self._banks = [0] * self.num_hashes
        self._inserted = set()

    @property
    def bank_bits(self) -> int:
        """Bits per bank (total bits / hash functions)."""
        return self.total_bits // self.num_hashes

    @property
    def inserted_pages(self) -> frozenset[int]:
        """Exact set of pages software has escaped (ground truth, not HW)."""
        return frozenset(self._inserted)

    @property
    def is_full(self) -> bool:
        """True when the modelled capacity is exhausted."""
        return self.capacity is not None and len(self._inserted) >= self.capacity

    def insert(self, page: int) -> None:
        """Escape ``page``: set one bit per bank.

        Raises :class:`~repro.errors.EscapeFilterFullError` when the
        modelled capacity is exhausted (re-inserting an already-escaped
        page is always allowed -- it changes no state).
        """
        if self.is_full and page not in self._inserted:
            raise EscapeFilterFullError(
                f"escape filter at capacity ({self.capacity} pages); "
                f"cannot escape page {page:#x}"
            )
        for bank, h in enumerate(self._hashes):
            self._banks[bank] |= 1 << h(page)
        self._inserted.add(page)

    def may_contain(self, page: int) -> bool:
        """The hardware probe: true if every bank has the hashed bit set.

        May return true for pages never inserted (false positives); never
        returns false for an inserted page.
        """
        self.probes += 1
        for bank, h in enumerate(self._hashes):
            if not self._banks[bank] & (1 << h(page)):
                return False
        self.probe_hits += 1
        return True

    def probe_stats(self) -> dict:
        """Lifetime probe counts as plain data (profiler / reports)."""
        return {"probes": self.probes, "probe_hits": self.probe_hits}

    def is_false_positive(self, page: int) -> bool:
        """True if the probe hits but software never escaped this page."""
        return self.may_contain(page) and page not in self._inserted

    def false_positive_rate(self, probe_pages: range) -> float:
        """Measured false-positive rate across ``probe_pages``."""
        candidates = [p for p in probe_pages if p not in self._inserted]
        if not candidates:
            return 0.0
        hits = sum(1 for p in candidates if self.may_contain(p))
        return hits / len(candidates)

    def clear(self) -> None:
        """Reset the filter to empty (all banks zero)."""
        self._banks = [0] * self.num_hashes
        self._inserted.clear()

    def save(self) -> tuple[tuple[int, ...], frozenset[int]]:
        """Snapshot filter state for a context switch (Section V)."""
        return (tuple(self._banks), frozenset(self._inserted))

    def restore(self, state: tuple[tuple[int, ...], frozenset[int]]) -> None:
        """Restore a snapshot taken by :meth:`save`."""
        banks, inserted = state
        self._banks = list(banks)
        self._inserted = set(inserted)

    def __len__(self) -> int:
        return len(self._inserted)
