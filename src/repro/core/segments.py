"""Direct-segment register file: BASE, LIMIT and OFFSET at two levels.

A direct segment (Basu et al. [9], reviewed in Section II.B) maps a
contiguous range of a linear address space to contiguous physical
addresses with three registers:

* ``BASE``  -- first address covered by the segment,
* ``LIMIT`` -- one past the last address covered,
* ``OFFSET`` -- amount added to a covered address to translate it.

The paper's proposed hardware (Section III, Figure 5) provides *two*
independent register sets:

* the **guest segment** (BASE_G/LIMIT_G/OFFSET_G) translating gVA -> gPA,
  managed by the guest OS and saved/restored on guest context switches;
* the **VMM segment** (BASE_V/LIMIT_V/OFFSET_V) translating gPA -> hPA,
  managed by the VMM and saved/restored on VM exit/entry.

Setting ``BASE == LIMIT`` disables a segment (the paper's trick for
nullifying unused register sets in VMM Direct and Guest Direct modes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address import AddressRange


@dataclass(frozen=True)
class SegmentRegisters:
    """One level of direct-segment registers (BASE, LIMIT, OFFSET).

    ``offset`` may be negative when the physical range lies below the
    virtual range; translation is plain addition either way (Section II.B:
    "V + OFFSET via simple addition").
    """

    base: int = 0
    limit: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.limit < self.base:
            raise ValueError(
                f"segment LIMIT {self.limit:#x} precedes BASE {self.base:#x}"
            )
        if self.base + self.offset < 0:
            raise ValueError("segment OFFSET maps BASE below address zero")

    @classmethod
    def disabled(cls) -> "SegmentRegisters":
        """Registers with BASE == LIMIT, matching no address at all."""
        return cls(base=0, limit=0, offset=0)

    @classmethod
    def mapping(cls, virtual: AddressRange, physical_start: int) -> "SegmentRegisters":
        """Registers mapping ``virtual`` onto memory starting at ``physical_start``."""
        return cls(
            base=virtual.start,
            limit=virtual.end,
            offset=physical_start - virtual.start,
        )

    @property
    def enabled(self) -> bool:
        """True unless BASE == LIMIT (the hardware's disabled encoding)."""
        return self.limit > self.base

    @property
    def size(self) -> int:
        """Bytes covered by the segment."""
        return self.limit - self.base

    @property
    def virtual_range(self) -> AddressRange:
        """The input-address range covered by the segment."""
        return AddressRange(self.base, self.limit)

    @property
    def physical_range(self) -> AddressRange:
        """The output-address range the segment maps onto."""
        return AddressRange(self.base + self.offset, self.limit + self.offset)

    def covers(self, address: int) -> bool:
        """The hardware base-bound check: BASE <= address < LIMIT."""
        return self.base <= address < self.limit

    def translate(self, address: int) -> int:
        """Translate a covered address by addition; raise if not covered.

        This is the segment datapath: a single add, no memory references.
        """
        if not self.covers(address):
            raise SegmentFault(address, self)
        return address + self.offset

    def translate_unchecked(self, address: int) -> int:
        """Translation by addition without the bound check.

        Used by the emulation layer (Section VI.B) when the covering check
        has already been performed by the fault handler.
        """
        return address + self.offset

    def validate_for_geometry(self, geometry, output_geometry=None) -> None:
        """Check the register values fit one ISA's address spaces.

        ``geometry`` bounds the input (covered) range; ``output_geometry``
        bounds the translated range (defaults to the input geometry --
        pass the G-stage composition for a guest segment whose output is
        a wider guest-physical space).  Raises
        :class:`repro.errors.ConfigError` on a violation; disabled
        segments always pass.  Duck-typed on
        :class:`repro.isa.TranslationGeometry` to keep this module free
        of ISA imports.
        """
        if not self.enabled:
            return
        from repro.errors import ConfigError

        out = output_geometry or geometry
        if not geometry.is_canonical(self.base) or not geometry.is_canonical(
            self.limit - 1
        ):
            raise ConfigError(
                f"segment [{self.base:#x}, {self.limit:#x}) outside "
                f"{geometry.name}'s {geometry.address_bits}-bit space"
            )
        if not out.is_canonical(self.base + self.offset) or not out.is_canonical(
            self.limit - 1 + self.offset
        ):
            raise ConfigError(
                f"segment output [{self.base + self.offset:#x}, "
                f"{self.limit + self.offset:#x}) outside "
                f"{out.name}'s {out.address_bits}-bit space"
            )


class SegmentFault(Exception):
    """Raised when an address outside a segment is given to its datapath."""

    def __init__(self, address: int, registers: SegmentRegisters) -> None:
        super().__init__(
            f"address {address:#x} outside segment "
            f"[{registers.base:#x}, {registers.limit:#x})"
        )
        self.address = address
        self.registers = registers


@dataclass
class SegmentFile:
    """The full architectural segment state of one hardware context.

    Holds both register sets plus save/restore bookkeeping.  The guest
    registers are per guest process (swapped by the guest OS on context
    switch, Section III.C); the VMM registers are per VM (swapped by
    hardware on VM exit/entry, Section III.A).
    """

    guest: SegmentRegisters
    vmm: SegmentRegisters

    @classmethod
    def all_disabled(cls) -> "SegmentFile":
        """Segment file with both levels disabled (base virtualized mode)."""
        return cls(SegmentRegisters.disabled(), SegmentRegisters.disabled())

    def save(self) -> tuple[SegmentRegisters, SegmentRegisters]:
        """Snapshot both register sets (VM-exit path)."""
        return (self.guest, self.vmm)

    def restore(self, state: tuple[SegmentRegisters, SegmentRegisters]) -> None:
        """Restore a snapshot taken by :meth:`save` (VM-entry path)."""
        self.guest, self.vmm = state
