"""Latency and cost parameters for the translation machinery.

Every cycle count used by the walker, the MMU and the analytical models
lives here so that experiments can vary them in one place.  The defaults
are chosen to land the emergent per-miss costs (Cn, Cv) in the regimes the
paper measures on its Sandy Bridge testbed (Section VII): a native 4 KB
walk around a few tens of cycles, and virtualized walks 1.5-3.5x that.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheLatencies:
    """Where a page-table entry access can be served from, and its cost.

    A real walker's loads hit in the data-cache hierarchy.  We model each
    surviving PTE reference (after page-walk-cache filtering) as served by
    L2, LLC or DRAM with the blend below; lower levels of the page table
    (accessed more often, smaller working set) are more cache-resident.
    """

    l2_cycles: int = 12
    llc_cycles: int = 40
    dram_cycles: int = 200

    #: Probability that a PTE access at each page-table depth (root first)
    #: hits L2 / LLC; the remainder goes to DRAM.  Upper levels have tiny
    #: working sets and are effectively always cached.
    residency: tuple[tuple[float, float], ...] = (
        (0.98, 0.02),  # PML4: almost always in L2
        (0.95, 0.04),  # PDPT
        (0.75, 0.20),  # PD
        (0.30, 0.40),  # PT leaves: big working set, frequent DRAM trips
    )

    def expected_cycles(self, depth: int) -> float:
        """Expected cycles to load one PTE at radix ``depth`` (0..3)."""
        l2_p, llc_p = self.residency[depth]
        dram_p = max(0.0, 1.0 - l2_p - llc_p)
        return (
            l2_p * self.l2_cycles
            + llc_p * self.llc_cycles
            + dram_p * self.dram_cycles
        )


@dataclass(frozen=True)
class CostModel:
    """All tunable latencies for the simulated translation hardware.

    Attributes mirror the quantities the paper names:

    * ``base_bound_check_cycles`` -- the paper's per-check Delta of 1 cycle
      (Section VII: Delta_VD = 5, Delta_GD = 1 come from 5 and 1 checks).
    * ``vm_exit_cycles`` -- cost of a VM-exit, used by the shadow-paging
      comparison (Section IX.D).
    """

    cache: CacheLatencies = field(default_factory=CacheLatencies)

    #: Cost of one base-bound (segment) check; the paper assumes 1 cycle.
    base_bound_check_cycles: int = 1

    #: L2 TLB probe latency, charged on every L1 miss that consults it.
    l2_tlb_probe_cycles: int = 7

    #: Round-trip cost of a VM-exit plus re-entry (shadow paging model).
    vm_exit_cycles: int = 4000

    #: Cost of a minor page fault serviced by the guest OS (demand paging).
    page_fault_cycles: int = 3000

    def __post_init__(self) -> None:
        # pte_access_cycles runs several times per simulated walk; the
        # blend is a pure function of the (frozen) latencies, so bake it
        # into a tuple once.  object.__setattr__ because frozen=True.
        object.__setattr__(
            self,
            "_pte_cycles",
            tuple(
                self.cache.expected_cycles(depth)
                for depth in range(len(self.cache.residency))
            ),
        )

    def pte_access_cycles(self, depth: int) -> float:
        """Expected cost of one page-table memory reference at ``depth``."""
        return self._pte_cycles[depth]

    def pte_cycles_for(self, total_levels: int) -> tuple[float, ...]:
        """Per-level PTE costs for a table of ``total_levels`` levels.

        The residency blend is leaf-anchored: the leaf's working set is
        what scales with the footprint, so levels align by distance from
        the leaf.  A 4-level table reproduces :meth:`pte_access_cycles`
        exactly; a 3-level table (sv39) drops the cheapest root blend; a
        5-level table (sv57) reuses the root blend for its extra level
        (upper levels are effectively always cached regardless of count).
        """
        if total_levels <= 0:
            raise ValueError(f"page table needs at least one level, got {total_levels}")
        base = self._pte_cycles
        return tuple(
            base[max(0, len(base) - total_levels + level)]
            for level in range(total_levels)
        )


#: Shared default cost model; experiments may construct their own.
DEFAULT_COSTS = CostModel()
