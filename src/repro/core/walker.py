"""Page-table walkers: native 1D and the nested 2D state machine.

Figure 2 of the paper: a virtualized TLB miss walks the guest page table,
but every guest-page-table pointer is a *guest-physical* address that
itself needs translation through the nested page table.  With 4 levels in
each dimension this costs up to 5*4 + 4 = 24 memory references, versus 4
for a native walk.

The paper's three new modes flatten dimensions of this walk:

* **VMM Direct** resolves each guest-physical address with the VMM
  segment registers (one add + one bound check) instead of a nested
  sub-walk: 4 references and 5 checks.
* **Guest Direct** resolves the guest-virtual address with the guest
  segment registers and then performs one plain nested walk: 4
  references and 1 check.
* **Dual Direct** is handled before the walker is ever invoked (the MMU's
  L1-miss path, see :mod:`repro.core.mmu`); the walker only sees its
  partial cases.

Walkers operate on real :class:`~repro.mem.page_table.PageTable`
instances and return both the translation and a cost breakdown, filtered
through page-walk caches and the shared nested TLB so that per-miss
cycles (the paper's Cn and Cv) emerge from cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address import BASE_PAGE_SIZE, PageSize, page_number
from repro.core.costs import CostModel
from repro.core.escape_filter import EscapeFilter
from repro.core.segments import SegmentRegisters
from repro.mem.page_table import PageFault, PageTable
from repro.tlb.hierarchy import TLBHierarchy
from repro.tlb.pwc import PageWalkCache


@dataclass(slots=True)
class WalkOutcome:
    """Translation plus full cost accounting for one page walk."""

    #: Host (or native physical) 4 KB frame of the referenced page's base.
    frame: int
    #: Page size at which the TLB entry may be installed: the coarsest
    #: granularity over which the gVA -> hPA mapping is linear.
    page_size: PageSize
    #: Page-table memory references actually performed (post caches).
    refs: int = 0
    #: References the walk would need with cold caches (paper arithmetic).
    raw_refs: int = 0
    #: Base-bound (segment) checks performed.
    checks: int = 0
    #: Total walk latency in cycles.
    cycles: float = 0.0
    #: True if the guest dimension was resolved by the guest segment.
    guest_segment_used: bool = False
    #: True if every nested resolution used the VMM segment.
    vmm_segment_used: bool = False

    def merge_cost(self, other: "WalkOutcome") -> None:
        """Fold another outcome's costs into this one (sub-walks)."""
        self.refs += other.refs
        self.raw_refs += other.raw_refs
        self.checks += other.checks
        self.cycles += other.cycles


class TranslationFault(Exception):
    """The walk found no valid mapping (guest or nested dimension)."""

    def __init__(self, address: int, dimension: str) -> None:
        super().__init__(f"translation fault at {address:#x} ({dimension})")
        self.address = address
        self.dimension = dimension


class NativeWalker:
    """1D walker over a single page table, with a page-walk cache."""

    def __init__(
        self,
        page_table: PageTable,
        costs: CostModel,
        pwc: PageWalkCache | None = None,
    ) -> None:
        self.page_table = page_table
        self.costs = costs
        self.pwc = pwc or PageWalkCache(geometry=page_table.geometry)
        # Geometry-derived walk shape, flattened off the hot path.  The
        # level count is a property of the system (context switches swap
        # tables of the same geometry), so caching it here is safe.
        self._levels = page_table.geometry.levels
        self._pte_cycles = costs.pte_cycles_for(self._levels)
        #: Optional :class:`repro.obs.profiler.WalkProfiler`.  Hooks run
        #: only on walks (never per reference) and cost one None check
        #: when detached.
        self.profiler = None

    def walk(self, virtual: int) -> WalkOutcome:
        """Translate ``virtual``; raises :class:`TranslationFault` if unmapped."""
        try:
            result = self.page_table.walk(virtual)
        except PageFault as fault:
            raise TranslationFault(virtual, "native") from fault
        leaf_level = len(result.steps) - 1
        probe = self.pwc.probe(virtual)
        skip = min(probe.skipped_levels, leaf_level)
        outcome = WalkOutcome(
            # The MMU consumes the 4 KB frame of the *referenced* address
            # (WalkOutcome.frame), not the leaf's base frame.
            frame=result.frame + (virtual % int(result.page_size)) // BASE_PAGE_SIZE,
            page_size=result.page_size,
            raw_refs=len(result.steps),
        )
        p = self.profiler
        if p is not None:
            p.event("pwc", "native", f"skip{skip}")
        for step in result.steps[skip:]:
            outcome.refs += 1
            cycles = self._pte_cycles[step.level]
            outcome.cycles += cycles
            if p is not None:
                label = f"L{self._levels - step.level}"
                p.charge("native", label, "pte", cycles, frame=f"native_{label}")
        self.pwc.fill(virtual, upto_level=leaf_level - 1)
        return outcome


class DirectSegmentWalker(NativeWalker):
    """Native walker plus the unvirtualized direct segment (Section III.D).

    The segment itself is consulted by the MMU in parallel with the L2
    TLB probe; this class merely carries the registers and escape filter
    so the MMU's parallel path can reach them.  Walks (for addresses
    outside the segment, or escaped pages) are plain native walks.
    """

    def __init__(
        self,
        page_table: PageTable,
        costs: CostModel,
        segment: SegmentRegisters,
        escape_filter: EscapeFilter | None = None,
        pwc: PageWalkCache | None = None,
    ) -> None:
        super().__init__(page_table, costs, pwc)
        self.segment = segment
        self.escape_filter = escape_filter


@dataclass(slots=True)
class NestedResolution:
    """Result of resolving one guest-physical address to host-physical."""

    host_frame: int  # host 4 KB frame containing the gPA's page base
    #: Granularity over which gPA -> hPA is linear at this address
    #: (the nested leaf size, or effectively unbounded for the segment,
    #: which we report as 1 GB -- coarser than any guest leaf).
    linear_extent: PageSize
    by_segment: bool
    cost: WalkOutcome = field(
        default_factory=lambda: WalkOutcome(frame=0, page_size=PageSize.SIZE_4K)
    )


class NestedWalker:
    """The 2D walk of Figure 2 with per-mode dimension flattening.

    The two segment register sets (either of which may be disabled) and
    the escape filter select, per address, which of Table I's four cases
    applies.  The shared L2 TLB (through ``hierarchy``) caches nested
    translations, and two page-walk caches cover the two dimensions.
    """

    def __init__(
        self,
        guest_table: PageTable,
        nested_table: PageTable,
        costs: CostModel,
        hierarchy: TLBHierarchy,
        guest_segment: SegmentRegisters | None = None,
        vmm_segment: SegmentRegisters | None = None,
        vmm_escape_filter: EscapeFilter | None = None,
        guest_escape_filter: EscapeFilter | None = None,
        guest_pwc: PageWalkCache | None = None,
        nested_pwc: PageWalkCache | None = None,
        dedicated_nested_tlb=None,
    ) -> None:
        self.guest_table = guest_table
        self.nested_table = nested_table
        self.costs = costs
        self.hierarchy = hierarchy
        self.guest_segment = guest_segment or SegmentRegisters.disabled()
        self.vmm_segment = vmm_segment or SegmentRegisters.disabled()
        self.vmm_escape_filter = vmm_escape_filter
        self.guest_escape_filter = guest_escape_filter
        self.guest_pwc = guest_pwc or PageWalkCache(geometry=guest_table.geometry)
        self.nested_pwc = nested_pwc or PageWalkCache(geometry=nested_table.geometry)
        # Per-dimension walk shapes; the nested (G-stage) dimension may
        # have a different level count than the guest dimension.
        self._guest_levels = guest_table.geometry.levels
        self._nested_levels = nested_table.geometry.levels
        self._guest_pte_cycles = costs.pte_cycles_for(self._guest_levels)
        self._nested_pte_cycles = costs.pte_cycles_for(self._nested_levels)
        #: Optional :class:`repro.obs.profiler.WalkProfiler` (same
        #: contract as :attr:`NativeWalker.profiler`).
        self.profiler = None
        #: Sensitivity-study hook: a dedicated gPA -> hPA structure (a
        #: :class:`repro.tlb.pwc.NestedTLB`).  The paper's testbed has
        #: none ("shares the TLB", Table VI); giving the nested
        #: dimension its own array removes the L2 capacity pressure and
        #: with it the virtualized miss inflation.
        self.dedicated_nested_tlb = dedicated_nested_tlb

    # ------------------------------------------------------------------
    # Second dimension: gPA -> hPA

    def _vmm_segment_covers(self, gpa: int) -> bool:
        """VMM-segment hit: inside the segment and not escaped/filtered."""
        if not self.vmm_segment.enabled or not self.vmm_segment.covers(gpa):
            return False
        if self.vmm_escape_filter is not None and self.vmm_escape_filter.may_contain(
            page_number(gpa)
        ):
            return False
        return True

    def resolve_gpa(self, gpa: int, charge_check: bool = True) -> NestedResolution:
        """Translate one guest-physical address (second dimension).

        Order of resolution mirrors the hardware of Figure 5: the VMM
        segment registers (with the escape filter probed in parallel)
        are consulted first; on a miss the nested TLB (shared L2 array)
        and finally a nested page-table walk.
        """
        cost = WalkOutcome(frame=0, page_size=PageSize.SIZE_4K)
        p = self.profiler
        if self.vmm_segment.enabled and charge_check:
            cost.checks += 1
            check_cycles = self.costs.base_bound_check_cycles
            cost.cycles += check_cycles
            if p is not None:
                p.charge("segment", "vmm", "check", check_cycles, frame="vmm_check")
        if self._vmm_segment_covers(gpa):
            hpa = self.vmm_segment.translate(gpa)
            return NestedResolution(
                host_frame=page_number(hpa),
                linear_extent=PageSize.SIZE_1G,
                by_segment=True,
                cost=cost,
            )
        gppn = page_number(gpa)
        if self.dedicated_nested_tlb is not None:
            cached = self.dedicated_nested_tlb.lookup(gppn)
            if cached is not None:
                probe_cycles = self.costs.l2_tlb_probe_cycles
                cost.cycles += probe_cycles
                if p is not None:
                    p.charge("ntlb", "dedicated", "hit", probe_cycles,
                             frame="ntlb_hit")
                return NestedResolution(
                    host_frame=cached,
                    linear_extent=PageSize.SIZE_4K,
                    by_segment=False,
                    cost=cost,
                )
        else:
            for size in (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G):
                cached = self.hierarchy.lookup_nested(gppn, size)
                if cached is not None:
                    # Served by the nested entries sharing the L2 TLB
                    # array (Table VI); the probe costs an L2 access.
                    probe_cycles = self.costs.l2_tlb_probe_cycles
                    cost.cycles += probe_cycles
                    if p is not None:
                        p.charge("ntlb", "shared", "hit", probe_cycles,
                                 frame="ntlb_hit")
                    base_gppn = (gppn >> (size.bits - 12)) << (size.bits - 12)
                    host_frame = cached + (gppn - base_gppn)
                    return NestedResolution(
                        host_frame=host_frame,
                        linear_extent=size,
                        by_segment=False,
                        cost=cost,
                    )
        walk_cost = self._walk_nested(gpa)
        cost.merge_cost(walk_cost)
        return NestedResolution(
            host_frame=walk_cost.frame + (gpa % int(walk_cost.page_size)) // BASE_PAGE_SIZE,
            linear_extent=walk_cost.page_size,
            by_segment=False,
            cost=cost,
        )

    def _walk_nested(self, gpa: int) -> WalkOutcome:
        """Plain 1D walk of the nested page table, with its own PWC."""
        try:
            result = self.nested_table.walk(gpa)
        except PageFault as fault:
            raise TranslationFault(gpa, "nested") from fault
        leaf_level = len(result.steps) - 1
        probe = self.nested_pwc.probe(gpa)
        skip = min(probe.skipped_levels, leaf_level)
        outcome = WalkOutcome(
            frame=result.frame,
            page_size=result.page_size,
            raw_refs=len(result.steps),
        )
        p = self.profiler
        if p is not None:
            p.event("pwc", "nested", f"skip{skip}")
        for step in result.steps[skip:]:
            outcome.refs += 1
            cycles = self._nested_pte_cycles[step.level]
            outcome.cycles += cycles
            if p is not None:
                label = f"L{self._nested_levels - step.level}"
                p.charge("host", label, "pte", cycles, frame=f"host_{label}")
        self.nested_pwc.fill(gpa, upto_level=leaf_level - 1)
        if self.dedicated_nested_tlb is not None:
            offset_frames = (gpa % int(result.page_size)) // BASE_PAGE_SIZE
            self.dedicated_nested_tlb.insert(
                page_number(gpa), result.frame + offset_frames
            )
        else:
            base_gppn = (
                page_number(gpa, result.page_size) << (result.page_size.bits - 12)
            )
            self.hierarchy.insert_nested(base_gppn, result.page_size, result.frame)
        return outcome

    # ------------------------------------------------------------------
    # First dimension: gVA -> gPA

    def _guest_segment_covers(self, gva: int) -> bool:
        if not self.guest_segment.enabled or not self.guest_segment.covers(gva):
            return False
        if (
            self.guest_escape_filter is not None
            and self.guest_escape_filter.may_contain(page_number(gva))
        ):
            return False
        return True

    def walk(self, gva: int) -> WalkOutcome:
        """Full 2D (or flattened) walk of a guest-virtual address."""
        guest_checked = False
        if self.guest_segment.enabled:
            guest_checked = True
        if guest_checked and self._guest_segment_covers(gva):
            return self._walk_guest_segment(gva)
        return self._walk_guest_paging(gva, guest_checked)

    def _walk_guest_segment(self, gva: int) -> WalkOutcome:
        """Guest dimension flattened: gPA = gVA + OFFSET_G, then nested."""
        gpa = self.guest_segment.translate(gva)
        p = self.profiler
        if p is not None:
            p.enter("guest_segment")
        resolution = self.resolve_gpa(gpa)
        if p is not None:
            p.leave()
        outcome = WalkOutcome(
            frame=resolution.host_frame,
            # Segment-mapped regions have no page-table leaf to name an
            # entry size; hardware installs base-page (4 KB) TLB entries
            # for them (Table I: "Insert L1 TLB entry").
            page_size=PageSize.SIZE_4K,
            guest_segment_used=True,
            vmm_segment_used=resolution.by_segment,
        )
        outcome.checks += 1
        check_cycles = self.costs.base_bound_check_cycles
        outcome.cycles += check_cycles
        if p is not None:
            p.charge("segment", "guest", "check", check_cycles,
                     frame="guest_check")
        outcome.merge_cost(resolution.cost)
        return outcome

    def _walk_guest_paging(self, gva: int, guest_checked: bool) -> WalkOutcome:
        """Guest dimension via the guest page table (cases VMM-only/Neither)."""
        try:
            guest_result = self.guest_table.walk(gva)
        except PageFault as fault:
            raise TranslationFault(gva, "guest") from fault
        leaf_level = len(guest_result.steps) - 1
        probe = self.guest_pwc.probe(gva)
        skip = min(probe.skipped_levels, leaf_level)

        outcome = WalkOutcome(frame=0, page_size=guest_result.page_size)
        p = self.profiler
        if p is not None:
            p.event("pwc", "guest", f"skip{skip}")
        if guest_checked:
            # The failed guest-segment bound check still costs one cycle.
            outcome.checks += 1
            check_cycles = self.costs.base_bound_check_cycles
            outcome.cycles += check_cycles
            if p is not None:
                p.charge("segment", "guest", "check_miss", check_cycles,
                         frame="guest_check")
        all_nested_by_segment = True
        for step in guest_result.steps[skip:]:
            label = f"L{self._guest_levels - step.level}"
            if p is not None:
                p.enter(f"guest_{label}")
            # Resolve the guest-PTE pointer (a gPA) through dimension two.
            resolution = self.resolve_gpa(step.pte_address)
            outcome.merge_cost(resolution.cost)
            all_nested_by_segment &= resolution.by_segment
            # Then load the guest PTE itself.
            outcome.refs += 1
            outcome.raw_refs += 1
            cycles = self._guest_pte_cycles[step.level]
            outcome.cycles += cycles
            if p is not None:
                p.charge("guest", label, "pte", cycles)
                p.leave()
        self.guest_pwc.fill(gva, upto_level=leaf_level - 1)

        # Resolve the gPA of the *referenced* 4 KB page, not the guest
        # leaf's base: with a large guest page over 4 KB nested pages the
        # two resolve to different host frames, and WalkOutcome.frame is
        # defined as the referenced address's frame.
        in_page_frames = (gva % int(guest_result.page_size)) // BASE_PAGE_SIZE
        final_gpa = (guest_result.frame + in_page_frames) * BASE_PAGE_SIZE
        if p is not None:
            p.enter("guest_leaf")
        final = self.resolve_gpa(final_gpa)
        if p is not None:
            p.leave()
        outcome.merge_cost(final.cost)
        all_nested_by_segment &= final.by_segment

        outcome.frame = final.host_frame
        outcome.page_size = min(guest_result.page_size, final.linear_extent)
        outcome.vmm_segment_used = all_nested_by_segment and self.vmm_segment.enabled
        return outcome
