"""The proposed MMU: Figure 5's translation flow chart, all six modes.

Per memory reference the hardware:

1. probes the L1 TLBs (all page sizes in parallel);
2. on an L1 miss in **Dual Direct** mode, checks both segment register
   sets; if the address lies in both (Table I case "Both"), computes
   ``hPA = gVA + OFFSET_G + OFFSET_V`` and installs an L1 entry without
   ever touching the L2 TLB -- the 0D walk;
3. probes the L2 TLB (in **Unvirtualized Direct Segment** mode the guest
   segment registers are checked in parallel with this probe, Section
   III.D);
4. on an L2 miss, invokes the page-walk state machine with the mode's
   dimension flattening (:mod:`repro.core.walker`).

The MMU charges cycles only for work the paper counts as translation
overhead: page-walk memory references and base-bound checks.  L1/L2
probe latencies are part of normal pipeline operation and excluded, just
as the paper's models "do not account for improvements due to faster L2
hits" (Section VII).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.address import PageSize, page_number
from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.core.modes import TranslationMode
from repro.core.walker import (
    NativeWalker,
    NestedWalker,
    TranslationFault,
    WalkOutcome,
)

#: Classification labels for Table I's four columns.
CASE_BOTH = "both"
CASE_VMM_ONLY = "vmm_only"
CASE_GUEST_ONLY = "guest_only"
CASE_NEITHER = "neither"


@dataclass
class MMUCounters:
    """Everything the evaluation methodology (Section VII) measures.

    This is the simulator's BadgerTrap: every miss is classified by which
    segment(s) covered it, giving the F_DD / F_VD / F_GD fractions of the
    Table IV linear models directly.
    """

    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    #: Dual Direct fast-path resolutions (L1 miss, 0D walk, no L2 probe).
    dual_direct_hits: int = 0
    #: Direct Segment mode resolutions in parallel with the L2 probe.
    segment_l2_parallel_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    walks: int = 0
    walk_cycles: float = 0.0
    walk_refs: int = 0
    walk_raw_refs: int = 0
    check_cycles: float = 0.0
    checks: int = 0
    faults: int = 0
    walks_by_case: dict[str, int] = field(
        default_factory=lambda: {
            CASE_BOTH: 0,
            CASE_VMM_ONLY: 0,
            CASE_GUEST_ONLY: 0,
            CASE_NEITHER: 0,
        }
    )

    @property
    def translation_cycles(self) -> float:
        """Cycles attributable to address translation beyond TLB hits."""
        return self.walk_cycles + self.check_cycles

    @property
    def cycles_per_walk(self) -> float:
        """Average walk cost (the paper's C_n / C_v per environment)."""
        return self.walk_cycles / self.walks if self.walks else 0.0

    @property
    def classified_events(self) -> int:
        """Translation events with a Table I classification: page walks
        plus the segment fast paths that replaced a walk."""
        return self.walks + self.dual_direct_hits + self.segment_l2_parallel_hits

    def miss_fraction(self, case: str) -> float:
        """Fraction of classified misses in a Table I case (F_DD etc.).

        This is what BadgerTrap measures in Section VII: of the misses
        that reach translation machinery beyond the TLBs, how many fall
        in each segment-membership category.
        """
        total = self.classified_events
        return self.walks_by_case[case] / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters (after warm-up)."""
        fresh = MMUCounters()
        self.__dict__.update(fresh.__dict__)


class MMU:
    """One hardware context's translation machinery.

    Parameters
    ----------
    mode:
        Which of Figure 3's six modes this address space runs in.
    hierarchy:
        The TLB hierarchy (shared L2 also holds nested entries).
    walker:
        A :class:`NativeWalker` for the two native modes, or a
        :class:`NestedWalker` for the four virtualized modes.  The
        walker owns the segment registers and escape filters.
    on_guest_fault / on_nested_fault:
        OS / VMM fault handlers, invoked on a missing mapping; they must
        install a mapping (or raise) so the retried walk succeeds.  This
        is where Section VI.B's emulation-by-computed-PTEs plugs in.
    """

    #: A cold 2D walk can fault once for the guest leaf plus once per
    #: guest page-table node and once for the final gPA (up to ~6 nested
    #: faults before the walk completes), so allow a generous retry loop.
    MAX_FAULT_RETRIES = 16

    def __init__(
        self,
        mode: TranslationMode,
        hierarchy,
        walker: NativeWalker | NestedWalker,
        costs: CostModel = DEFAULT_COSTS,
        on_guest_fault: Callable[[int], None] | None = None,
        on_nested_fault: Callable[[int], None] | None = None,
    ) -> None:
        if mode.virtualized != isinstance(walker, NestedWalker):
            raise ValueError(f"walker type does not match mode {mode}")
        self.mode = mode
        self.hierarchy = hierarchy
        self.walker = walker
        self.costs = costs
        self.counters = MMUCounters()
        self.on_guest_fault = on_guest_fault
        self.on_nested_fault = on_nested_fault
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`.  Walk
        #: latency/ref histograms are recorded per completed walk --
        #: off the L1-hit path, so an unattached registry (the default)
        #: costs one None check per walk and nothing per hit.
        self.metrics = None
        #: Optional :class:`repro.obs.profiler.WalkProfiler`.  Same
        #: contract: hooks fire only around walks (begin per attempt,
        #: end per accounted walk), never on the per-reference hit path.
        self.profiler = None

    # ------------------------------------------------------------------

    def access(self, vaddr: int) -> int:
        """Translate one data reference; returns the host 4 KB frame.

        Implements the flow chart of Figure 5(a) and updates counters.
        """
        c = self.counters
        c.accesses += 1
        vpn = vaddr >> 12

        hit = self.hierarchy.lookup_l1(vpn)
        if hit is not None:
            c.l1_hits += 1
            size, base_frame = hit
            return base_frame + (vpn - ((vpn >> (size.bits - 12)) << (size.bits - 12)))
        c.l1_misses += 1

        if self.mode is TranslationMode.DUAL_DIRECT:
            frame = self._dual_direct_fast_path(vaddr)
            if frame is not None:
                return frame

        if self.mode is TranslationMode.NATIVE_DIRECT_SEGMENT:
            frame = self._direct_segment_parallel_path(vaddr)
            if frame is not None:
                return frame

        hit = self.hierarchy.lookup_l2(vpn)
        if hit is not None:
            c.l2_hits += 1
            size, base_frame = hit
            self.hierarchy.insert_l1(vpn, size, base_frame)
            return base_frame + (vpn - ((vpn >> (size.bits - 12)) << (size.bits - 12)))
        c.l2_misses += 1

        outcome = self._walk_with_fault_handling(vaddr)
        self._account_walk(outcome)
        base_vpn = (vpn >> (outcome.page_size.bits - 12)) << (outcome.page_size.bits - 12)
        base_frame = outcome.frame - (vpn - base_vpn)
        self.hierarchy.insert(vpn, outcome.page_size, base_frame)
        return outcome.frame

    # ------------------------------------------------------------------
    # Mode-specific fast paths

    def _dual_direct_fast_path(self, vaddr: int) -> int | None:
        """Table I case "Both": two adds, L1 insert, no L2 probe."""
        walker = self.walker
        assert isinstance(walker, NestedWalker)
        c = self.counters
        # The base-bound checks overlap the L2 probe the hardware would
        # otherwise perform, so Table IV charges this case zero cycles.
        c.checks += 1
        if not walker._guest_segment_covers(vaddr):
            return None
        gpa = walker.guest_segment.translate(vaddr)
        if not walker._vmm_segment_covers(gpa):
            return None
        hpa = walker.vmm_segment.translate(gpa)
        c.dual_direct_hits += 1
        c.walks_by_case[CASE_BOTH] += 1
        frame = page_number(hpa)
        vpn = vaddr >> 12
        self.hierarchy.insert_l1(vpn, PageSize.SIZE_4K, frame)
        return frame

    def _direct_segment_parallel_path(self, vaddr: int) -> int | None:
        """Section III.D: segment check in parallel with the L2 probe."""
        walker = self.walker
        assert isinstance(walker, NativeWalker)
        segment = getattr(walker, "segment", None)
        if segment is None or not segment.enabled:
            return None
        c = self.counters
        # Performed in parallel with the L2 TLB lookup (Section III.D),
        # so a hit costs nothing beyond the probe already under way.
        c.checks += 1
        escape = getattr(walker, "escape_filter", None)
        if not segment.covers(vaddr):
            return None
        if escape is not None and escape.may_contain(page_number(vaddr)):
            return None
        pa = segment.translate(vaddr)
        c.segment_l2_parallel_hits += 1
        c.walks_by_case[CASE_GUEST_ONLY] += 1
        frame = page_number(pa)
        self.hierarchy.insert_l1(vaddr >> 12, PageSize.SIZE_4K, frame)
        return frame

    # ------------------------------------------------------------------

    def _walk_with_fault_handling(self, vaddr: int) -> WalkOutcome:
        p = self.profiler
        for _ in range(self.MAX_FAULT_RETRIES):
            # One begin per *attempt*: a retry discards the faulted
            # attempt's buffered charges, whose cycles never reach the
            # counters, keeping the profiler's conservation exact.
            if p is not None:
                p.begin_walk(vaddr)
            try:
                return self.walker.walk(vaddr)
            except TranslationFault as fault:
                self.counters.faults += 1
                if p is not None:
                    p.fault_event(fault.dimension)
                self._dispatch_fault(fault)
        raise TranslationFault(vaddr, "unresolvable (fault handler loop)")

    def _dispatch_fault(self, fault: TranslationFault) -> None:
        if fault.dimension == "nested":
            if self.on_nested_fault is None:
                raise fault
            self.on_nested_fault(fault.address)
        else:
            if self.on_guest_fault is None:
                raise fault
            self.on_guest_fault(fault.address)

    def _account_walk(self, outcome: WalkOutcome) -> None:
        c = self.counters
        case = self._classify(outcome)
        c.walks += 1
        c.walk_cycles += outcome.cycles
        c.walk_refs += outcome.refs
        c.walk_raw_refs += outcome.raw_refs
        c.checks += outcome.checks
        c.walks_by_case[case] += 1
        m = self.metrics
        if m is not None and m.enabled:
            m.observe("mmu.walk_latency_cycles", outcome.cycles)
            m.observe("mmu.walk_refs", outcome.refs)
        p = self.profiler
        if p is not None:
            # Immediately after the walk_cycles accumulation above: the
            # profiler repeats that float add on its mirror to stay
            # bit-identical with the counter (conservation invariant).
            p.end_walk(outcome, case)

    def _classify(self, outcome: WalkOutcome) -> str:
        if outcome.guest_segment_used and outcome.vmm_segment_used:
            return CASE_BOTH
        if outcome.vmm_segment_used:
            return CASE_VMM_ONLY
        if outcome.guest_segment_used:
            return CASE_GUEST_ONLY
        return CASE_NEITHER

    # ------------------------------------------------------------------

    def access_batch(self, addresses) -> None:
        """Translate a numpy int64 address stream via the batched engine.

        Exactly equivalent to ``for va in addresses: self.access(va)``
        for every counter, TLB/PWC entry and LRU position, but
        fast-paths hit runs with array arithmetic (see
        :mod:`repro.sim.engine`).  Returns nothing: batch translation is
        for measurement loops, which consume counters, not frames.
        """
        # Imported here: repro.sim builds on repro.core, not vice versa.
        from repro.sim.engine import BatchedTranslationEngine

        BatchedTranslationEngine(self).run(addresses)

    # ------------------------------------------------------------------

    def touch(self, vaddr: int) -> int:
        """Translate without counting (warm-up / functional checks)."""
        saved = self.counters
        saved_profiler = self.profiler
        walker_profiler = self.walker.profiler
        self.counters = MMUCounters()
        # The profiler mirrors the *measured* walk_cycles accumulation;
        # an uncounted touch must not advance it (and the walker must
        # not buffer charges for a walk that will never be accounted).
        self.profiler = None
        self.walker.profiler = None
        try:
            return self.access(vaddr)
        finally:
            self.counters = saved
            self.profiler = saved_profiler
            self.walker.profiler = walker_profiler

    def flush_tlbs(self) -> None:
        """Full TLB + PWC flush (context/VM switch)."""
        self.hierarchy.flush()
        walker = self.walker
        for attr in ("pwc", "guest_pwc", "nested_pwc"):
            pwc = getattr(walker, attr, None)
            if pwc is not None:
                pwc.flush()
