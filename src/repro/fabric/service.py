"""HTTP front end: serve cached cells instantly, enqueue misses.

The deployment shape a high-traffic experiment service sits behind:
clients address results by store key (the same content digest
:mod:`repro.store.keys` computes), hits are answered straight off disk
with the stored envelope -- no unpickling, no simulation, no
coordinator round-trip -- and misses become fabric jobs for the worker
pool to fill in.  Stdlib only (``http.server``); the handler threads
touch coordinator state exclusively through its event loop
(:meth:`~repro.fabric.coordinator.CoordinatorThread.call`), so the
asyncio side stays single-threaded.

Endpoints::

    GET  /healthz        -> {"ok": true}
    GET  /status         -> coordinator status + store entry count
    GET  /metrics        -> fabric.* + http.* metric snapshots (JSON)
    GET  /cells/<key>    -> 200 stored envelope | 202 pending | 404 unknown
    POST /cells          -> 200 hit | 202 enqueued | 503 no coordinator

``POST /cells`` takes the same job document the submit protocol uses
(``{"key": ..., "task": <blob>, "ingredients": {...}, "label": ...}``);
clients then poll ``GET /cells/<key>`` until the workers commit it.
Envelope integrity is the *client's* to verify (the payload checksum is
in the envelope) -- the service serves bytes, it does not unpickle.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.store.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.coordinator import CoordinatorThread

#: Cap on POST bodies (job descriptors, not results).
MAX_BODY_BYTES = 64 * 1024 * 1024


class FabricHTTPService:
    """Threaded HTTP server over one store and an optional coordinator."""

    def __init__(
        self,
        store: ResultStore,
        coordinator: "CoordinatorThread | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.store = store
        self.coordinator = coordinator
        self.metrics = MetricsRegistry()
        service = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format: str, *args) -> None:  # noqa: A002
                if not quiet:  # pragma: no cover - debug aid
                    super().log_message(format, *args)

            def do_GET(self) -> None:  # noqa: N802 - stdlib contract
                service._get(self)

            def do_POST(self) -> None:  # noqa: N802 - stdlib contract
                service._post(self)

        self.server = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self.server.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "FabricHTTPService":
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="fabric-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------

    def _reply(self, handler, code: int, payload: dict | bytes) -> None:
        body = (
            payload
            if isinstance(payload, bytes)
            else (json.dumps(payload, sort_keys=True) + "\n").encode()
        )
        handler.send_response(code)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        try:
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _job_state(self, key: str) -> str | None:
        """The coordinator's view of a key (None when unknown/absent)."""
        if self.coordinator is None:
            return None

        async def probe():
            job = self.coordinator.coordinator.jobs.get(key)
            return job.state if job is not None else None

        return self.coordinator.call(probe())

    def _get(self, handler) -> None:
        self.metrics.inc("http.requests")
        path = handler.path.rstrip("/") or "/"
        if path in ("/", "/healthz"):
            self._reply(handler, 200, {"ok": True, "service": "repro.fabric"})
            return
        if path == "/status":
            status: dict = {"store": str(self.store.root), "entries": len(self.store)}
            if self.coordinator is not None:

                async def probe():
                    return self.coordinator.coordinator.status()

                status["coordinator"] = self.coordinator.call(probe())
            self._reply(handler, 200, status)
            return
        if path == "/metrics":
            snapshot = {"http": self.metrics.snapshot()}
            if self.coordinator is not None:

                async def probe():
                    return self.coordinator.coordinator.metrics.snapshot()

                snapshot["fabric"] = self.coordinator.call(probe())
            self._reply(handler, 200, snapshot)
            return
        if path.startswith("/cells/"):
            self._get_cell(handler, path[len("/cells/"):])
            return
        self._reply(handler, 404, {"error": f"no route {path!r}"})

    def _get_cell(self, handler, key: str) -> None:
        try:
            object_path = self.store.object_path(key)
        except Exception:
            self._reply(handler, 400, {"error": f"malformed key {key!r}"})
            return
        try:
            body = object_path.read_bytes()
        except OSError:
            state = self._job_state(key)
            if state in ("queued", "leased"):
                self.metrics.inc("http.pending")
                self._reply(handler, 202, {"key": key, "status": state})
            elif state == "failed":
                self.metrics.inc("http.failed")
                self._reply(handler, 500, {"key": key, "status": "failed"})
            else:
                self.metrics.inc("http.misses")
                self._reply(handler, 404, {"key": key, "status": "unknown"})
            return
        self.metrics.inc("http.hits")
        self._reply(handler, 200, body)

    def _post(self, handler) -> None:
        self.metrics.inc("http.requests")
        if handler.path.rstrip("/") != "/cells":
            self._reply(handler, 404, {"error": f"no route {handler.path!r}"})
            return
        try:
            length = int(handler.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if not 0 < length <= MAX_BODY_BYTES:
            self._reply(handler, 400, {"error": "bad Content-Length"})
            return
        try:
            spec = json.loads(handler.rfile.read(length).decode())
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(handler, 400, {"error": f"bad JSON body: {exc}"})
            return
        key = str(spec.get("key", ""))
        if not key:
            self._reply(handler, 400, {"error": "job document needs a 'key'"})
            return
        if self.store.contains(key):
            self.metrics.inc("http.hits")
            self._reply(handler, 200, {"key": key, "status": "hit"})
            return
        if self.coordinator is None:
            self._reply(
                handler,
                503,
                {"key": key, "status": "miss",
                 "error": "no coordinator attached; cannot enqueue"},
            )
            return

        async def enqueue():
            return self.coordinator.coordinator.enqueue_jobs([spec])

        (state,) = self.coordinator.call(enqueue())
        self.metrics.inc("http.enqueued")
        self._reply(handler, 202 if state != "done" else 200,
                    {"key": key, "status": state})
