"""The fabric coordinator: leases cell waves to workers, loses nothing.

One asyncio process owns the work queue.  Submitters (the experiments
CLI running with ``--fabric``, or the HTTP front end) hand it *jobs* --
content-addressed cells, each carrying the pickled ``(execute, task)``
blob a worker needs -- and workers pull bounded *leases* of jobs over
the length-prefixed JSON protocol (:mod:`repro.fabric.protocol`).

The correctness contract mirrors the store's: **a cell is never lost
and never double-counted**.

* Every lease has a deadline; worker heartbeats extend it.  A lease
  whose deadline passes -- or whose worker's connection drops, the
  fast path for a SIGKILLed worker -- has its unfinished jobs requeued
  immediately.
* Requeues are bounded: a job granted more than ``max_attempts`` times
  fails permanently and its submitters are told, instead of cycling
  forever through a poisoned cell.
* Results never cross the wire.  Workers commit finished cells to the
  shared content-addressed store (multi-writer safe: per-key atomic
  renames behind the write-ahead journal) and report only the key; a
  cell computed twice -- a requeued lease whose original worker was
  merely slow, not dead -- commits the *identical* entry, so duplicated
  execution is wasted time, never wrong results.

Observability: every lease lifecycle transition (grant, heartbeat,
expiry, requeue, completion, worker connect/disconnect) is recorded as
an event with a monotonic sequence number and mirrored into a
``fabric.*`` metrics registry; ``batch-done`` replies carry the events
so submitters can embed them in run manifests.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FabricProtocolError
from repro.fabric.protocol import PROTOCOL_VERSION, read_msg, write_msg
from repro.obs.metrics import MetricsRegistry

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default grant budget per job before it fails permanently.
DEFAULT_MAX_ATTEMPTS = 3

#: Lease lifecycle events kept in memory for status/manifests.
EVENT_CAP = 4096


@dataclass
class FabricJob:
    """One content-addressed cell the fabric owes somebody."""

    key: str
    blob: str
    ingredients: dict
    label: str = ""
    state: str = "queued"  # queued | leased | done | failed
    attempts: int = 0
    error: str = ""
    #: Batch ids to notify on completion/failure.
    batches: set[str] = field(default_factory=set)


@dataclass
class Lease:
    """One worker's claim on a set of jobs, valid until ``deadline``."""

    lease_id: str
    worker_id: str
    keys: set[str]
    deadline: float  # event-loop monotonic time
    heartbeats: int = 0


@dataclass
class _Batch:
    """One submitter's outstanding wave."""

    batch_id: str
    writer: Any
    remaining: set[str]
    failed: dict[str, str] = field(default_factory=dict)
    completed: int = 0
    start_seq: int = 0


@dataclass
class _Worker:
    """Connection-scoped worker bookkeeping."""

    worker_id: str
    host: str
    pid: int
    cells_done: int = 0
    leases: set[str] = field(default_factory=set)


class FabricCoordinator:
    """Asyncio server leasing fabric jobs to workers.

    ``store`` is optional but recommended: with a handle the reaper can
    recognise that a lost worker *did* commit a cell before dying (the
    entry exists) and mark the job done instead of re-executing it.
    """

    def __init__(
        self,
        store: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        metrics: MetricsRegistry | None = None,
        poll_interval: float = 0.2,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_interval = poll_interval
        self.jobs: dict[str, FabricJob] = {}
        self.ready: deque[str] = deque()
        self.leases: dict[str, Lease] = {}
        self.batches: dict[str, _Batch] = {}
        self.workers: dict[str, _Worker] = {}
        self.events: deque[dict] = deque(maxlen=EVENT_CAP)
        self._seq = 0
        self._ids = 0
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None
        self.started_at = time.time()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the server (resolving port 0) and start the reaper."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.get_running_loop().create_task(self._reap_loop())
        self._record("coordinator-start", port=self.port)

    async def stop(self) -> None:
        """Stop accepting, cancel the reaper, drop server state."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._record("coordinator-stop")

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``fabric serve`` entry point)."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- event / metric plumbing ---------------------------------------

    def _record(self, event: str, **fields: Any) -> dict:
        self._seq += 1
        entry = {"seq": self._seq, "ts": time.time(), "event": event, **fields}
        self.events.append(entry)
        return entry

    def _next_id(self, prefix: str) -> str:
        self._ids += 1
        return f"{prefix}-{self._ids}"

    def _inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        worker: _Worker | None = None
        try:
            while True:
                try:
                    message = await read_msg(reader)
                except FabricProtocolError:
                    break
                if message is None:
                    break
                op = message.get("op")
                if op == "hello":
                    worker = await self._on_hello(message, writer, worker)
                    if worker is False:  # version mismatch; hung up
                        return
                elif op == "lease-request":
                    await self._on_lease_request(message, writer)
                elif op == "heartbeat":
                    self._on_heartbeat(message)
                elif op == "cell-done":
                    await self._on_cell_done(message, worker)
                elif op == "cell-failed":
                    await self._on_cell_failed(message)
                elif op == "lease-complete":
                    self._on_lease_complete(message)
                elif op == "submit":
                    await self._on_submit(message, writer)
                elif op == "status":
                    await write_msg(writer, self.status())
                else:
                    await write_msg(
                        writer, {"op": "error", "error": f"unknown op {op!r}"}
                    )
        finally:
            if worker:
                await self._on_worker_lost(worker)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass

    async def _on_hello(self, message: dict, writer, worker):
        version = message.get("version")
        if version != PROTOCOL_VERSION:
            await write_msg(
                writer,
                {
                    "op": "error",
                    "error": f"protocol version {version!r} != "
                    f"{PROTOCOL_VERSION}",
                },
            )
            return False
        role = message.get("role", "client")
        if role == "worker":
            worker = _Worker(
                worker_id=str(message.get("worker", self._next_id("worker"))),
                host=str(message.get("host", "")),
                pid=int(message.get("pid", 0)),
            )
            self.workers[worker.worker_id] = worker
            self._inc("fabric.workers_connected_total")
            self.metrics.set_gauge("fabric.workers_connected", len(self.workers))
            self._record(
                "worker-connect",
                worker=worker.worker_id,
                host=worker.host,
                pid=worker.pid,
            )
        await write_msg(
            writer, {"op": "hello-ok", "version": PROTOCOL_VERSION, "role": role}
        )
        return worker

    async def _on_worker_lost(self, worker: _Worker) -> None:
        self.workers.pop(worker.worker_id, None)
        self.metrics.set_gauge("fabric.workers_connected", len(self.workers))
        self._record("worker-disconnect", worker=worker.worker_id)
        # Fast path for a killed worker: its TCP close requeues every
        # unfinished job immediately, no need to wait out the deadline.
        for lease_id in sorted(worker.leases):
            lease = self.leases.get(lease_id)
            if lease is not None:
                await self._expire_lease(lease, reason="worker-lost")

    # -- worker ops -----------------------------------------------------

    async def _on_lease_request(self, message: dict, writer) -> None:
        worker_id = str(message.get("worker", ""))
        worker = self.workers.get(worker_id)
        max_cells = max(1, int(message.get("max_cells", 1)))
        granted: list[FabricJob] = []
        while self.ready and len(granted) < max_cells:
            job = self.jobs[self.ready.popleft()]
            if job.state != "queued":
                continue  # stale queue entry (completed while queued)
            job.state = "leased"
            job.attempts += 1
            granted.append(job)
        if not granted:
            await write_msg(
                writer, {"op": "idle", "retry_after": self.poll_interval}
            )
            return
        lease = Lease(
            lease_id=self._next_id("lease"),
            worker_id=worker_id,
            keys={job.key for job in granted},
            deadline=asyncio.get_running_loop().time() + self.lease_timeout,
        )
        self.leases[lease.lease_id] = lease
        if worker is not None:
            worker.leases.add(lease.lease_id)
        self._inc("fabric.leases_granted")
        self._inc("fabric.cells_leased", len(granted))
        self._record(
            "lease-grant",
            lease=lease.lease_id,
            worker=worker_id,
            cells=sorted(lease.keys),
        )
        await write_msg(
            writer,
            {
                "op": "lease",
                "lease": lease.lease_id,
                "timeout": self.lease_timeout,
                "jobs": [
                    {
                        "key": job.key,
                        "task": job.blob,
                        "ingredients": job.ingredients,
                        "label": job.label,
                    }
                    for job in granted
                ],
            },
        )

    def _on_heartbeat(self, message: dict) -> None:
        lease = self.leases.get(str(message.get("lease", "")))
        if lease is None:
            return  # expired already; the worker will learn via requeue
        lease.deadline = asyncio.get_running_loop().time() + self.lease_timeout
        lease.heartbeats += 1
        self._inc("fabric.heartbeats")

    async def _on_cell_done(
        self, message: dict, worker: _Worker | None
    ) -> None:
        key = str(message.get("key", ""))
        lease = self.leases.get(str(message.get("lease", "")))
        if lease is not None:
            lease.keys.discard(key)
        job = self.jobs.get(key)
        if job is None or job.state == "done":
            return  # duplicate completion (e.g. after a requeue): no-op
        if worker is not None:
            worker.cells_done += 1
        await self._complete_job(job, via=worker.worker_id if worker else "")

    async def _on_cell_failed(self, message: dict) -> None:
        key = str(message.get("key", ""))
        error = str(message.get("error", "unknown failure"))
        lease = self.leases.get(str(message.get("lease", "")))
        if lease is not None:
            lease.keys.discard(key)
        job = self.jobs.get(key)
        if job is None or job.state in ("done", "failed"):
            return
        await self._requeue_or_fail(job, error=error, cause="cell-failed")

    def _on_lease_complete(self, message: dict) -> None:
        lease = self.leases.pop(str(message.get("lease", "")), None)
        if lease is None:
            return
        worker = self.workers.get(lease.worker_id)
        if worker is not None:
            worker.leases.discard(lease.lease_id)
        self._inc("fabric.leases_completed")
        self._record(
            "lease-complete", lease=lease.lease_id, worker=lease.worker_id
        )

    # -- job state transitions -----------------------------------------

    async def _complete_job(self, job: FabricJob, via: str = "") -> None:
        job.state = "done"
        self._inc("fabric.cells_completed")
        self._record("cell-done", key=job.key, worker=via, label=job.label)
        await self._notify_batches(
            job, {"op": "cell-done", "key": job.key}
        )

    async def _requeue_or_fail(
        self, job: FabricJob, error: str, cause: str
    ) -> None:
        if job.attempts >= self.max_attempts:
            job.state = "failed"
            job.error = f"{cause} after {job.attempts} attempts: {error}"
            self._inc("fabric.cells_failed")
            self._record(
                "cell-failed", key=job.key, error=job.error, label=job.label
            )
            await self._notify_batches(
                job,
                {"op": "cell-failed", "key": job.key, "error": job.error},
                failed=True,
            )
            return
        job.state = "queued"
        self.ready.append(job.key)
        self._inc("fabric.cells_requeued")
        self._record(
            "cell-requeue",
            key=job.key,
            attempts=job.attempts,
            cause=cause,
            label=job.label,
        )

    async def _notify_batches(
        self, job: FabricJob, message: dict, failed: bool = False
    ) -> None:
        for batch_id in sorted(job.batches):
            batch = self.batches.get(batch_id)
            if batch is None or job.key not in batch.remaining:
                continue
            batch.remaining.discard(job.key)
            if failed:
                batch.failed[job.key] = job.error
            else:
                batch.completed += 1
            try:
                await write_msg(batch.writer, {**message, "batch": batch_id})
                if not batch.remaining:
                    await self._finish_batch(batch)
            except (OSError, ConnectionError):
                # Submitter went away; the jobs still complete into the
                # store, a re-submission will find them done.
                self.batches.pop(batch_id, None)

    async def _finish_batch(self, batch: _Batch) -> None:
        self.batches.pop(batch.batch_id, None)
        self._inc("fabric.batches_completed")
        events = [e for e in self.events if e["seq"] > batch.start_seq]
        await write_msg(
            batch.writer,
            {
                "op": "batch-done",
                "batch": batch.batch_id,
                "completed": batch.completed,
                "failed": batch.failed,
                "events": events,
            },
        )

    # -- submitter ops --------------------------------------------------

    async def _on_submit(self, message: dict, writer) -> None:
        batch = _Batch(
            batch_id=str(message.get("batch") or self._next_id("batch")),
            writer=writer,
            remaining=set(),
            start_seq=self._seq,
        )
        self._inc("fabric.batches_submitted")
        jobs = message.get("jobs") or []
        self._record("batch-submit", batch=batch.batch_id, cells=len(jobs))
        notify_now: list[dict] = []
        for spec in jobs:
            job = self._adopt_job(spec)
            if job.state == "done":
                notify_now.append({"op": "cell-done", "key": job.key})
            elif job.state == "failed":
                batch.failed[job.key] = job.error
                notify_now.append(
                    {"op": "cell-failed", "key": job.key, "error": job.error}
                )
            else:
                job.batches.add(batch.batch_id)
                batch.remaining.add(job.key)
        batch.completed = sum(1 for m in notify_now if m["op"] == "cell-done")
        self.batches[batch.batch_id] = batch
        for message_out in notify_now:
            await write_msg(writer, {**message_out, "batch": batch.batch_id})
        if not batch.remaining:
            await self._finish_batch(batch)

    def _adopt_job(self, spec: dict) -> FabricJob:
        """Register one submitted job, deduplicating by key."""
        key = str(spec.get("key", ""))
        existing = self.jobs.get(key)
        if existing is not None:
            self._inc("fabric.cells_deduped")
            return existing
        if self.store is not None and self.store.contains(key):
            # Someone already computed this (an earlier batch, another
            # client): done on arrival, no work enqueued.
            job = FabricJob(
                key=key,
                blob="",
                ingredients=spec.get("ingredients") or {},
                label=str(spec.get("label", "")),
                state="done",
            )
            self.jobs[key] = job
            self._inc("fabric.cells_deduped")
            return job
        job = FabricJob(
            key=key,
            blob=str(spec.get("task", "")),
            ingredients=spec.get("ingredients") or {},
            label=str(spec.get("label", "")),
        )
        self.jobs[key] = job
        self.ready.append(key)
        self._inc("fabric.cells_enqueued")
        return job

    def enqueue_jobs(self, specs: list[dict]) -> list[str]:
        """Adopt jobs with no submitter to notify (the HTTP miss path).

        Returns the per-key states after adoption.  Must run on the
        coordinator's event loop (the HTTP thread goes through
        ``run_coroutine_threadsafe``).
        """
        return [self._adopt_job(spec).state for spec in specs]

    # -- lease expiry ---------------------------------------------------

    async def _reap_loop(self) -> None:
        interval = max(0.05, self.lease_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for lease in [
                lease
                for lease in self.leases.values()
                if lease.deadline <= now
            ]:
                await self._expire_lease(lease, reason="deadline")

    async def _expire_lease(self, lease: Lease, reason: str) -> None:
        self.leases.pop(lease.lease_id, None)
        worker = self.workers.get(lease.worker_id)
        if worker is not None:
            worker.leases.discard(lease.lease_id)
        self._inc("fabric.leases_expired")
        self._record(
            "lease-expire",
            lease=lease.lease_id,
            worker=lease.worker_id,
            reason=reason,
            cells=sorted(lease.keys),
        )
        for key in sorted(lease.keys):
            job = self.jobs.get(key)
            if job is None or job.state != "leased":
                continue
            if self.store is not None and self.store.contains(key):
                # The worker committed before dying; adopt the result.
                await self._complete_job(job, via=lease.worker_id)
                continue
            await self._requeue_or_fail(
                job, error=f"lease {lease.lease_id} {reason}", cause=reason
            )

    # -- status ---------------------------------------------------------

    def status(self) -> dict:
        """The ``status-reply`` document (also the HTTP /status body)."""
        states = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "op": "status-reply",
            "version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "port": self.port,
            "lease_timeout": self.lease_timeout,
            "max_attempts": self.max_attempts,
            "jobs": states,
            "leases_active": len(self.leases),
            "batches_active": len(self.batches),
            "workers": [
                {
                    "worker": worker.worker_id,
                    "host": worker.host,
                    "pid": worker.pid,
                    "cells_done": worker.cells_done,
                    "leases": len(worker.leases),
                }
                for worker in sorted(
                    self.workers.values(), key=lambda w: w.worker_id
                )
            ],
            "metrics": self.metrics.snapshot(),
            "events_recorded": self._seq,
        }


# ----------------------------------------------------------------------
# Thread embedding (tests, `fabric serve`'s HTTP sidecar)


class CoordinatorThread:
    """A coordinator running on its own event loop in a daemon thread.

    Lets synchronous code -- tests, the blocking HTTP front end -- stand
    up a live coordinator and talk to it over real sockets.  ``submit``
    work by connecting a normal :class:`repro.fabric.client.FabricClient`
    to ``host:port``.
    """

    def __init__(self, coordinator: FabricCoordinator) -> None:
        self.coordinator = coordinator
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="fabric-coordinator", daemon=True
        )
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.coordinator.start())
        self._started.set()
        self.loop.run_forever()
        self.loop.run_until_complete(self.coordinator.stop())
        # Drain connection handlers for sockets still open at shutdown;
        # a coroutine left pending past loop.close() would only die at
        # garbage collection, with the loop gone under its finally.
        pending = [t for t in asyncio.all_tasks(self.loop) if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()

    def start(self) -> "CoordinatorThread":
        self._thread.start()
        if not self._started.wait(timeout=10):  # pragma: no cover
            raise RuntimeError("fabric coordinator failed to start")
        return self

    @property
    def port(self) -> int:
        return self.coordinator.port

    def call(self, coro):
        """Run a coroutine on the coordinator loop, return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(30)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10)
