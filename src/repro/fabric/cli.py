"""``fabric`` subcommand: run and inspect the distributed sweep fabric.

Reached as ``python -m repro.experiments fabric <op>``::

    fabric serve  [--store DIR] [--port P] [--http-port P]
                  [--lease-timeout S] [--max-attempts N]
    fabric work   --connect HOST:PORT [--store DIR] [--max-cells N]
                  [--max-leases N] [--trace-cache-bytes N] [--progress]
    fabric status --connect HOST:PORT [--json]

``serve`` runs a coordinator (and, with ``--http-port``, the HTTP
front end) over the store until interrupted; ``work`` runs one worker
process against a coordinator; ``status`` prints the coordinator's
live state.  A minimal deployment is one ``serve``, N ``work``
processes sharing the store directory, and experiment invocations with
``--fabric HOST:PORT`` -- see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from pathlib import Path

from repro.errors import ConfigError, FabricError, StoreError
from repro.store.store import DEFAULT_STORE_PATH, ResultStore


def _store_path(arg: str | None) -> Path:
    return Path(arg or os.environ.get("REPRO_STORE") or DEFAULT_STORE_PATH)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.fabric.coordinator import CoordinatorThread, FabricCoordinator
    from repro.fabric.service import FabricHTTPService

    store = ResultStore(_store_path(args.store))
    coordinator = FabricCoordinator(
        store=store,
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
    )
    thread = CoordinatorThread(coordinator).start()
    print(
        f"fabric coordinator on {args.host}:{thread.port} "
        f"(store {store.root}, lease timeout {args.lease_timeout}s, "
        f"max attempts {args.max_attempts})",
        flush=True,
    )
    service = None
    if args.http_port is not None:
        service = FabricHTTPService(
            store, coordinator=thread, host=args.host, port=args.http_port
        ).start()
        print(f"fabric HTTP front end on {service.url}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        if service is not None:
            service.stop()
        thread.stop()
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.fabric.worker import FabricWorker

    if args.trace_cache_bytes is not None:
        from repro.sim import trace_cache

        trace_cache.set_max_bytes(args.trace_cache_bytes)
    store = ResultStore(_store_path(args.store))
    worker = FabricWorker(
        args.connect,
        store,
        max_cells=args.max_cells,
        progress=args.progress,
    )
    done = worker.run(max_leases=args.max_leases)
    print(
        f"worker {worker.worker_id}: {done} cell(s) completed, "
        f"{worker.cells_failed} failed",
        flush=True,
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.fabric.client import FabricClient

    with FabricClient(args.connect) as client:
        status = client.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    jobs = status.get("jobs", {})
    print(f"fabric coordinator at {args.connect}")
    print(
        f"  uptime {status.get('uptime_seconds', 0):.0f}s, "
        f"lease timeout {status.get('lease_timeout')}s, "
        f"max attempts {status.get('max_attempts')}"
    )
    print(
        f"  jobs: {jobs.get('queued', 0)} queued, {jobs.get('leased', 0)} "
        f"leased, {jobs.get('done', 0)} done, {jobs.get('failed', 0)} failed"
    )
    print(
        f"  {status.get('leases_active', 0)} active lease(s), "
        f"{status.get('batches_active', 0)} open batch(es), "
        f"{status.get('events_recorded', 0)} events recorded"
    )
    workers = status.get("workers") or []
    print(f"  {len(workers)} worker(s) connected")
    for worker in workers:
        print(
            f"    {worker['worker']} (host {worker['host'] or '?'}, "
            f"pid {worker['pid']}): {worker['cells_done']} cells done, "
            f"{worker['leases']} lease(s) held"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``fabric`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fabric",
        description="Run and inspect the distributed sweep fabric.",
    )
    sub = parser.add_subparsers(dest="op", required=True)

    serve = sub.add_parser("serve", help="run a coordinator (+ HTTP front end)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help=f"shared store directory (default $REPRO_STORE "
                            f"or {DEFAULT_STORE_PATH})")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7463,
                       help="coordinator port (default 7463; 0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=None, metavar="P",
                       help="also serve the HTTP front end on this port")
    serve.add_argument("--lease-timeout", type=float, default=30.0,
                       metavar="S", help="seconds before an unheartbeated "
                                         "lease expires (default 30)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="grant budget per cell before it fails (default 3)")
    serve.set_defaults(func=_cmd_serve)

    work = sub.add_parser("work", help="run one lease-driven worker")
    work.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator address")
    work.add_argument("--store", default=None, metavar="DIR",
                      help="shared store directory (must match the "
                           "coordinator's)")
    work.add_argument("--max-cells", type=int, default=1, metavar="N",
                      help="cells requested per lease (default 1)")
    work.add_argument("--max-leases", type=int, default=None, metavar="N",
                      help="exit after N leases (default: run until the "
                           "coordinator goes away)")
    work.add_argument("--trace-cache-bytes", type=int, default=None,
                      metavar="N", help="trace-cache byte bound for this "
                                        "worker (default $REPRO_TRACE_CACHE_BYTES or 256 MiB)")
    work.add_argument("--progress", action="store_true",
                      help="print each cell as it runs")
    work.set_defaults(func=_cmd_work)

    status = sub.add_parser("status", help="query a running coordinator")
    status.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    status.add_argument("--json", action="store_true",
                        help="machine-readable output")
    status.set_defaults(func=_cmd_status)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, FabricError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
