"""repro.fabric: the distributed sweep fabric.

Many hosts, one content-addressed store.  An asyncio **coordinator**
(:mod:`repro.fabric.coordinator`) leases cell waves from
:mod:`repro.sched` DAGs to **workers** (:mod:`repro.fabric.worker`)
over a length-prefixed JSON protocol (:mod:`repro.fabric.protocol`)
with per-lease deadlines, heartbeats and expiry-driven requeue; workers
execute cells through the existing sweep machinery and commit results
to the shared :class:`~repro.store.ResultStore` (multi-writer safe), so
a killed worker never loses or duplicates a cell.  An **HTTP front
end** (:mod:`repro.fabric.service`) serves cached cells instantly by
store key and enqueues misses as fabric jobs.

Experiments opt in with ``--fabric HOST:PORT``; the sweep scheduler
(:mod:`repro.sched.scheduler`) then dispatches each dependency wave
through a :class:`~repro.fabric.client.FabricClient` instead of the
in-process worker pool, with byte-identical reports (proven by
``tests/fabric/test_fabric_equivalence.py`` alongside the warm/cold
equivalence suite).  See DESIGN.md ("Distributed sweep fabric") and
EXPERIMENTS.md for usage.
"""

from repro.fabric.client import FabricClient, parse_address
from repro.fabric.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    CoordinatorThread,
    FabricCoordinator,
)
from repro.fabric.protocol import PROTOCOL_VERSION
from repro.fabric.service import FabricHTTPService
from repro.fabric.worker import FabricWorker, worker_host

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_ATTEMPTS",
    "PROTOCOL_VERSION",
    "CoordinatorThread",
    "FabricClient",
    "FabricCoordinator",
    "FabricHTTPService",
    "FabricWorker",
    "parse_address",
    "worker_host",
]
