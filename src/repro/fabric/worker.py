"""The fabric worker: lease cells, execute, commit to the shared store.

A worker is one process holding one TCP connection to the coordinator
and one handle on the shared content-addressed store.  Its loop is
deliberately dumb -- all scheduling intelligence lives coordinator-side:

1. request a lease (up to ``max_cells`` jobs);
2. for each job: probe the store first (another worker may already have
   committed the key -- content addressing makes that a free skip),
   otherwise unpack the ``(execute, task)`` blob, run it through the
   exact same executor the in-process worker pool uses, and commit the
   result through the store's write-ahead journal
   (:meth:`~repro.store.store.ResultStore.put`, which retries transient
   ``OSError`` contention with backoff);
3. report each ``cell-done``/``cell-failed``, then ``lease-complete``,
   and go back to 1.

While executing, a daemon thread heartbeats the lease so long cells
outlive the coordinator's deadline; a worker that dies mid-lease simply
stops heartbeating (and its socket closes), which is the coordinator's
cue to requeue.  Execution results the worker manages to commit before
dying are *kept*: the coordinator probes the store before re-leasing.

Results never cross the wire; only keys do.
"""

from __future__ import annotations

import os
import platform
import socket
import threading
import time
import traceback
from typing import Any

from repro.errors import FabricError
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    recv_msg,
    send_msg,
    unpack_obj,
)
from repro.store.store import ResultStore


def worker_host() -> str:
    """This worker's host label (``REPRO_FABRIC_HOST`` overrides the
    real node name, which tests use to exercise per-host trace lanes)."""
    return os.environ.get("REPRO_FABRIC_HOST") or platform.node() or "localhost"


class FabricWorker:
    """One lease-driven executor process."""

    def __init__(
        self,
        address: str,
        store: ResultStore,
        worker_id: str | None = None,
        max_cells: int = 1,
        heartbeat_interval: float | None = None,
        progress: bool = False,
    ) -> None:
        self.address = address
        self.store = store
        self.host = worker_host()
        self.worker_id = worker_id or f"{self.host}:{os.getpid()}"
        self.max_cells = max(1, max_cells)
        self.heartbeat_interval = heartbeat_interval
        self.progress = progress
        self.cells_done = 0
        self.cells_failed = 0
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()

    # -- wiring ---------------------------------------------------------

    def _send(self, message: dict) -> None:
        assert self._sock is not None
        with self._send_lock:
            send_msg(self._sock, message)

    def connect(self) -> None:
        from repro.fabric.client import parse_address

        host, port = parse_address(self.address)
        try:
            self._sock = socket.create_connection((host, port))
        except OSError as exc:
            raise FabricError(
                f"cannot reach fabric coordinator at {self.address}: {exc}"
            ) from exc
        self._send(
            {
                "op": "hello",
                "role": "worker",
                "version": PROTOCOL_VERSION,
                "worker": self.worker_id,
                "host": self.host,
                "pid": os.getpid(),
            }
        )
        reply = recv_msg(self._sock)
        if reply is None or reply.get("op") != "hello-ok":
            error = (reply or {}).get("error", "connection closed")
            raise FabricError(f"fabric handshake failed: {error}")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- main loop ------------------------------------------------------

    def run(self, max_leases: int | None = None) -> int:
        """Poll for leases until the coordinator goes away.

        ``max_leases`` bounds the loop for tests; None runs until the
        connection closes (coordinator shutdown, or this process being
        killed).  Returns the number of cells completed.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        leases = 0
        while max_leases is None or leases < max_leases:
            self._send({"op": "lease-request", "worker": self.worker_id,
                        "max_cells": self.max_cells})
            try:
                message = recv_msg(self._sock)
            except FabricError:
                break
            if message is None or message.get("op") == "shutdown":
                break
            op = message.get("op")
            if op == "idle":
                time.sleep(float(message.get("retry_after", 0.2)))
                continue
            if op != "lease":
                continue  # tolerate unknown traffic from newer coordinators
            leases += 1
            self._work_lease(message)
        self.close()
        return self.cells_done

    def _work_lease(self, lease: dict) -> None:
        lease_id = str(lease.get("lease", ""))
        timeout = float(lease.get("timeout", 30.0))
        interval = self.heartbeat_interval or max(0.05, timeout / 3.0)
        stop = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, interval, stop),
            daemon=True,
        )
        beats.start()
        try:
            for job in lease.get("jobs") or []:
                self._work_job(lease_id, job)
        finally:
            stop.set()
            beats.join(timeout=interval * 2)
        self._send({"op": "lease-complete", "lease": lease_id})

    def _heartbeat_loop(
        self, lease_id: str, interval: float, stop: threading.Event
    ) -> None:
        while not stop.wait(interval):
            try:
                self._send({"op": "heartbeat", "lease": lease_id})
            except OSError:  # pragma: no cover - socket died mid-lease
                return

    def _work_job(self, lease_id: str, job: dict) -> None:
        key = str(job.get("key", ""))
        label = job.get("label") or key[:12]
        try:
            if not self.store.contains(key):
                if self.progress:
                    print(f"[{self.worker_id}] running {label} ...", flush=True)
                execute, task = unpack_obj(str(job.get("task", "")))
                value = self._execute(execute, task)
                self.store.put(key, value, job.get("ingredients") or {})
            elif self.progress:
                print(f"[{self.worker_id}] {label}: already in store", flush=True)
        except Exception as exc:
            self.cells_failed += 1
            self._send(
                {
                    "op": "cell-failed",
                    "lease": lease_id,
                    "key": key,
                    "error": f"{type(exc).__name__}: {exc}\n"
                    + traceback.format_exc(limit=8),
                }
            )
            return
        self.cells_done += 1
        self._send({"op": "cell-done", "lease": lease_id, "key": key})

    def _execute(self, execute: Any, task: Any) -> Any:
        value = execute(task)
        if value is None:
            raise FabricError(
                "cell produced None (reserved as the store's miss sentinel)"
            )
        return value
