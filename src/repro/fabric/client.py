"""Blocking submitter client: ship cell waves to a coordinator.

The experiments process stays synchronous; this client wraps one TCP
connection to a :class:`~repro.fabric.coordinator.FabricCoordinator`
and exposes exactly what the sweep scheduler needs:

* :meth:`run_wave` -- submit one dependency wave of
  :class:`~repro.sched.cells.Cell`\\ s as a batch, stream completion
  events (invoking a callback per finished cell so the scheduler can
  journal progressively, same as the worker-pool path), and return once
  the coordinator reports the batch done.  Permanently failed cells
  raise :class:`~repro.errors.FabricJobError` with every error listed.
* :meth:`status` -- the coordinator's status document (``fabric
  status`` CLI, tests).

Results never travel this connection: workers commit them to the shared
store and the scheduler reads them back by key, so the fabric wire
carries only descriptors and keys regardless of result size.
"""

from __future__ import annotations

import socket
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.errors import FabricError, FabricJobError, FabricProtocolError
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    pack_obj,
    recv_msg,
    send_msg,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.cells import Cell


def parse_address(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``, implying localhost) parsed."""
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise FabricError(
            f"malformed fabric address {spec!r} (expected HOST:PORT)"
        ) from None


class FabricClient:
    """One submitter connection to a running coordinator."""

    def __init__(self, address: str, timeout: float = 600.0) -> None:
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._batches = 0
        #: Lease lifecycle events from every completed batch, in order
        #: (feeds the run manifest's ``fabric`` section).
        self.events: list[dict] = []

    # -- connection -----------------------------------------------------

    def connect(self) -> "FabricClient":
        host, port = parse_address(self.address)
        try:
            sock = socket.create_connection((host, port), timeout=self.timeout)
        except OSError as exc:
            raise FabricError(
                f"cannot reach fabric coordinator at {self.address}: {exc}"
            ) from exc
        self._sock = sock
        send_msg(sock, {"op": "hello", "role": "client", "version": PROTOCOL_VERSION})
        reply = recv_msg(sock)
        if reply is None or reply.get("op") != "hello-ok":
            error = (reply or {}).get("error", "connection closed")
            self.close()
            raise FabricError(f"fabric handshake failed: {error}")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "FabricClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise FabricError("fabric client is not connected")
        return self._sock

    # -- operations -----------------------------------------------------

    def run_wave(
        self,
        cells: Sequence["Cell"],
        on_done: Callable[[str], None],
    ) -> dict:
        """Execute one wave of cells through the fabric.

        ``on_done`` fires with each cell *key* as the coordinator reports
        it complete (results are read from the store by the caller).
        Returns the ``batch-done`` document; raises
        :class:`FabricJobError` when any cell failed permanently.
        """
        sock = self._require_sock()
        self._batches += 1
        batch_id = f"client-{id(self) & 0xFFFF:x}-{self._batches}"
        send_msg(
            sock,
            {
                "op": "submit",
                "batch": batch_id,
                "jobs": [
                    {
                        "key": cell.key,
                        "task": pack_obj((cell.execute, cell.task)),
                        "ingredients": cell.ingredients,
                        "label": cell.label,
                    }
                    for cell in cells
                ],
            },
        )
        while True:
            message = recv_msg(sock)
            if message is None:
                raise FabricError(
                    "coordinator connection closed mid-batch "
                    f"({batch_id}: results may still land in the store)"
                )
            op = message.get("op")
            if message.get("batch") != batch_id:
                continue  # stale frame from an aborted prior batch
            if op == "cell-done":
                on_done(str(message.get("key", "")))
            elif op == "cell-failed":
                continue  # accounted in batch-done.failed below
            elif op == "batch-done":
                failed = message.get("failed") or {}
                self.events.extend(message.get("events") or [])
                if failed:
                    details = "; ".join(
                        f"{key[:12]}: {error}"
                        for key, error in sorted(failed.items())
                    )
                    raise FabricJobError(
                        f"{len(failed)} fabric cell(s) failed permanently: "
                        f"{details}"
                    )
                return message
            else:
                raise FabricProtocolError(
                    f"unexpected op {op!r} while awaiting batch {batch_id}"
                )

    def status(self) -> dict:
        """The coordinator's status document."""
        sock = self._require_sock()
        send_msg(sock, {"op": "status"})
        reply = recv_msg(sock)
        if reply is None or reply.get("op") != "status-reply":
            raise FabricProtocolError(
                f"expected status-reply, got {(reply or {}).get('op')!r}"
            )
        return reply
