"""Length-prefixed JSON wire protocol of the sweep fabric.

Every fabric message -- worker lease traffic, client sweep submissions,
status probes -- is one *frame*: a 4-byte big-endian length followed by
that many bytes of UTF-8 canonical JSON encoding a single object with an
``op`` field.  The framing is deliberately trivial: it works identically
over blocking sockets (workers, clients -- :func:`send_msg` /
:func:`recv_msg`) and asyncio streams (the coordinator --
:func:`write_msg` / :func:`read_msg`), and a torn frame is always
detected by the length prefix rather than corrupting the next message.

Cell payloads (the ``execute`` callable + task descriptor a worker
needs, exactly what the multiprocessing pool already ships) do not fit
JSON, so they ride inside frames as ``pickle+zlib+b64`` blobs
(:func:`pack_obj` / :func:`unpack_obj`) -- the same codec the store uses
for result envelopes.  The fabric is a *trusted* deployment surface
(your own coordinator, your own workers, one shared store); the blobs
are integrity-checked but deliberately not treated as hostile input.

Frames are capped at :data:`MAX_FRAME_BYTES` so a corrupt length prefix
degrades into a clean :class:`~repro.errors.FabricProtocolError` instead
of an attempted multi-gigabyte read.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import zlib
from typing import Any

from repro.errors import FabricProtocolError

#: Wire protocol revision; both ends refuse to talk across a mismatch.
PROTOCOL_VERSION = 1

#: Upper bound on one frame.  Task blobs are tiny descriptors (not
#: results -- those travel through the store), so 64 MiB is generous.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """One message as ``length || canonical-JSON`` bytes."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FabricProtocolError(
            f"frame of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """The JSON object inside one frame body (op field required)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FabricProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise FabricProtocolError("frame body is not an object with an 'op'")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FabricProtocolError(
            f"frame length {length} exceeds cap {MAX_FRAME_BYTES} "
            f"(corrupt length prefix?)"
        )


# ----------------------------------------------------------------------
# Blocking-socket framing (workers, submitter clients, status probes)


def send_msg(sock: socket.socket, message: dict) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_msg(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket (None on clean EOF)."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise FabricProtocolError("connection closed mid-frame")
    return decode_body(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Exactly ``count`` bytes, None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FabricProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Asyncio framing (the coordinator)


async def read_msg(reader) -> dict | None:
    """Read one frame from an asyncio stream (None on clean EOF)."""
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FabricProtocolError("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FabricProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_msg(writer, message: dict) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


# ----------------------------------------------------------------------
# Task blobs


def pack_obj(value: Any) -> str:
    """A picklable object as a compact base64 string (wire-embeddable)."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(value, protocol=4), level=6)
    ).decode("ascii")


def unpack_obj(blob: str) -> Any:
    """Inverse of :func:`pack_obj`."""
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(blob, validate=True)))
    except Exception as exc:
        raise FabricProtocolError(f"undecodable task blob: {exc}") from exc
