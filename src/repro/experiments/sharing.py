"""Section IX.E: content-based page sharing for big-memory workloads.

The paper co-schedules two 40 GB VMs for every pair of big-memory
workloads and measures how much memory KSM-style sharing could reclaim.
Because big-memory data pages are unique to their workload, sharing
never saves more than ~3% -- so the VMM segment's sharing restriction
(Table II) costs little for exactly the workloads that want segments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.address import GIB
from repro.experiments.common import format_table
from repro.vmm.page_sharing import SharingResult, sharing_study
from repro.workloads.registry import BIG_MEMORY_WORKLOADS, create_workload

#: Per-VM memory in the paper's pairwise study.
VM_BYTES = 40 * GIB

#: Scale factor for simulation (fingerprints per page; full 40 GB is 10M
#: pages -- we sample at 1/16 scale, which leaves ratios unchanged).
SCALE = 16


@dataclass
class PairSharing:
    """Sharing outcome for one workload pair."""

    workload_a: str
    workload_b: str
    result: SharingResult


@dataclass
class SharingStudyResult:
    """All pairs."""

    pairs: list[PairSharing]

    @property
    def max_savings(self) -> float:
        """The worst case the paper bounds at ~3%."""
        return max(p.result.savings_fraction for p in self.pairs)


def run(
    workloads: tuple[str, ...] = BIG_MEMORY_WORKLOADS,
    vm_bytes: int = VM_BYTES,
    seed: int = 0,
    progress: bool = False,
) -> SharingStudyResult:
    """Scan every workload pair (including same-workload pairs)."""
    vm_pages = vm_bytes // 4096 // SCALE
    pairs = []
    for a, b in itertools.combinations_with_replacement(workloads, 2):
        if progress:
            print(f"  scanning {a} + {b} ...", flush=True)
        profile_a = create_workload(a).spec.content_profile
        profile_b = create_workload(b).spec.content_profile
        result = sharing_study(profile_a, profile_b, vm_pages, seed=seed)
        pairs.append(PairSharing(workload_a=a, workload_b=b, result=result))
    return SharingStudyResult(pairs=pairs)


def format_study(result: SharingStudyResult) -> str:
    """Render per-pair savings."""
    headers = ["VM A", "VM B", "pages saved", "savings"]
    rows = [
        [
            p.workload_a,
            p.workload_b,
            p.result.pages_saved,
            f"{100 * p.result.savings_fraction:.2f}%",
        ]
        for p in result.pairs
    ]
    rows.append(["max", "", "", f"{100 * result.max_savings:.2f}%"])
    return format_table(
        headers,
        rows,
        title="Section IX.E: content-based page sharing, big-memory VM pairs",
    )
