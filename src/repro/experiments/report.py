"""Machine-readable experiment reports.

Every experiment returns plain dataclasses; this module serializes any
of them to JSON-compatible structures so results can be archived,
diffed across runs, or plotted by external tooling.  The CLI's
``--json`` flag routes through :func:`to_jsonable`.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Convert experiment results to JSON-compatible data.

    Handles (recursively): dataclasses, enums, dict/list/tuple/set,
    and objects exposing interesting read-only properties alongside
    their dataclass fields (computed metrics like ``mean`` or
    ``savings_fraction`` are part of the result, so they are included
    under their property names).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field in dataclasses.fields(value):
            if field.name.startswith("_"):
                continue
            out[field.name] = to_jsonable(getattr(value, field.name))
        for name in dir(type(value)):
            attr = getattr(type(value), name, None)
            if isinstance(attr, property) and not name.startswith("_"):
                try:
                    out[name] = to_jsonable(getattr(value, name))
                except Exception:
                    continue
        return out
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Non-dataclass result containers (e.g. RunGrid inside results).
    if hasattr(value, "__dict__"):
        return {
            k: to_jsonable(v)
            for k, v in vars(value).items()
            if not k.startswith("_")
        }
    return repr(value)


def dumps(result: Any, indent: int = 2) -> str:
    """Serialize an experiment result to a JSON string."""
    return json.dumps(to_jsonable(result), indent=indent, sort_keys=True)
