"""Resilience sweep: runtime fault injection under Dual Direct.

Figure 13 measures *static* resilience: bad pages that exist before the
system boots are escaped through the filter at segment-creation time.
This experiment measures the *dynamic* story the paper's Section V
machinery implies but never evaluates: DRAM frames go bad mid-run,
the escape filter runs out of capacity, balloons fail, memory
fragments -- and the hypervisor absorbs each event through the
graceful-degradation ladder (escape -> shrink -> fall back to nested
paging) while a :class:`~repro.faults.oracle.TranslationOracle`
shadow-checks that every sampled translation still lands on the right
host frame.

Each point sweeps the number of extra mid-run hard faults on top of a
fixed chaos mix (a transient-allocation burst, a failed balloon
inflation, filter exhaustion, edge and mid-segment hard faults, a
fragmentation shock) and reports execution time normalized to a
fault-free run, the degradation actions taken, and the oracle verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import format_table
from repro.faults.degradation import DegradationAction
from repro.faults.injector import FaultInjector
from repro.faults.oracle import TranslationOracle
from repro.sim.config import parse_config
from repro.sim.simulator import DEFAULT_WARMUP_FRACTION, SimulationResult, run_trace
from repro.sim.system import build_system
from repro.workloads.registry import create_workload

DEFAULT_WORKLOADS = ("graph500", "gups")
DEFAULT_EXTRA_FAULTS = (0, 2, 8)
DEFAULT_CONFIG = "DD"


@dataclass
class ResiliencePoint:
    """One (workload, #extra hard faults) point of the sweep."""

    workload: str
    extra_hard_faults: int
    #: Execution time normalized to the same workload with no faults.
    normalized_time: float
    #: DegradationAction.value -> count of events of that kind.
    actions: dict[str, int] = field(default_factory=dict)
    mode_transitions: int = 0
    degradation_cycles: float = 0.0
    allocation_backoff_cycles: int = 0
    oracle_checks: int = 0
    oracle_mismatches: int = 0

    @property
    def consistent(self) -> bool:
        """True when the oracle saw no translation divergence."""
        return self.oracle_mismatches == 0


@dataclass
class ResilienceResult:
    """All points of the sweep."""

    config: str
    trace_length: int
    points: list[ResiliencePoint]
    #: Per-run observability records (empty unless run with ``obs``).
    obs_records: tuple = ()

    def point(self, workload: str, extra: int) -> ResiliencePoint:
        """Lookup one point."""
        for p in self.points:
            if p.workload == workload and p.extra_hard_faults == extra:
                return p
        raise KeyError((workload, extra))

    @property
    def all_consistent(self) -> bool:
        """True when no point recorded an oracle mismatch."""
        return all(p.consistent for p in self.points)


def _run_once(
    workload_name: str,
    config_label: str,
    trace_length: int,
    injector: FaultInjector | None,
    sample_every: int,
    seed: int,
    obs=None,
) -> tuple[SimulationResult, int]:
    """One run; returns the result and the allocator's backoff cycles."""
    workload = create_workload(workload_name)
    system = build_system(parse_config(config_label), workload.spec)
    trace = workload.trace(trace_length, seed=seed)
    oracle = None
    if injector is not None:
        oracle = TranslationOracle(system, sample_every=sample_every)
    observer = None
    if obs is not None:
        observer = obs.make_observer()
        observer.set_run_info(seed, trace_length)
    result = run_trace(
        system,
        trace,
        workload.spec.ideal_cycles_per_ref,
        workload_name=workload_name,
        refs_per_entry=workload.spec.refs_per_entry,
        fault_injector=injector,
        oracle=oracle,
        observer=observer,
    )
    backoff = 0
    if system.hypervisor is not None:
        backoff = system.hypervisor.allocator.retry_stats.backoff_cycles
    return result, backoff


@dataclass(frozen=True)
class _ResilienceTask:
    """One resilience run, fully described by picklable values.

    ``extra is None`` is the workload's fault-free baseline (always
    unobserved, matching the store-less path); otherwise the chaos plan
    is rebuilt deterministically from the seed and fault count.
    """

    workload: str
    config: str
    trace_length: int
    sample_every: int
    seed: int
    extra: int | None
    obs: object = None


def _resilience_cell(task: _ResilienceTask):
    """Run one resilience cell (module-level: scheduler-callable)."""
    injector = None
    if task.extra is not None:
        measured = task.trace_length - int(
            task.trace_length * DEFAULT_WARMUP_FRACTION
        )
        injector = FaultInjector.chaos_plan(
            measured,
            seed=task.seed * 1000 + task.extra,
            extra_hard_faults=task.extra,
        )
    return _run_once(
        task.workload,
        task.config,
        task.trace_length,
        injector,
        task.sample_every,
        task.seed,
        obs=task.obs,
    )


def _resilience_ingredients(task: _ResilienceTask) -> dict:
    """Store-key ingredients for one cell (see repro.store.keys)."""
    from repro.store.keys import (
        config_params,
        obs_params,
        trace_key_params,
        workload_params,
    )

    workload = create_workload(task.workload)
    return {
        "kind": "resilience-cell",
        "workload": task.workload,
        "workload_params": workload_params(workload),
        "config": config_params(task.config),
        "trace_length": task.trace_length,
        "sample_every": task.sample_every,
        "seed": task.seed,
        "extra_hard_faults": task.extra,
        "obs": obs_params(task.obs),
        "trace_key": trace_key_params(workload, task.trace_length, task.seed),
    }


def _resilience_deps(task: _ResilienceTask) -> tuple[_ResilienceTask, ...]:
    """Faulted runs normalize against the workload's fault-free cell."""
    if task.extra is None:
        return ()
    return (
        _ResilienceTask(
            task.workload,
            task.config,
            task.trace_length,
            task.sample_every,
            task.seed,
            extra=None,
        ),
    )


def run(
    trace_length: int = 40_000,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    extra_fault_counts: tuple[int, ...] = DEFAULT_EXTRA_FAULTS,
    config_label: str = DEFAULT_CONFIG,
    sample_every: int = 64,
    seed: int = 0,
    progress: bool = False,
    obs=None,
    sweep=None,
) -> ResilienceResult:
    """Sweep overhead and consistency against the injected fault count.

    ``sweep`` routes the runs through the store-consulting scheduler
    (:mod:`repro.sched`): each workload's fault-free baseline is a
    dependency wave ahead of its faulted runs, and every completed run
    is persisted immediately.
    """
    tasks = []
    for name in workloads:
        tasks.append(
            _ResilienceTask(
                name, config_label, trace_length, sample_every, seed,
                extra=None,
            )
        )
        for extra in extra_fault_counts:
            tasks.append(
                _ResilienceTask(
                    name, config_label, trace_length, sample_every, seed,
                    extra=extra, obs=obs,
                )
            )
    if sweep is not None:
        outputs = sweep.run_tasks(
            tasks,
            _resilience_cell,
            _resilience_ingredients,
            deps_for=_resilience_deps,
            label_for=lambda t: (
                f"{t.workload} baseline"
                if t.extra is None
                else f"{t.workload} +{t.extra} hard faults"
            ),
            progress=progress,
        )
    else:
        outputs = []
        for task in tasks:
            if progress and task.extra is not None:
                print(
                    f"  {task.workload}: chaos plan +{task.extra} hard faults",
                    flush=True,
                )
            outputs.append(_resilience_cell(task))
    by_task = dict(zip(tasks, outputs))

    points = []
    obs_records = []
    for name in workloads:
        baseline, _ = by_task[
            _ResilienceTask(
                name, config_label, trace_length, sample_every, seed,
                extra=None,
            )
        ]
        baseline_cycles = baseline.overhead.execution_cycles
        for extra in extra_fault_counts:
            result, backoff = by_task[
                _ResilienceTask(
                    name, config_label, trace_length, sample_every, seed,
                    extra=extra, obs=obs,
                )
            ]
            if result.obs is not None:
                obs_records.append(result.obs)
            log = result.degradation_log
            report = result.oracle_report
            assert log is not None and report is not None
            actions = {
                action.value: log.count(action)
                for action in DegradationAction
                if log.count(action)
            }
            points.append(
                ResiliencePoint(
                    workload=name,
                    extra_hard_faults=extra,
                    normalized_time=(
                        result.overhead.execution_cycles / baseline_cycles
                    ),
                    actions=actions,
                    mode_transitions=len(log.mode_transitions),
                    degradation_cycles=log.total_cycle_cost,
                    allocation_backoff_cycles=backoff,
                    oracle_checks=report.checks,
                    oracle_mismatches=report.mismatches,
                )
            )
    return ResilienceResult(
        config=config_label,
        trace_length=trace_length,
        points=points,
        obs_records=tuple(obs_records),
    )


def format_resilience(result: ResilienceResult) -> str:
    """Render the sweep as a table plus a one-line oracle verdict."""
    headers = [
        "workload",
        "+faults",
        "norm. time",
        "degradations",
        "mode changes",
        "degr. cycles",
        "oracle",
    ]
    rows = []
    for p in result.points:
        actions = (
            ", ".join(f"{k}:{v}" for k, v in sorted(p.actions.items()))
            or "none"
        )
        verdict = (
            f"{p.oracle_checks} checks OK"
            if p.consistent
            else f"{p.oracle_mismatches} MISMATCHES"
        )
        rows.append(
            [
                p.workload,
                p.extra_hard_faults,
                f"{p.normalized_time:.4f}",
                actions,
                p.mode_transitions,
                f"{p.degradation_cycles:.0f}",
                verdict,
            ]
        )
    table = format_table(
        headers,
        rows,
        title=(
            f"Resilience under runtime fault injection "
            f"({result.config}, {result.trace_length} refs)"
        ),
    )
    verdict = (
        "translation consistency: every sampled reference matched the "
        "shadow walk"
        if result.all_consistent
        else "translation consistency: MISMATCHES DETECTED (see above)"
    )
    return table + "\n" + verdict
