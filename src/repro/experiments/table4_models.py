"""Table IV cross-check: linear models vs direct simulation.

Section VII predicts each design's walk cycles from native/virtualized
measurements plus BadgerTrap miss classification.  Our simulator can
also run the proposed hardware directly, so this experiment applies the
paper's exact linear models and compares them against the directly-
simulated walk cycles -- validating that the methodology and the
hardware model agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_TRACE_LENGTH, format_table, isa_configs
from repro.experiments.parallel import CellTask, run_cells
from repro.model.counters import model_inputs
from repro.model.linear_model import (
    direct_segment_cycles,
    dual_direct_cycles,
    guest_direct_cycles,
    vmm_direct_cycles,
)

DEFAULT_WORKLOADS = ("graph500", "memcached", "gups")

#: Configurations each workload is measured under (model inputs + the
#: directly-simulated designs the models are checked against).
_CONFIGS = ("4K", "4K+4K", "DD", "4K+VD", "4K+GD", "DS")


@dataclass
class ModelComparison:
    """Model-predicted vs directly-simulated walk cycles for one design."""

    workload: str
    design: str
    predicted_cycles: float
    simulated_cycles: float

    @property
    def relative_error(self) -> float:
        """|predicted - simulated| / max(simulated, 1)."""
        return abs(self.predicted_cycles - self.simulated_cycles) / max(
            self.simulated_cycles, 1.0
        )


@dataclass
class Table4Result:
    """All comparisons."""

    comparisons: list[ModelComparison]
    #: Per-cell observability records (empty unless run with ``obs``).
    obs_records: tuple = ()


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs=None,
    sweep=None,
    isa: str = "x86_64",
) -> Table4Result:
    """Apply Table IV and compare against direct simulation."""
    configs = isa_configs(_CONFIGS, isa)
    label = dict(zip(_CONFIGS, configs))
    tasks = [
        CellTask(
            workload=name,
            config=config,
            trace_length=trace_length,
            seed=seed,
            obs=obs,
        )
        for name in workloads
        for config in configs
    ]
    if sweep is not None:
        results = sweep.run_cells(tasks, jobs=jobs, progress=progress)
    else:
        results = run_cells(tasks, jobs=jobs, progress=progress)
    cells = dict(
        zip(((t.workload, t.config) for t in tasks), results)
    )
    comparisons = []
    for name in workloads:
        native = cells[(name, label["4K"])]
        virt = cells[(name, label["4K+4K"])]
        dd = cells[(name, label["DD"])]
        vd = cells[(name, label["4K+VD"])]
        gd = cells[(name, label["4K+GD"])]
        ds = cells[(name, label["DS"])]

        inputs = model_inputs(native.run, virt.run, dd.run)
        designs = [
            ("Direct Segment", direct_segment_cycles(inputs), ds),
            ("Dual Direct", dual_direct_cycles(inputs), dd),
            ("VMM Direct", vmm_direct_cycles(
                model_inputs(native.run, virt.run, vd.run)
            ), vd),
            ("Guest Direct", guest_direct_cycles(
                model_inputs(native.run, virt.run, gd.run)
            ), gd),
        ]
        for design, predicted, simulated in designs:
            comparisons.append(
                ModelComparison(
                    workload=name,
                    design=design,
                    predicted_cycles=predicted,
                    simulated_cycles=simulated.run.translation_cycles,
                )
            )
    return Table4Result(
        comparisons=comparisons,
        obs_records=tuple(r.obs for r in results if r.obs is not None),
    )


def format_comparison(result: Table4Result) -> str:
    """Render predicted-vs-simulated walk cycles."""
    headers = ["workload", "design", "model (Mcycles)", "simulated (Mcycles)", "rel err"]
    rows = [
        [
            c.workload,
            c.design,
            f"{c.predicted_cycles / 1e6:.3f}",
            f"{c.simulated_cycles / 1e6:.3f}",
            f"{100 * c.relative_error:.1f}%",
        ]
        for c in result.comparisons
    ]
    return format_table(
        headers, rows, title="Table IV linear models vs direct simulation"
    )
