"""Figure 11: virtual memory overhead per big-memory workload.

Regenerates the paper's main result: execution-time overhead of address
translation for every native page-size configuration, the virtualized
page-size grid, and the proposed modes (DS, DD, VMM Direct, Guest
Direct), for the four big-memory workloads of Table V.

Figure 1 (the introduction's preview) is the subset of these bars the
paper uses up front; :mod:`repro.experiments.figure01` slices it out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    RunGrid,
    format_table,
    isa_configs,
    run_grid,
)
from repro.workloads.registry import BIG_MEMORY_WORKLOADS

#: The bar order of Figure 11.
FIGURE11_CONFIGS = (
    "4K",
    "2M",
    "1G",
    "4K+4K",
    "4K+2M",
    "4K+1G",
    "2M+2M",
    "2M+1G",
    "1G+1G",
    "DS",
    "DD",
    "4K+VD",
    "4K+GD",
)

#: Overheads the paper states in its text, for EXPERIMENTS.md comparison.
PAPER_REFERENCE = {
    ("graph500", "4K"): 28.0,
    ("graph500", "4K+4K"): 113.0,
    ("graph500", "4K+2M"): 53.0,
    ("graph500", "2M"): 6.0,
    ("graph500", "2M+2M"): 13.0,
    ("graph500", "1G"): 3.0,
    ("graph500", "1G+1G"): 11.0,
    ("graph500", "2M+1G"): 14.0,
    ("graph500", "4K+VD"): 30.0,
}


@dataclass
class Figure11Result:
    """The full bar chart as a grid of overhead percentages."""

    grid: RunGrid

    def series(self, workload: str) -> list[tuple[str, float]]:
        """(config, overhead%) pairs for one workload's bar group."""
        return [
            (config, self.grid.overhead_percent(workload, config))
            for config in self.grid.configs
        ]


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = BIG_MEMORY_WORKLOADS,
    configs: tuple[str, ...] = FIGURE11_CONFIGS,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs=None,
    sweep=None,
    isa: str = "x86_64",
) -> Figure11Result:
    """Simulate every Figure 11 bar (``jobs`` worker processes).

    ``isa`` re-runs the whole grid over another translation geometry
    (``sv39``/``sv48``/``sv57``); bar labels gain the ISA prefix.
    """
    configs = isa_configs(configs, isa)
    return Figure11Result(
        grid=run_grid(workloads, configs, trace_length=trace_length, seed=seed,
                      progress=progress, jobs=jobs, obs=obs, sweep=sweep)
    )


def format_figure(result: Figure11Result) -> str:
    """Render the figure as a table: rows = configs, columns = workloads."""
    grid = result.grid
    headers = ["config"] + list(grid.workloads)
    rows = []
    for config in grid.configs:
        rows.append(
            [config]
            + [grid.overhead_percent(w, config) for w in grid.workloads]
        )
    return format_table(
        headers,
        rows,
        title="Figure 11: address-translation overhead (%) per big-memory workload",
    )
