"""Shared experiment infrastructure: grids of runs and text tables.

Every experiment module exposes ``run(...) -> <result dataclass>`` plus
a ``format_...`` function that renders the same rows/series the paper
reports.  This module holds the pieces they share: running a
(workload x config) grid and laying out aligned text tables.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.parallel import CellTask, run_cells
from repro.obs.tracing import ObsOptions, RunObservability
from repro.sim.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.sched import Sweep

#: Default measured trace length for experiments (page visits).  Long
#: enough for steady-state TLB statistics at every page size, short
#: enough to keep a full figure under a few minutes.
DEFAULT_TRACE_LENGTH = 80_000


def isa_configs(configs: Iterable[str], isa: str) -> tuple[str, ...]:
    """Prefix every bar label with an ISA, normalizing the default away.

    ``isa_configs(FIGURE11_CONFIGS, "sv48")`` yields ``sv48/4K``,
    ``sv48/DD``, ...; the default x86-64 geometry returns the labels
    untouched (bar names, reports and store keys stay exactly as before
    the ISA axis existed).  Unknown ISA names raise
    :class:`repro.errors.ConfigError` before any cell runs.
    """
    from repro.isa.geometry import DEFAULT_ISA, get_geometry

    geometry = get_geometry(isa)
    if geometry.name == DEFAULT_ISA:
        return tuple(configs)
    return tuple(f"{geometry.name}/{config}" for config in configs)


@dataclass
class RunGrid:
    """Results of a (workload x configuration) sweep."""

    workloads: tuple[str, ...]
    configs: tuple[str, ...]
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)

    def get(self, workload: str, config: str) -> SimulationResult:
        """The run for one cell; KeyError if the sweep skipped it."""
        return self.results[(workload, config)]

    def overhead_percent(self, workload: str, config: str) -> float:
        """Bar height for one cell."""
        return self.get(workload, config).overhead_percent

    def observability(self) -> list[RunObservability]:
        """Per-cell observability records, in grid iteration order.

        Empty unless the sweep ran with an :class:`ObsOptions` attached.
        """
        return [r.obs for r in self.results.values() if r.obs is not None]


def run_grid(
    workloads: Iterable[str],
    configs: Iterable[str],
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs: ObsOptions | None = None,
    sweep: Sweep | None = None,
) -> RunGrid:
    """Simulate every (workload, config) pair.

    ``jobs > 1`` fans the cells out over that many worker processes
    (:mod:`repro.experiments.parallel`); the assembled grid is identical
    to a serial run because every cell is independently seeded and
    results are collected in task order.  ``obs`` attaches a fresh
    observer to every cell (:meth:`RunGrid.observability` collects the
    records).  ``sweep`` routes the cells through the store-consulting
    scheduler (:mod:`repro.sched`) instead -- hits skip simulation,
    misses are persisted -- with the identical assembled grid either
    way.
    """
    workloads = tuple(workloads)
    configs = tuple(configs)
    tasks = [
        CellTask(
            workload=name,
            config=config,
            trace_length=trace_length,
            seed=seed,
            obs=obs,
        )
        for name in workloads
        for config in configs
    ]
    if sweep is not None:
        results = sweep.run_cells(tasks, jobs=jobs, progress=progress)
    else:
        results = run_cells(tasks, jobs=jobs, progress=progress)
    grid = RunGrid(workloads=workloads, configs=configs)
    for task, result in zip(tasks, results):
        grid.results[(task.workload, task.config)] = result
    return grid


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text aligned table (the experiments' printed output)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
