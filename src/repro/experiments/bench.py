"""Simulator throughput bench: refs/sec now vs the recorded baseline.

``python -m repro.experiments bench`` times the two regimes that matter
for sweep wall-clock -- the batched fast path on a hit-dominated stream
(against the scalar loop on the same stream) and an end-to-end
mini-sweep through :func:`repro.sim.simulator.simulate` -- and compares
against the committed baseline in ``benchmarks/BENCH_simulator.json``.

Two kinds of numbers come out:

* **refs/sec** -- absolute throughput; machine-dependent, reported for
  context and refreshed with ``REPRO_BENCH_UPDATE=1``.
* **ratios** (``batched_speedup``; per-metric speedup vs the baseline
  file) -- the batched/scalar ratio is machine-independent enough to
  gate on in CI (see ``benchmarks/test_simulator_throughput.py``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments.common import format_table
from repro.experiments.parallel import CellTask, run_cells
from repro.obs.metrics import MetricsRegistry
from repro.sim import trace_cache
from repro.sim.config import parse_config
from repro.sim.system import build_system, populate_for_addresses
from repro.workloads.registry import create_workload

#: Committed baseline (relative to the repository root); absent when the
#: package is installed outside the repo, in which case no comparison.
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_simulator.json"

#: The end-to-end mini-sweep: one big-memory workload across the config
#: families (native, virtualized, proposed modes).
SWEEP_WORKLOAD = "graph500"
SWEEP_CONFIGS = ("4K", "4K+4K", "2M+2M", "DS", "DD", "4K+VD")

#: Hot pages tiled into the hit-dominated engine microbench stream.
HOT_PAGES = 48

#: References per engine-microbench measurement.  The batched path
#: clears tens of millions of refs/sec, so short streams time in
#: microseconds and jitter dominates; keep the stream long regardless of
#: the sweep's trace length.
ENGINE_REFS = 200_000

#: Timed repetitions per engine measurement; best-of filters scheduler
#: noise (standard microbench practice).
ENGINE_REPEATS = 3


@dataclass
class BenchResult:
    """Measured throughput plus the baseline it is compared against."""

    trace_length: int
    jobs: int
    #: metric name -> measured value (refs/sec, or a ratio).
    metrics: dict[str, float] = field(default_factory=dict)
    #: metric name -> committed baseline value (empty without a file).
    baseline: dict[str, float] = field(default_factory=dict)

    def speedup(self, name: str) -> float | None:
        """measured / baseline for one metric; None without a baseline."""
        base = self.baseline.get(name)
        if not base:
            return None
        return self.metrics[name] / base


def resolve_baseline_path(path: Path | str | None = None) -> Path:
    """Normalize a baseline path to an absolute location.

    ``None`` means the committed file; a relative path is anchored at
    the repository's ``benchmarks/`` directory, **never** the current
    working directory -- ``REPRO_BENCH_UPDATE=1`` from any cwd must
    refresh the committed baseline, not scatter copies around.
    """
    if path is None:
        return BASELINE_PATH
    path = Path(path)
    if not path.is_absolute():
        path = BASELINE_PATH.parent / path
    return path


def load_baseline(path: Path | None = None) -> dict[str, float]:
    """The committed baseline metrics ({} when no file exists)."""
    path = resolve_baseline_path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    return {str(k): float(v) for k, v in data.get("metrics", {}).items()}


def write_baseline(result: BenchResult, path: Path | None = None) -> Path:
    """Record ``result`` as the new committed baseline."""
    path = resolve_baseline_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "note": (
            "Simulator throughput baseline; refresh with "
            "REPRO_BENCH_UPDATE=1 pytest benchmarks/ --benchmark-only "
            "-k baseline (or repro.experiments.bench.write_baseline). "
            "CI gates on the *_speedup/*_ratio metrics only: absolute "
            "refs/sec depends on the machine."
        ),
        "trace_length": result.trace_length,
        "metrics": {k: round(v, 4) for k, v in result.metrics.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _hit_stream(system, length: int) -> np.ndarray:
    """A hit-dominated address stream over ``HOT_PAGES`` resident pages."""
    base_va = system.base_va
    pages = np.arange(HOT_PAGES, dtype=np.int64)
    stream = np.tile(pages, length // HOT_PAGES + 1)[:length]
    return (stream << 12) + base_va


def _engine_throughputs() -> tuple[float, float]:
    """(scalar, batched) refs/sec on identical hit-dominated streams.

    Best of :data:`ENGINE_REPEATS` timed runs each; hits leave TLB
    contents untouched (only recency moves), so repeats see identical
    state and simply re-measure the same work.
    """
    workload = create_workload(SWEEP_WORKLOAD)
    results = []
    for batched in (False, True):
        system = build_system(parse_config("4K+4K"), workload.spec)
        addresses = _hit_stream(system, ENGINE_REFS)
        populate_for_addresses(system, np.unique(addresses))
        system.mmu.access_batch(addresses[: HOT_PAGES * 2])  # warm
        rest = addresses[HOT_PAGES * 2 :]
        rest_list = rest.tolist()
        best = 0.0
        for _ in range(ENGINE_REPEATS):
            start = time.perf_counter()
            if batched:
                system.mmu.access_batch(rest)
            else:
                access = system.mmu.access
                for va in rest_list:
                    access(va)
            elapsed = time.perf_counter() - start
            rate = len(rest) / elapsed if elapsed > 0 else float("inf")
            best = max(best, rate)
        results.append(best)
    return results[0], results[1]


def _obs_disabled_ratio() -> float:
    """Throughput with a disabled metrics registry attached / detached.

    Measures the cost of the observability *hooks* themselves on the
    hit-dominated batched stream: an attached-but-disabled registry must
    stay within noise of no registry at all (the <2% contract asserted
    by ``benchmarks/test_simulator_throughput.py``).  Best-of timing on
    both sides, same stream, same system construction.
    """
    workload = create_workload(SWEEP_WORKLOAD)
    rates = []
    for attach in (False, True):
        system = build_system(parse_config("4K+4K"), workload.spec)
        if attach:
            system.mmu.metrics = MetricsRegistry(enabled=False)
        addresses = _hit_stream(system, ENGINE_REFS)
        populate_for_addresses(system, np.unique(addresses))
        system.mmu.access_batch(addresses[: HOT_PAGES * 2])  # warm
        rest = addresses[HOT_PAGES * 2 :]
        best = 0.0
        for _ in range(ENGINE_REPEATS):
            start = time.perf_counter()
            system.mmu.access_batch(rest)
            elapsed = time.perf_counter() - start
            rate = len(rest) / elapsed if elapsed > 0 else float("inf")
            best = max(best, rate)
        rates.append(best)
    return rates[1] / rates[0] if rates[0] else 0.0


def _sweep_throughput(trace_length: int, jobs: int) -> float:
    """End-to-end simulate() refs/sec over the standard mini-sweep."""
    tasks = [
        CellTask(workload=SWEEP_WORKLOAD, config=config, trace_length=trace_length, seed=0)
        for config in SWEEP_CONFIGS
    ]
    trace_cache.clear()  # charge trace generation to the sweep, once
    start = time.perf_counter()
    run_cells(tasks, jobs=jobs)
    elapsed = time.perf_counter() - start
    total_refs = trace_length * len(tasks)
    return total_refs / elapsed if elapsed > 0 else float("inf")


def run(
    trace_length: int = 20_000,
    jobs: int = 1,
    progress: bool = False,
) -> BenchResult:
    """Measure all bench metrics and attach the committed baseline."""
    if progress:
        print(
            f"  engine microbench ({ENGINE_REFS} refs x {ENGINE_REPEATS}) ...",
            flush=True,
        )
    scalar_rps, batched_rps = _engine_throughputs()
    if progress:
        print("  observability hook overhead (disabled registry) ...", flush=True)
    obs_ratio = _obs_disabled_ratio()
    if progress:
        print(
            f"  sweep: {SWEEP_WORKLOAD} x {len(SWEEP_CONFIGS)} configs "
            f"(jobs={jobs}) ...",
            flush=True,
        )
    sweep_rps = _sweep_throughput(trace_length, jobs)
    result = BenchResult(trace_length=trace_length, jobs=jobs)
    result.metrics = {
        "scalar_hit_refs_per_sec": scalar_rps,
        "batched_hit_refs_per_sec": batched_rps,
        "batched_speedup": batched_rps / scalar_rps if scalar_rps else 0.0,
        "obs_disabled_ratio": obs_ratio,
        "sweep_refs_per_sec": sweep_rps,
    }
    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        # Refresh the committed file at its resolved location -- never a
        # cwd-relative copy -- so `REPRO_BENCH_UPDATE=1 python -m
        # repro.experiments bench` works from any directory.
        path = write_baseline(result)
        if progress:
            print(f"  baseline refreshed at {path}", flush=True)
    result.baseline = load_baseline()
    artifact = write_artifact(result)
    if artifact is not None and progress:
        print(f"  bench artifact recorded at {artifact}", flush=True)
    return result


def write_artifact(
    result: BenchResult, directory: Path | str | None = None
) -> Path | None:
    """Record this run's numbers as a ``BENCH_throughput.json`` artifact.

    CI sets ``REPRO_BENCH_ARTIFACTS_DIR`` and uploads whatever lands
    there; locally the variable is unset and nothing is written.  Unlike
    the committed baseline, artifacts capture absolute refs/sec per run
    for trend tracking, so they are never read back or gated on.
    """
    directory = directory or os.environ.get("REPRO_BENCH_ARTIFACTS_DIR")
    if not directory:
        return None
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_throughput.json"
    payload = {
        "kind": "repro.bench.throughput",
        "trace_length": result.trace_length,
        "jobs": result.jobs,
        "metrics": {k: round(v, 4) for k, v in result.metrics.items()},
        "baseline": {k: round(v, 4) for k, v in result.baseline.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_bench(result: BenchResult) -> str:
    """Render measured metrics beside the committed baseline."""
    headers = ["metric", "measured", "baseline", "vs baseline"]
    rows = []
    for name, value in result.metrics.items():
        base = result.baseline.get(name)
        speedup = result.speedup(name)
        rows.append(
            [
                name,
                f"{value:,.0f}" if value > 100 else f"{value:.2f}",
                (f"{base:,.0f}" if base > 100 else f"{base:.2f}") if base else "-",
                f"{speedup:.2f}x" if speedup is not None else "-",
            ]
        )
    title = (
        f"Simulator throughput bench ({result.trace_length} refs/run, "
        f"jobs={result.jobs})"
    )
    return format_table(headers, rows, title=title)
