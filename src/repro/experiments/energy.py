"""Section IX.B: energy accounting for the translation designs.

Two results per workload:

* **static energy**: Dual Direct's execution-time reduction vs 4K+2M
  (the paper quotes 11-89%) translates ~1:1 into whole-system static
  energy savings;
* **dynamic translation energy**: term (a) L1 probes, term (b) L2
  probes + segment comparators, term (c) walker references, compared
  between the base virtualized design and the new one.  The expectation
  is that the new design's reduction in (c) dominates its small
  increase in (b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_TRACE_LENGTH, format_table
from repro.model.energy import (
    EnergyBreakdown,
    dynamic_energy,
    static_energy_saving,
)
from repro.sim.simulator import SimulationResult, simulate
from repro.workloads.registry import BIG_MEMORY_WORKLOADS, create_workload


@dataclass
class EnergyRow:
    """Energy comparison for one workload."""

    workload: str
    static_saving_dd_vs_4k2m: float
    base_dynamic: EnergyBreakdown
    dd_dynamic: EnergyBreakdown

    @property
    def dynamic_saving(self) -> float:
        """Fractional dynamic translation-energy saving of Dual Direct."""
        if self.base_dynamic.total <= 0:
            return 0.0
        return 1.0 - self.dd_dynamic.total / self.base_dynamic.total


@dataclass
class EnergyResult:
    """All workloads."""

    rows: list[EnergyRow]


def _breakdown(result: SimulationResult, segment_checked: bool) -> EnergyBreakdown:
    c = result.counters
    # L2 probes: regular L1 misses that consulted L2 (Dual Direct's fast
    # path skips it) plus nested lookups folded into walk refs already.
    l2_probes = c.l1_misses - c.dual_direct_hits
    return dynamic_energy(
        accesses=c.accesses,
        l1_misses=c.l1_misses,
        segment_checked_misses=c.l1_misses if segment_checked else 0,
        l2_probes=l2_probes,
        walk_refs=c.walk_refs,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = BIG_MEMORY_WORKLOADS,
    seed: int = 0,
    progress: bool = False,
) -> EnergyResult:
    """Measure both energy effects per workload."""
    rows = []
    for name in workloads:
        if progress:
            print(f"  energy accounting for {name} ...", flush=True)
        base = simulate("4K+2M", create_workload(name), trace_length, seed=seed)
        dd = simulate("DD", create_workload(name), trace_length, seed=seed)
        rows.append(
            EnergyRow(
                workload=name,
                static_saving_dd_vs_4k2m=static_energy_saving(
                    base.overhead.execution_cycles, dd.overhead.execution_cycles
                ),
                base_dynamic=_breakdown(base, segment_checked=False),
                dd_dynamic=_breakdown(dd, segment_checked=True),
            )
        )
    return EnergyResult(rows=rows)


def format_energy(result: EnergyResult) -> str:
    """Render static and dynamic comparisons."""
    headers = [
        "workload",
        "static saving (DD vs 4K+2M)",
        "dyn energy base",
        "dyn energy DD",
        "dyn saving",
    ]
    rows = [
        [
            r.workload,
            f"{100 * r.static_saving_dd_vs_4k2m:.1f}%",
            f"{r.base_dynamic.total / 1e6:.2f}M",
            f"{r.dd_dynamic.total / 1e6:.2f}M",
            f"{100 * r.dynamic_saving:.1f}%",
        ]
        for r in result.rows
    ]
    return format_table(headers, rows, title="Section IX.B energy accounting")
