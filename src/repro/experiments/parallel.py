"""Process-parallel execution of experiment sweeps.

A figure sweep is dozens of independent (workload, configuration) cells;
each cell builds its own system and trace, shares nothing mutable with
the others, and produces one picklable :class:`SimulationResult`.  This
module fans those cells out over a ``multiprocessing`` pool:

* **Task descriptors, not closures** -- cells are described by the
  frozen, picklable :class:`CellTask`, and trials by whatever small
  dataclass the experiment defines; the worker function is a module-level
  callable, so every start method (fork, spawn) can ship the work.
* **Deterministic ordering** -- results come back in task-submission
  order (``Pool.map``), so a parallel sweep assembles the exact same
  grid -- and serializes to the exact same report -- as a serial one.
  Cells are seeded explicitly; nothing depends on completion order.
* **Graceful serial fallback** -- ``jobs <= 1`` (the default everywhere)
  never touches multiprocessing: the same loop that always ran, runs.
* **Trace sharing** -- the parent pre-warms :mod:`repro.sim.trace_cache`
  before forking, so on fork-based platforms workers inherit the trace
  arrays copy-on-write instead of regenerating them per process.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TypeVar

from repro.errors import ConfigError
from repro.obs.tracing import ObsOptions
from repro.sim import trace_cache
from repro.sim.config import parse_config
from repro.sim.simulator import SimulationResult, simulate
from repro.workloads.registry import create_workload

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class CellTask:
    """One (workload, config) simulation, fully described by values.

    Every field is a plain picklable value -- the worker reconstructs
    the workload and system from them, so the parent never ships live
    simulator state across the process boundary.
    """

    workload: str
    config: str
    trace_length: int | None
    seed: int
    #: Observability request; None keeps the cell unobserved (the frozen
    #: options are picklable, so workers build their own observers).
    obs: ObsOptions | None = None


def run_cell(task: CellTask) -> SimulationResult:
    """Execute one grid cell (runs in a worker process or inline)."""
    workload = create_workload(task.workload)
    observer = task.obs.make_observer() if task.obs is not None else None
    return simulate(
        task.config,
        workload,
        trace_length=task.trace_length,
        seed=task.seed,
        observer=observer,
    )


def prewarm_traces(tasks: Sequence[CellTask]) -> None:
    """Generate each distinct trace once in the parent process."""
    seen: set[tuple[str, int | None, int, str]] = set()
    for task in tasks:
        isa = parse_config(task.config).isa_name()
        key = (task.workload, task.trace_length, task.seed, isa)
        if key in seen:
            continue
        seen.add(key)
        trace_cache.get_trace(
            create_workload(task.workload), task.trace_length, task.seed, isa=isa
        )


def run_cells(
    tasks: Iterable[CellTask],
    jobs: int = 1,
    progress: bool = False,
) -> list[SimulationResult]:
    """Run every cell, serially or across ``jobs`` worker processes.

    Results are returned in task order regardless of ``jobs``, so
    callers assemble identical grids either way.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            if progress:
                print(f"  running {task.workload} / {task.config} ...", flush=True)
            results.append(run_cell(task))
        return results
    if progress:
        print(
            f"  dispatching {len(tasks)} cells across {jobs} workers ...",
            flush=True,
        )
    return parallel_map(run_cell, tasks, jobs=jobs, prewarm=lambda: prewarm_traces(tasks))


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    prewarm: Callable[[], None] | None = None,
) -> list[R]:
    """``[func(item) for item in items]``, optionally across processes.

    ``func`` must be a module-level callable and ``items`` picklable
    values (spawn-safe); with ``jobs <= 1`` neither restriction applies
    because everything runs inline.  ``prewarm`` runs in the parent just
    before the pool is forked (e.g. to populate caches workers inherit).
    Output order always matches input order.
    """
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    if prewarm is not None:
        prewarm()
    workers = min(jobs, len(items))
    with multiprocessing.get_context().Pool(processes=workers) as pool:
        # chunksize=1: cells are coarse (seconds each), so favour load
        # balance over dispatch overhead.
        return pool.map(func, items, chunksize=1)
