"""Section IX.D: shadow paging vs the proposed design.

Shadow paging removes the 2D walk (TLB misses cost a native 1D walk of
the shadow table) but pays a VM exit for every guest page-table update
to keep the shadow coherent.  The paper finds two workload categories:

1. allocation-heavy workloads where coherence traffic dominates
   (memcached 29.2% slowdown at 4K, GemsFDTD 12.2%, omnetpp 8.7%,
   canneal 6.63%);
2. statically-allocated workloads where shadow paging is cheap (<5%).

VMM Direct, by contrast, lets guest page-table updates proceed without
VMM intervention: its slowdown vs native is bounded by its (near-native)
walk costs for *all* workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.experiments.common import DEFAULT_TRACE_LENGTH, format_table
from repro.sim.simulator import simulate
from repro.vmm.shadow import shadow_slowdown_fraction
from repro.workloads.registry import ALL_WORKLOADS, create_workload

#: The paper's reported shadow-paging slowdowns (percent) for its first
#: category, for EXPERIMENTS.md comparison.
PAPER_REFERENCE_4K = {
    "memcached": 29.2,
    "gemsfdtd": 12.2,
    "omnetpp": 8.7,
    "canneal": 6.63,
}


@dataclass
class ShadowComparison:
    """Shadow-paging vs VMM Direct slowdown for one workload."""

    workload: str
    shadow_slowdown_4k: float  # fraction of native execution time
    shadow_slowdown_2m: float
    vmm_direct_slowdown: float

    @property
    def shadow_category(self) -> int:
        """1 = coherence-bound (>5% at 4K), 2 = cheap (Section IX.D)."""
        return 1 if self.shadow_slowdown_4k > 0.05 else 2


@dataclass
class ShadowResult:
    """All workloads' comparisons."""

    rows: list[ShadowComparison]


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    progress: bool = False,
) -> ShadowResult:
    """Measure shadow slowdowns (coherence model) and VMM Direct.

    Shadow-paging TLB misses cost native walks, so its *translation*
    side matches native; the slowdown is the coherence traffic, modelled
    from each workload's page-table update rate.  VMM Direct's slowdown
    is measured by direct simulation against the native run.
    """
    rows = []
    for name in workloads:
        if progress:
            print(f"  shadow comparison for {name} ...", flush=True)
        spec = create_workload(name).spec
        shadow_4k = shadow_slowdown_fraction(
            spec.pt_updates_per_mref, spec.ideal_cycles_per_ref, costs
        )
        shadow_2m = shadow_slowdown_fraction(
            spec.pt_updates_per_mref * spec.pt_update_2m_factor,
            spec.ideal_cycles_per_ref,
            costs,
        )
        native = simulate("4K", create_workload(name), trace_length, seed=seed)
        vd = simulate("4K+VD", create_workload(name), trace_length, seed=seed)
        vd_slowdown = (
            vd.overhead.execution_cycles / native.overhead.execution_cycles - 1.0
        )
        rows.append(
            ShadowComparison(
                workload=name,
                shadow_slowdown_4k=shadow_4k,
                shadow_slowdown_2m=shadow_2m,
                vmm_direct_slowdown=vd_slowdown,
            )
        )
    return ShadowResult(rows=rows)


def format_comparison(result: ShadowResult) -> str:
    """Render the two-category comparison."""
    headers = [
        "workload",
        "shadow 4K",
        "shadow 2M",
        "VMM Direct",
        "category",
    ]
    rows = [
        [
            r.workload,
            f"{100 * r.shadow_slowdown_4k:.1f}%",
            f"{100 * r.shadow_slowdown_2m:.1f}%",
            f"{100 * r.vmm_direct_slowdown:+.1f}%",
            r.shadow_category,
        ]
        for r in result.rows
    ]
    return format_table(
        headers,
        rows,
        title="Section IX.D: slowdown vs native, shadow paging vs VMM Direct",
    )
