"""Figure 13: escape-filter resilience to bad pages.

Section IX.C: inject 1..16 hard-faulted host pages into the region the
VMM segment occupies, escape them through the 256-bit/4-hash filter,
and measure normalized execution time in Dual Direct mode across many
random fault sets (the paper uses 30), with 95% confidence intervals.
Escaped pages -- and the filter's false positives -- fall back to
nested paging, so the overhead should stay almost zero (<0.06%, GUPS
0.5%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.address import BASE_PAGE_SIZE
from repro.experiments.common import format_table, isa_configs
from repro.experiments.parallel import parallel_map
from repro.mem.badpages import BadPageList
from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system
from repro.workloads.registry import create_workload

DEFAULT_WORKLOADS = ("graph500", "memcached", "gups")
DEFAULT_BAD_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class EscapeFilterPoint:
    """One (workload, #bad pages) point of Figure 13."""

    workload: str
    num_bad_pages: int
    #: Normalized execution time per trial (1.0 = no bad pages).
    samples: list[float]

    @property
    def mean(self) -> float:
        """Mean normalized execution time."""
        return sum(self.samples) / len(self.samples)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        return 1.96 * math.sqrt(var / n)


@dataclass
class Figure13Result:
    """All points of the figure."""

    points: list[EscapeFilterPoint]

    def point(self, workload: str, num_bad: int) -> EscapeFilterPoint:
        """Lookup one point."""
        for p in self.points:
            if p.workload == workload and p.num_bad_pages == num_bad:
                return p
        raise KeyError((workload, num_bad))


def _dd_label(isa: str) -> str:
    """The Dual Direct bar label under one ISA ('DD', 'sv48/DD', ...)."""
    return isa_configs(("DD",), isa)[0]


def _segment_host_frames(workload_name: str, isa: str = "x86_64") -> range:
    """Host frame range the VMM segment occupies (deterministic)."""
    workload = create_workload(workload_name)
    system = build_system(parse_config(_dd_label(isa)), workload.spec)
    segment = system.vm.vmm_segment  # type: ignore[union-attr]
    start = (segment.base + segment.offset) // BASE_PAGE_SIZE
    return range(start, start + segment.size // BASE_PAGE_SIZE)


def _dd_execution_cycles(
    workload_name: str,
    trace_length: int,
    bad_pages: BadPageList | None,
    seed: int,
    isa: str = "x86_64",
) -> float:
    workload = create_workload(workload_name)
    system = build_system(
        parse_config(_dd_label(isa)), workload.spec, bad_pages=bad_pages
    )
    trace = workload.trace(trace_length, seed=seed)
    result = run_trace(
        system,
        trace,
        workload.spec.ideal_cycles_per_ref,
        workload_name=workload_name,
        refs_per_entry=workload.spec.refs_per_entry,
    )
    return result.overhead.execution_cycles


@dataclass(frozen=True)
class _TrialTask:
    """One Dual Direct run: picklable description of a figure-13 trial.

    ``num_bad == 0`` is the workload's no-fault baseline; otherwise the
    bad-page set is regenerated in the worker from the deterministic
    seed, so parallel and serial runs sample identical fault sets.
    """

    workload: str
    trace_length: int
    num_bad: int
    trial: int
    isa: str = "x86_64"


def _trial_cycles(task: _TrialTask) -> float:
    """Execution cycles for one trial (module-level: pool-callable)."""
    bad = None
    if task.num_bad:
        frames = _segment_host_frames(task.workload, task.isa)
        bad = BadPageList.random(
            task.num_bad, frames, seed=task.num_bad * 1000 + task.trial
        )
    return _dd_execution_cycles(
        task.workload, task.trace_length, bad, seed=0, isa=task.isa
    )


def _trial_ingredients(task: _TrialTask) -> dict:
    """Store-key ingredients for one trial cell (see repro.store.keys)."""
    from repro.store.keys import (
        config_params,
        trace_key_params,
        workload_params,
    )

    workload = create_workload(task.workload)
    return {
        "kind": "figure13-trial",
        "workload": task.workload,
        "workload_params": workload_params(workload),
        "config": config_params(_dd_label(task.isa)),
        "trace_length": task.trace_length,
        "num_bad": task.num_bad,
        "trial": task.trial,
        "bad_seed": task.num_bad * 1000 + task.trial if task.num_bad else None,
        "seed": 0,
        "trace_key": trace_key_params(workload, task.trace_length, 0, task.isa),
    }


def _trial_deps(task: _TrialTask) -> tuple[_TrialTask, ...]:
    """A faulted trial normalizes against its workload's baseline cell."""
    if task.num_bad == 0:
        return ()
    return (
        _TrialTask(
            task.workload, task.trace_length, num_bad=0, trial=0, isa=task.isa
        ),
    )


def run(
    trace_length: int = 40_000,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    bad_counts: tuple[int, ...] = DEFAULT_BAD_COUNTS,
    trials: int = 10,
    progress: bool = False,
    jobs: int = 1,
    sweep=None,
    isa: str = "x86_64",
) -> Figure13Result:
    """Measure the figure; ``trials=30`` matches the paper exactly.

    Every (baseline + trial) run is independent, so with ``jobs > 1``
    they all fan out over one worker pool; results are assembled in
    task order and match a serial run exactly.  ``sweep`` routes the
    trials through the store-consulting scheduler: each workload's
    fault-free baseline is a dependency wave ahead of its trials.
    """
    from repro.isa.geometry import get_geometry

    isa = get_geometry(isa).name
    tasks = []
    for name in workloads:
        tasks.append(_TrialTask(name, trace_length, num_bad=0, trial=0, isa=isa))
        for num_bad in bad_counts:
            if progress:
                print(f"  {name}: {num_bad} bad pages x {trials} trials", flush=True)
            for trial in range(trials):
                tasks.append(_TrialTask(name, trace_length, num_bad, trial, isa=isa))
    if sweep is not None:
        samples = sweep.run_tasks(
            tasks,
            _trial_cycles,
            _trial_ingredients,
            deps_for=_trial_deps,
            label_for=lambda t: f"{t.workload} +{t.num_bad} bad #{t.trial}",
            jobs=jobs,
            progress=progress,
        )
    else:
        samples = parallel_map(_trial_cycles, tasks, jobs=jobs)
    cycles = dict(zip(tasks, samples))

    points = []
    for name in workloads:
        baseline = cycles[
            _TrialTask(name, trace_length, num_bad=0, trial=0, isa=isa)
        ]
        for num_bad in bad_counts:
            samples = [
                cycles[_TrialTask(name, trace_length, num_bad, trial, isa=isa)]
                / baseline
                for trial in range(trials)
            ]
            points.append(
                EscapeFilterPoint(
                    workload=name, num_bad_pages=num_bad, samples=samples
                )
            )
    return Figure13Result(points=points)


def format_figure(result: Figure13Result) -> str:
    """Render normalized execution time (mean +/- 95% CI)."""
    headers = ["workload", "#bad pages", "normalized time", "95% CI"]
    rows = [
        [
            p.workload,
            p.num_bad_pages,
            f"{p.mean:.5f}",
            f"+/-{p.ci95:.5f}",
        ]
        for p in result.points
    ]
    return format_table(
        headers,
        rows,
        title="Figure 13: normalized execution time with bad pages (Dual Direct)",
    )
