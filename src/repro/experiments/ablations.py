"""Ablation studies on the design choices DESIGN.md calls out.

Four sensitivity sweeps around the paper's design points:

1. **Escape-filter geometry** (Section V chose 256 bits / 4 hashes for
   16 tolerated faults): sweep total bits and measure the
   false-positive rate, the quantity that turns into spurious paging.
2. **Nested-TLB placement** (Table VI's testbed shares the L2 TLB with
   nested entries): give the nested dimension a dedicated structure
   and show the virtualized miss inflation disappear -- evidence that
   capacity sharing, not the 2D walk itself, causes the extra misses.
3. **Base-bound check cost** (Section VII assumes Delta = 1 cycle per
   check): sweep the per-check cost and watch VMM Direct's advantage
   persist until checks become implausibly expensive.
4. **Page-walk-cache size** (the MMU caches the paper credits with
   absorbing part of the overhead, Section IX.A): sweep PWC entries
   and measure Cv.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.core.costs import CostModel
from repro.core.escape_filter import EscapeFilter
from repro.experiments.common import format_table
from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system
from repro.tlb.pwc import NestedTLB, PageWalkCache
from repro.workloads.registry import create_workload


# ----------------------------------------------------------------------
# 1. Escape-filter geometry


@dataclass
class FilterGeometryPoint:
    """FP rate of one filter size at the paper's 16-fault design point."""

    total_bits: int
    num_hashes: int
    false_positive_rate: float


def sweep_filter_geometry(
    bits_options: tuple[int, ...] = (64, 128, 256, 512, 1024),
    num_hashes: int = 4,
    inserted_pages: int = 16,
    probe_pages: int = 200_000,
    seed: int = 0,
) -> list[FilterGeometryPoint]:
    """FP rate vs filter size with 16 escaped pages (Section V)."""
    rng = random.Random(seed)
    pages = rng.sample(range(1 << 30), inserted_pages)
    points = []
    for bits in bits_options:
        f = EscapeFilter(total_bits=bits, num_hashes=num_hashes)
        for p in pages:
            f.insert(p)
        points.append(
            FilterGeometryPoint(
                total_bits=bits,
                num_hashes=num_hashes,
                false_positive_rate=f.false_positive_rate(range(probe_pages)),
            )
        )
    return points


def format_filter_geometry(points: list[FilterGeometryPoint]) -> str:
    """Render the filter sweep."""
    return format_table(
        ["filter bits", "hashes", "FP rate"],
        [[p.total_bits, p.num_hashes, f"{100 * p.false_positive_rate:.4f}%"] for p in points],
        title="Ablation 1: escape-filter geometry at 16 escaped pages",
    )


# ----------------------------------------------------------------------
# 2. Dedicated nested TLB vs shared L2


@dataclass
class NestedTlbComparison:
    """Miss inflation with shared vs dedicated nested structures."""

    workload: str
    native_walks: int
    shared_walks: int
    dedicated_walks: int

    @property
    def shared_inflation(self) -> float:
        """Walks with nested entries sharing the L2 (the testbed)."""
        return self.shared_walks / self.native_walks if self.native_walks else 1.0

    @property
    def dedicated_inflation(self) -> float:
        """Walks with a dedicated nested TLB (no capacity sharing)."""
        return self.dedicated_walks / self.native_walks if self.native_walks else 1.0


def sweep_nested_tlb(
    workloads: tuple[str, ...] = ("memcached", "canneal"),
    trace_length: int = 40_000,
    dedicated_entries: int = 512,
    seed: int = 0,
) -> list[NestedTlbComparison]:
    """Compare miss counts with and without nested/L2 sharing."""
    rows = []
    for name in workloads:
        workload = create_workload(name)
        trace = workload.trace(trace_length, seed=seed)

        native = build_system(parse_config("4K"), workload.spec)
        shared = build_system(parse_config("4K+4K"), workload.spec)
        dedicated = build_system(parse_config("4K+4K"), workload.spec)
        dedicated.mmu.walker.dedicated_nested_tlb = NestedTLB(
            entries=dedicated_entries, ways=4
        )

        results = [
            run_trace(
                system,
                trace,
                workload.spec.ideal_cycles_per_ref,
                refs_per_entry=workload.spec.refs_per_entry,
            )
            for system in (native, shared, dedicated)
        ]
        rows.append(
            NestedTlbComparison(
                workload=name,
                native_walks=results[0].run.walks,
                shared_walks=results[1].run.walks,
                dedicated_walks=results[2].run.walks,
            )
        )
    return rows


def format_nested_tlb(rows: list[NestedTlbComparison]) -> str:
    """Render the sharing ablation."""
    return format_table(
        ["workload", "shared-L2 inflation", "dedicated-NTLB inflation"],
        [
            [r.workload, f"{r.shared_inflation:.2f}x", f"{r.dedicated_inflation:.2f}x"]
            for r in rows
        ],
        title="Ablation 2: nested entries sharing the L2 TLB vs a dedicated NTLB",
    )


# ----------------------------------------------------------------------
# 3. Base-bound check cost


@dataclass
class CheckCostPoint:
    """VMM Direct overhead under one per-check cost assumption."""

    check_cycles: int
    vd_overhead_percent: float
    base_overhead_percent: float


def sweep_check_cost(
    workload_name: str = "graph500",
    check_cycles_options: tuple[int, ...] = (0, 1, 2, 5, 10, 25),
    trace_length: int = 30_000,
    seed: int = 0,
) -> list[CheckCostPoint]:
    """Does VMM Direct survive pessimistic Delta assumptions?"""
    workload = create_workload(workload_name)
    trace = workload.trace(trace_length, seed=seed)
    base = build_system(parse_config("4K+4K"), workload.spec)
    base_result = run_trace(
        base,
        trace,
        workload.spec.ideal_cycles_per_ref,
        refs_per_entry=workload.spec.refs_per_entry,
    )
    points = []
    for cycles in check_cycles_options:
        costs = replace(CostModel(), base_bound_check_cycles=cycles)
        system = build_system(parse_config("4K+VD"), workload.spec, costs=costs)
        result = run_trace(
            system,
            trace,
            workload.spec.ideal_cycles_per_ref,
            refs_per_entry=workload.spec.refs_per_entry,
        )
        points.append(
            CheckCostPoint(
                check_cycles=cycles,
                vd_overhead_percent=result.overhead_percent,
                base_overhead_percent=base_result.overhead_percent,
            )
        )
    return points


def format_check_cost(points: list[CheckCostPoint]) -> str:
    """Render the Delta sweep."""
    return format_table(
        ["cycles/check", "4K+VD overhead", "4K+4K overhead"],
        [
            [p.check_cycles, f"{p.vd_overhead_percent:.1f}%", f"{p.base_overhead_percent:.1f}%"]
            for p in points
        ],
        title="Ablation 3: base-bound check cost (the paper assumes 1 cycle)",
    )


# ----------------------------------------------------------------------
# 4. Page-walk-cache size


@dataclass
class PwcPoint:
    """Virtualized per-walk cost under one PWC size."""

    pwc_entries: int
    cycles_per_walk: float


def sweep_pwc_size(
    workload_name: str = "graph500",
    entries_options: tuple[int, ...] = (4, 16, 32, 128),
    trace_length: int = 30_000,
    seed: int = 0,
) -> list[PwcPoint]:
    """Cv sensitivity to the paging-structure caches (Section IX.A)."""
    workload = create_workload(workload_name)
    trace = workload.trace(trace_length, seed=seed)
    points = []
    for entries in entries_options:
        system = build_system(parse_config("4K+4K"), workload.spec)
        walker = system.mmu.walker
        walker.guest_pwc = PageWalkCache(entries=entries, ways=4)
        walker.nested_pwc = PageWalkCache(entries=entries, ways=4)
        result = run_trace(
            system,
            trace,
            workload.spec.ideal_cycles_per_ref,
            refs_per_entry=workload.spec.refs_per_entry,
        )
        points.append(
            PwcPoint(pwc_entries=entries, cycles_per_walk=result.run.cycles_per_walk)
        )
    return points


def format_pwc_size(points: list[PwcPoint]) -> str:
    """Render the PWC sweep."""
    return format_table(
        ["PWC entries", "Cv (cycles/walk)"],
        [[p.pwc_entries, f"{p.cycles_per_walk:.1f}"] for p in points],
        title="Ablation 4: page-walk-cache size vs virtualized walk cost",
    )
