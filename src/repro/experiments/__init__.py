"""One module per paper figure/table; CLI via python -m repro.experiments."""
