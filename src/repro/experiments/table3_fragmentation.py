"""Table III: mode selection and repair under fragmentation.

Executes every Table III scenario end-to-end on live data structures:
fragment the host and/or guest physical memory, apply the planned
techniques (self-ballooning, compaction), and record the mode the VM
starts in, whether segments could be created, and how much compaction
work the upgrade to the final mode took.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.address import GIB, MIB
from repro.core.modes import TranslationMode
from repro.experiments.common import format_table
from repro.guest.guest_os import GuestOS, GuestOSConfig
from repro.mem.physical_layout import IO_GAP_END
from repro.core.address import AddressRange
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.policy import (
    FragmentationManager,
    FragmentationState,
    WorkloadClass,
    plan_modes,
)

#: Scenario sizes (small: the policy machinery, not TLB statistics, is
#: under test here).
HOST_BYTES = 6 * GIB
GUEST_BYTES = 4 * GIB
PRIMARY_BYTES = 512 * MIB

#: Fragmentation granularity: holding order-2..4 blocks (16-64 KB)
#: shatters contiguity just as thoroughly for multi-hundred-MB segment
#: goals while keeping the block count (and thus set-up time) modest.
FRAGMENT_ORDERS = (2, 3, 4)


@dataclass
class ScenarioOutcome:
    """One Table III row, executed."""

    workload_class: WorkloadClass
    state: FragmentationState
    initial_mode: TranslationMode
    final_mode: TranslationMode
    used_self_ballooning: bool
    compaction_pages_moved: int
    ticks_to_upgrade: int
    reached_final_mode: bool


@dataclass
class Table3Result:
    """All six scenarios."""

    outcomes: list[ScenarioOutcome]


SCENARIOS = [
    (WorkloadClass.BIG_MEMORY, FragmentationState(host_fragmented=True)),
    (WorkloadClass.BIG_MEMORY, FragmentationState(guest_fragmented=True)),
    (
        WorkloadClass.BIG_MEMORY,
        FragmentationState(host_fragmented=True, guest_fragmented=True),
    ),
    (WorkloadClass.COMPUTE, FragmentationState(host_fragmented=True)),
    (WorkloadClass.COMPUTE, FragmentationState(guest_fragmented=True)),
    (
        WorkloadClass.COMPUTE,
        FragmentationState(host_fragmented=True, guest_fragmented=True),
    ),
]


def _run_scenario(
    workload_class: WorkloadClass,
    state: FragmentationState,
    max_ticks: int = 2000,
    seed: int = 0,
) -> ScenarioOutcome:
    hypervisor = Hypervisor(host_memory_bytes=HOST_BYTES)
    if state.host_fragmented:
        hypervisor.allocator.fragment(
            0.45, rng=random.Random(seed), hold_orders=FRAGMENT_ORDERS
        )
    reserve = PRIMARY_BYTES if state.guest_fragmented else 0
    vm = hypervisor.create_vm(
        "vm0", memory_bytes=GUEST_BYTES, reserve_bytes=reserve
    )
    guest_os = GuestOS(
        vm.guest_layout,
        GuestOSConfig(pt_pool_bytes=16 * MIB),
        pt_pool_hint=AddressRange(IO_GAP_END, IO_GAP_END + GUEST_BYTES),
    )
    process = guest_os.spawn()
    process.mmap(PRIMARY_BYTES, is_primary_region=True)
    if state.guest_fragmented:
        guest_os.allocator.fragment(
            0.55, rng=random.Random(seed + 1), hold_orders=FRAGMENT_ORDERS
        )

    plan = plan_modes(workload_class, state)
    manager = FragmentationManager(vm, guest_os, process, plan)
    manager.prepare_guest()
    initial_mode = vm.mode
    ticks = 0
    while not manager.at_final_mode and ticks < max_ticks:
        manager.tick(page_budget=8192)
        ticks += 1
    moved = (
        manager._compactor.stats.pages_moved if manager._compactor else 0
    )  # noqa: SLF001 - experiment introspection
    return ScenarioOutcome(
        workload_class=workload_class,
        state=state,
        initial_mode=initial_mode,
        final_mode=vm.mode,
        used_self_ballooning=plan.uses_self_ballooning,
        compaction_pages_moved=moved,
        ticks_to_upgrade=ticks,
        reached_final_mode=manager.at_final_mode,
    )


def run(seed: int = 0, progress: bool = False) -> Table3Result:
    """Execute all six fragmentation scenarios."""
    outcomes = []
    for workload_class, state in SCENARIOS:
        if progress:
            print(
                f"  scenario: {workload_class.value}, host_frag="
                f"{state.host_fragmented}, guest_frag={state.guest_fragmented}",
                flush=True,
            )
        outcomes.append(_run_scenario(workload_class, state, seed=seed))
    return Table3Result(outcomes=outcomes)


def format_scenarios(result: Table3Result) -> str:
    """Render the executed Table III."""
    headers = [
        "class",
        "host frag",
        "guest frag",
        "initial mode",
        "final mode",
        "self-balloon",
        "pages moved",
        "converged",
    ]
    rows = [
        [
            o.workload_class.value,
            o.state.host_fragmented,
            o.state.guest_fragmented,
            o.initial_mode.value,
            o.final_mode.value,
            o.used_self_ballooning,
            o.compaction_pages_moved,
            o.reached_final_mode,
        ]
        for o in result.outcomes
    ]
    return format_table(headers, rows, title="Table III scenarios, executed")
