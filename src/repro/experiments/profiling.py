"""``experiments profile``: cycle-accounting profile of one cell.

Runs one (workload, config) simulation cell with the
:class:`~repro.obs.profiler.WalkProfiler` attached and renders the
attribution books three ways:

* a terminal report (attribution table, hot pages, hot 2 MB regions);
* ``--folded FILE`` -- folded stacks for ``flamegraph.pl`` / speedscope;
* ``--html FILE`` -- a self-contained single-file HTML report.

The profiler mirrors the MMU's cycle accounting in exact fixed-point,
so the report's per-axis cycles sum to the run's modelled translation
cycles to the last bit, and attaching it leaves every simulation
counter bit-identical to an unprofiled run.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.profiler import from_fixed, to_fixed
from repro.obs.report import render_folded, render_html, render_text
from repro.obs.tracing import ObsOptions
from repro.sim.config import parse_config
from repro.sim.simulator import simulate
from repro.workloads.registry import create_workload, workload_names

#: Trace length used by ``--smoke`` (CI sanity runs).
SMOKE_TRACE_LENGTH = 6_000


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments profile``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments profile",
        description="Profile one simulation cell's page-walk cycles.",
    )
    parser.add_argument(
        "--workload",
        default="gups",
        choices=sorted(workload_names()),
        help="workload to profile (default gups)",
    )
    parser.add_argument(
        "--config",
        default="4K+4K",
        help="system configuration label (default 4K+4K)",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=80_000,
        help="measured page visits (default 80000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="K",
        help="rows per ranked table in the text report (default 20)",
    )
    parser.add_argument(
        "--folded",
        type=Path,
        default=None,
        metavar="FILE",
        help="write folded stacks (flamegraph.pl / speedscope input)",
    )
    parser.add_argument(
        "--html",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a self-contained HTML report",
    )
    parser.add_argument(
        "--per-page",
        action="store_true",
        help="full hot-page table plus sampled walk records",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"minimal trace ({SMOKE_TRACE_LENGTH} visits) for CI checks",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw profile snapshot as JSON instead of the report",
    )
    args = parser.parse_args(argv)
    try:
        parse_config(args.config)
    except ConfigError as exc:
        parser.error(str(exc))
    length = SMOKE_TRACE_LENGTH if args.smoke else args.trace_length

    workload = create_workload(args.workload)
    observer = ObsOptions(interval=None, profile=True).make_observer()
    result = simulate(
        args.config, workload, trace_length=length, seed=args.seed, observer=observer
    )
    profile = result.profile
    assert profile is not None  # profile=True guarantees a snapshot

    if args.json:
        print(json.dumps(profile, sort_keys=True))
    else:
        title = f"{args.workload} under {args.config}"
        print(f"=== profile: {title} ===")
        print(render_text(profile, top=args.top, per_page=args.per_page))
        attributed = from_fixed(profile["total_cycles_fp"])
        modelled = result.counters.translation_cycles
        exact = profile["total_cycles_fp"] == to_fixed(modelled)
        print(
            f"\nconservation: {attributed:,.1f} attributed == "
            f"{modelled:,.1f} modelled "
            f"({'exact' if exact else 'MISMATCH'})"
        )
    if args.folded is not None:
        args.folded.parent.mkdir(parents=True, exist_ok=True)
        args.folded.write_text(render_folded(profile))
        print(f"wrote folded stacks: {args.folded}")
    if args.html is not None:
        args.html.parent.mkdir(parents=True, exist_ok=True)
        args.html.write_text(
            render_html(profile, title=f"{args.workload} under {args.config}")
        )
        print(f"wrote HTML report: {args.html}")
    return 0
