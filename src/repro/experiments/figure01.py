"""Figure 1: the introduction's overhead preview.

A slice of Figure 11: native 4K, the virtualized 4K-guest grid, and the
two headline proposed modes (DD and 4K+VD) for a few representative
workloads -- the paper's "virtualization multiplies translation
overhead, our design removes it" opening shot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    RunGrid,
    format_table,
    isa_configs,
    run_grid,
)

PREVIEW_WORKLOADS = ("graph500", "memcached", "gups")
PREVIEW_CONFIGS = ("4K", "4K+4K", "4K+2M", "4K+1G", "DD", "4K+VD")


@dataclass
class Figure01Result:
    """The preview bars."""

    grid: RunGrid


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = PREVIEW_WORKLOADS,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs=None,
    sweep=None,
    isa: str = "x86_64",
) -> Figure01Result:
    """Simulate the preview bars (``jobs`` worker processes)."""
    return Figure01Result(
        grid=run_grid(workloads, isa_configs(PREVIEW_CONFIGS, isa),
                      trace_length=trace_length,
                      seed=seed, progress=progress, jobs=jobs, obs=obs,
                      sweep=sweep)
    )


def format_figure(result: Figure01Result) -> str:
    """Render the preview as a table."""
    grid = result.grid
    headers = ["config"] + list(grid.workloads)
    rows = [
        [config] + [grid.overhead_percent(w, config) for w in grid.workloads]
        for config in grid.configs
    ]
    return format_table(
        headers, rows, title="Figure 1: overheads of virtual memory (preview, %)"
    )
