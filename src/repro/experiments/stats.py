"""Manifest inspection: collect, pretty-print and diff run provenance.

Backs the ``python -m repro.experiments stats`` subcommand.  Reads the
``manifest.json`` documents experiment runs write (see
:mod:`repro.obs.manifest`), renders their cell tables for humans, and
diffs two manifests cell-by-cell so "same sweep, different checkout"
comparisons are one command.

:func:`collect_observability` is the generic bridge from experiment
result objects to manifest input: it walks any result dataclass and
gathers every :class:`~repro.obs.tracing.RunObservability` record it
reaches, so the CLI needs no per-experiment knowledge of where records
live (grids keep them on cell results, sweeps on ``obs_records``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

from repro.experiments.common import format_table
from repro.obs.manifest import load_manifest, stable_view
from repro.obs.tracing import RunObservability


def collect_observability(result: object) -> list[RunObservability]:
    """Every observability record reachable from an experiment result.

    Recursively walks dataclasses, dicts, lists and tuples; each record
    is returned once (identity-deduplicated) in discovery order, which
    is deterministic because experiment results are built in task order.
    """
    found: list[RunObservability] = []
    _walk(result, found, set())
    unique: list[RunObservability] = []
    seen_ids: set[int] = set()
    for record in found:
        if id(record) not in seen_ids:
            seen_ids.add(id(record))
            unique.append(record)
    return unique


def _walk(obj: object, out: list[RunObservability], seen: set[int]) -> None:
    if isinstance(obj, RunObservability):
        out.append(obj)
        return
    if id(obj) in seen:
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        seen.add(id(obj))
        for field in dataclasses.fields(obj):
            _walk(getattr(obj, field.name), out, seen)
    elif isinstance(obj, dict):
        seen.add(id(obj))
        for value in obj.values():
            _walk(value, out, seen)
    elif isinstance(obj, (list, tuple)):
        seen.add(id(obj))
        for value in obj:
            _walk(value, out, seen)


# ----------------------------------------------------------------------
# Rendering


def format_manifest(manifest: dict) -> str:
    """Human-readable summary of one manifest."""
    git = (manifest.get("git") or {}).get("describe") or "unknown"
    totals = manifest["totals"]
    lines = [
        f"experiment: {manifest['experiment']}   "
        f"created: {manifest['created_at']}",
        f"code: {manifest['package_version']} ({git})   "
        f"python: {manifest['python_version']}   "
        f"jobs: {manifest.get('jobs', 1)}   "
        f"interval: {manifest.get('interval')}",
    ]
    if manifest.get("argv"):
        lines.append("argv: " + " ".join(manifest["argv"]))
    rows = [
        [
            cell["workload"],
            cell["config"],
            cell["seed"],
            f"{cell['summary'].get('overhead_percent', 0.0):.2f}",
            cell["summary"].get("walks", 0),
            cell["summary"].get("l1_misses", 0),
            cell["num_samples"],
            cell["num_degradations"],
            f"{cell['duration_us'] / 1000:.0f}",
        ]
        for cell in manifest["cells"]
    ]
    lines.append(
        format_table(
            [
                "workload",
                "config",
                "seed",
                "overhead%",
                "walks",
                "L1 miss",
                "samples",
                "degr",
                "ms",
            ],
            rows,
        )
    )
    lines.append(
        f"totals: {totals['cells']} cells, "
        f"{totals['measured_refs']} measured refs, "
        f"{totals['walks']} walks, "
        f"{totals['translation_cycles']:.0f} translation cycles, "
        f"{totals['degradation_events']} degradation events"
    )
    histogram_rows = [
        [
            name,
            data["count"],
            f"{data['mean']:.1f}",
            f"{data['p50']:.1f}",
            f"{data['p95']:.1f}",
            f"{data['p99']:.1f}",
        ]
        for name, data in sorted(totals.get("metrics", {}).items())
        if data.get("type") == "histogram" and "p50" in data
    ]
    if histogram_rows:
        lines.append("distributions (merged across cells):")
        lines.append(
            format_table(
                ["metric", "count", "mean", "p50", "p95", "p99"],
                histogram_rows,
            )
        )
    profile = totals.get("profile")
    if profile is not None:
        lines.append(
            f"profile: {profile['walks']} walks attributed across "
            f"{len(profile['axes'])} (structure, level, cause) axes; "
            f"inspect with `python -m repro.experiments profile` or the "
            f"manifest's totals.profile"
        )
    if manifest.get("duration_seconds") is not None:
        lines.append(f"wall clock: {manifest['duration_seconds']:.3f}s")
    return "\n".join(lines)


def _cell_key(cell: dict) -> tuple:
    return (cell["workload"], cell["config"], cell["seed"])


def diff_manifests(old: dict, new: dict) -> str:
    """Cell-by-cell comparison of two manifests.

    Reports cells present on only one side, per-cell deltas of the
    headline numbers, and whether the runs are equivalent up to
    wall-clock noise (equal :func:`stable_view`); :func:`main` turns
    that verdict into its exit code.
    """
    lines = [
        f"old: {old['experiment']} @ {old['created_at']} "
        f"({(old.get('git') or {}).get('describe') or 'unknown'})",
        f"new: {new['experiment']} @ {new['created_at']} "
        f"({(new.get('git') or {}).get('describe') or 'unknown'})",
    ]
    old_cells = {_cell_key(c): c for c in old["cells"]}
    new_cells = {_cell_key(c): c for c in new["cells"]}
    for key in sorted(set(old_cells) - set(new_cells)):
        lines.append(f"only in old: {key[0]}/{key[1]} seed {key[2]}")
    for key in sorted(set(new_cells) - set(old_cells)):
        lines.append(f"only in new: {key[0]}/{key[1]} seed {key[2]}")
    rows = []
    for key in sorted(set(old_cells) & set(new_cells)):
        a, b = old_cells[key], new_cells[key]
        da = a["summary"].get("overhead_percent", 0.0)
        db = b["summary"].get("overhead_percent", 0.0)
        rows.append(
            [
                key[0],
                key[1],
                key[2],
                f"{da:.2f}",
                f"{db:.2f}",
                f"{db - da:+.2f}",
                b["summary"].get("walks", 0) - a["summary"].get("walks", 0),
                "yes" if a["config_hash"] != b["config_hash"] else "no",
            ]
        )
    if rows:
        lines.append(
            format_table(
                [
                    "workload",
                    "config",
                    "seed",
                    "old ovh%",
                    "new ovh%",
                    "delta",
                    "walk delta",
                    "params changed",
                ],
                rows,
            )
        )
    if stable_view(old) == stable_view(new):
        lines.append("verdict: equivalent (stable views match exactly)")
    else:
        lines.append("verdict: results differ beyond wall-clock noise")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI (``python -m repro.experiments stats``)


def main(argv: list[str] | None = None) -> int:
    """Pretty-print or diff manifest files.

    With ``--diff``, the exit code reflects the verdict: 0 when the two
    manifests are equivalent up to wall-clock noise, 1 when they differ
    -- so CI can gate on ``stats A --diff B`` directly.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments stats",
        description="Inspect run-provenance manifests written with --metrics.",
    )
    parser.add_argument("manifest", type=Path, help="manifest.json to read")
    parser.add_argument(
        "--diff",
        type=Path,
        default=None,
        metavar="OTHER",
        help="second manifest: report per-cell deltas old=MANIFEST new=OTHER",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the validated stable view as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    manifest = load_manifest(args.manifest)
    if args.diff is not None:
        other = load_manifest(args.diff)
        print(diff_manifests(manifest, other))
        return 0 if stable_view(manifest) == stable_view(other) else 1
    elif args.json:
        print(json.dumps(stable_view(manifest), indent=2, sort_keys=True))
    else:
        print(format_manifest(manifest))
    return 0
