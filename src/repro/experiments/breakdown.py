"""Section IX.A's performance breakdown, plus Section VIII observations.

Three analyses on the same set of runs:

1. **TLB-miss inflation** -- virtualization increases miss counts
   (nested entries share the L2 TLB): the paper reports 1.38x for
   graph500, 1.62x for memcached, 1.41x for GUPS, 1.33x for canneal,
   1.29x for streamcluster.
2. **Cycles-per-miss growth** -- Cv/Cn averages 2.4x, 1.5x and 1.6x for
   4K+4K, 4K+2M and 4K+1G (up to 3.5x for NPB:CG).
3. **New-mode per-miss costs** -- VMM Direct within ~13% and Guest
   Direct within ~3% of native cycles-per-miss; Dual Direct removes
   ~99.9% of L2 TLB misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    format_table,
    isa_configs,
)
from repro.experiments.parallel import CellTask, run_cells
from repro.model.overhead import geometric_mean

DEFAULT_WORKLOADS = ("graph500", "memcached", "gups", "canneal", "streamcluster")


@dataclass
class WorkloadBreakdown:
    """Per-workload breakdown metrics."""

    workload: str
    miss_inflation_4k4k: float
    cv_over_cn: dict[str, float]  # per virtualized config
    vd_per_miss_vs_native: float  # (C_vd / C_n) - 1
    gd_per_miss_vs_native: float
    dd_l2_miss_reduction: float  # fraction of L2 misses removed


@dataclass
class BreakdownResult:
    """All workloads' breakdowns plus the cross-workload means."""

    rows: list[WorkloadBreakdown]
    #: Per-cell observability records (empty unless run with ``obs``).
    obs_records: tuple = ()

    def mean_cv_over_cn(self, config: str) -> float:
        """Geometric-mean cycles-per-miss growth for one config."""
        return geometric_mean([r.cv_over_cn[config] for r in self.rows])


VIRT_CONFIGS = ("4K+4K", "4K+2M", "4K+1G")


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs=None,
    sweep=None,
    isa: str = "x86_64",
) -> BreakdownResult:
    """Measure the Section IX.A quantities for each workload."""
    bare = ("4K",) + VIRT_CONFIGS + ("4K+VD", "4K+GD", "DD")
    configs = isa_configs(bare, isa)
    label = dict(zip(bare, configs))
    tasks = [
        CellTask(
            workload=name,
            config=config,
            trace_length=trace_length,
            seed=seed,
            obs=obs,
        )
        for name in workloads
        for config in configs
    ]
    if sweep is not None:
        results = sweep.run_cells(tasks, jobs=jobs, progress=progress)
    else:
        results = run_cells(tasks, jobs=jobs, progress=progress)
    cells = dict(
        zip(((t.workload, t.config) for t in tasks), results)
    )
    rows = []
    for name in workloads:
        native = cells[(name, label["4K"])]
        virt = {cfg: cells[(name, label[cfg])] for cfg in VIRT_CONFIGS}
        vd = cells[(name, label["4K+VD"])]
        gd = cells[(name, label["4K+GD"])]
        dd = cells[(name, label["DD"])]

        cn = native.run.cycles_per_walk
        base_l2_misses = virt["4K+4K"].l2_tlb_misses
        rows.append(
            WorkloadBreakdown(
                workload=name,
                miss_inflation_4k4k=(
                    virt["4K+4K"].run.walks / native.run.walks
                    if native.run.walks
                    else 1.0
                ),
                cv_over_cn={
                    cfg: (virt[cfg].run.cycles_per_walk / cn if cn else 0.0)
                    for cfg in VIRT_CONFIGS
                },
                vd_per_miss_vs_native=(vd.run.cycles_per_walk / cn - 1.0) if cn else 0.0,
                gd_per_miss_vs_native=(gd.run.cycles_per_walk / cn - 1.0) if cn else 0.0,
                dd_l2_miss_reduction=(
                    1.0 - dd.l2_tlb_misses / base_l2_misses if base_l2_misses else 0.0
                ),
            )
        )
    return BreakdownResult(
        rows=rows,
        obs_records=tuple(r.obs for r in results if r.obs is not None),
    )


def format_breakdown(result: BreakdownResult) -> str:
    """Render the three analyses as one table."""
    headers = [
        "workload",
        "miss x (4K+4K)",
        "Cv/Cn 4K+4K",
        "Cv/Cn 4K+2M",
        "Cv/Cn 4K+1G",
        "VD per-miss vs native",
        "GD per-miss vs native",
        "DD L2-miss reduction",
    ]
    rows = []
    for r in result.rows:
        rows.append(
            [
                r.workload,
                f"{r.miss_inflation_4k4k:.2f}x",
                f"{r.cv_over_cn['4K+4K']:.2f}x",
                f"{r.cv_over_cn['4K+2M']:.2f}x",
                f"{r.cv_over_cn['4K+1G']:.2f}x",
                f"{100 * r.vd_per_miss_vs_native:+.1f}%",
                f"{100 * r.gd_per_miss_vs_native:+.1f}%",
                f"{100 * r.dd_l2_miss_reduction:.1f}%",
            ]
        )
    rows.append(
        [
            "geo-mean",
            "",
            f"{result.mean_cv_over_cn('4K+4K'):.2f}x",
            f"{result.mean_cv_over_cn('4K+2M'):.2f}x",
            f"{result.mean_cv_over_cn('4K+1G'):.2f}x",
            "",
            "",
            "",
        ]
    )
    return format_table(
        headers, rows, title="Section IX.A performance breakdown"
    )
