"""Command-line runner: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments <name> [--trace-length N] [--quick]
                                       [--jobs N] [--json]
                                       [--metrics] [--profile]
                                       [--trace-out FILE]
                                       [--manifest-out FILE] [--interval N]
    python -m repro.experiments stats <manifest.json> [--diff OTHER] [--json]
    python -m repro.experiments profile [--workload W] [--config LABEL]
                                        [--top K] [--folded FILE]
                                        [--html FILE] [--per-page]
    python -m repro.experiments store {ls,verify,gc,export} [...]
    python -m repro.experiments fabric {serve,work,status} [...]

where ``<name>`` is one of: figure1, figure11, figure12, figure13,
breakdown, table3, table4, shadow, sharing, energy, resilience, bench,
all.  ``--jobs N`` fans independent simulation cells out over N worker
processes (results are identical to a serial run); ``--json`` emits
machine-readable results instead of formatted tables.

``--metrics`` attaches the observability layer (:mod:`repro.obs`) to
every simulation cell and writes a run-provenance ``manifest.json``
(``--manifest-out`` overrides the path); ``--trace-out`` additionally
writes a Chrome-trace JSON timeline (open in ``chrome://tracing`` or
https://ui.perfetto.dev); ``--interval`` sets the counter-sampling
period in measured references.  ``stats`` pretty-prints or diffs the
manifests those runs produced (``--diff`` exits nonzero when the
manifests disagree beyond wall-clock noise).

``--profile`` additionally attaches the cycle-accounting profiler
(:mod:`repro.obs.profiler`) to every cell: per-walk cycle attribution,
hot-page heatmaps and folded stacks land in the manifest (implies
``--metrics``).  ``profile`` runs a single cell interactively and
renders the report directly -- see EXPERIMENTS.md and the Profiling
section of OBSERVABILITY.md.

``--store DIR`` (or ``$REPRO_STORE``) backs the sweep with the
content-addressed result store (:mod:`repro.store`): cells whose results
are already stored are served without simulation, and every freshly
computed cell is persisted the moment it completes.  ``--resume``
implies the store (at its default path when none is given) and
continues an interrupted sweep from the last durable cell;
``--no-store`` disables the store even when ``$REPRO_STORE`` is set.
Warm runs produce byte-identical reports and manifests to cold runs.
The ``store`` subcommand inspects and maintains a store directory --
see STORAGE.md.

``--fabric HOST:PORT`` dispatches the sweep's cell waves to a running
fabric coordinator (:mod:`repro.fabric`) instead of the in-process
worker pool; the coordinator leases cells to worker processes
(``fabric work``) that commit results into the *shared* store, so
``--fabric`` requires ``--store``/``$REPRO_STORE`` pointing at the same
directory the coordinator and workers use.  Distributed sweeps produce
byte-identical reports to serial ones.  ``--out FILE`` writes the
machine-readable result JSON to a file (exactly what ``--json`` prints,
without the surrounding progress text -- CI diffs these);
``--trace-cache-bytes N`` bounds the in-process trace cache (also
``$REPRO_TRACE_CACHE_BYTES``).  The ``fabric`` subcommand runs the
coordinator, workers and HTTP front end -- see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import (
    bench,
    breakdown,
    energy,
    figure01,
    figure11,
    figure12,
    figure13,
    profiling,
    report,
    resilience,
    shadow,
    sharing,
    stats,
    table3_fragmentation,
    table4_models,
)
from repro.obs import (
    DEFAULT_INTERVAL,
    ObsOptions,
    build_manifest,
    chrome_trace,
    write_manifest,
)
from repro.sched import Sweep
from repro.store import DEFAULT_STORE_PATH, ResultStore

#: name -> (runner(trace_length, jobs, obs, sweep, isa) -> result,
#: formatter -> str).  Runners without independent cells to fan out
#: ignore ``jobs``; runners without per-cell simulation runs ignore
#: ``obs``; runners without store-addressable cells ignore ``sweep``;
#: runners pinned to the paper's x86 testbed ignore ``isa``
#: (:data:`ISA_UNAWARE`).
EXPERIMENTS = {
    "figure1": (
        lambda length, jobs, obs, sweep, isa: figure01.run(
            trace_length=length, progress=True, jobs=jobs, obs=obs, sweep=sweep,
            isa=isa,
        ),
        figure01.format_figure,
    ),
    "figure11": (
        lambda length, jobs, obs, sweep, isa: figure11.run(
            trace_length=length, progress=True, jobs=jobs, obs=obs, sweep=sweep,
            isa=isa,
        ),
        figure11.format_figure,
    ),
    "figure12": (
        lambda length, jobs, obs, sweep, isa: figure12.run(
            trace_length=length, progress=True, jobs=jobs, obs=obs, sweep=sweep,
            isa=isa,
        ),
        figure12.format_figure,
    ),
    "figure13": (
        lambda length, jobs, obs, sweep, isa: figure13.run(
            trace_length=min(length, 40_000), progress=True, jobs=jobs,
            sweep=sweep, isa=isa,
        ),
        figure13.format_figure,
    ),
    "breakdown": (
        lambda length, jobs, obs, sweep, isa: breakdown.run(
            trace_length=length, progress=True, jobs=jobs, obs=obs, sweep=sweep,
            isa=isa,
        ),
        breakdown.format_breakdown,
    ),
    "table3": (
        lambda length, jobs, obs, sweep, isa: table3_fragmentation.run(
            progress=True
        ),
        table3_fragmentation.format_scenarios,
    ),
    "table4": (
        lambda length, jobs, obs, sweep, isa: table4_models.run(
            trace_length=length, progress=True, jobs=jobs, obs=obs, sweep=sweep,
            isa=isa,
        ),
        table4_models.format_comparison,
    ),
    "shadow": (
        lambda length, jobs, obs, sweep, isa: shadow.run(
            trace_length=length, progress=True
        ),
        shadow.format_comparison,
    ),
    "sharing": (
        lambda length, jobs, obs, sweep, isa: sharing.run(progress=True),
        sharing.format_study,
    ),
    "energy": (
        lambda length, jobs, obs, sweep, isa: energy.run(
            trace_length=length, progress=True
        ),
        energy.format_energy,
    ),
    "resilience": (
        lambda length, jobs, obs, sweep, isa: resilience.run(
            trace_length=min(length, 40_000), progress=True, obs=obs,
            sweep=sweep,
        ),
        resilience.format_resilience,
    ),
    "bench": (
        lambda length, jobs, obs, sweep, isa: bench.run(
            trace_length=min(length, 40_000), jobs=jobs, progress=True
        ),
        bench.format_bench,
    ),
}

#: Experiments whose runner ignores ``obs`` (no per-cell simulation runs
#: to observe); requesting observability for them is not an error, but
#: the run will produce no records and no manifest.
OBS_UNAWARE = frozenset(
    {"figure13", "table3", "shadow", "sharing", "energy", "bench"}
)

#: Experiments with no store-addressable simulation cells (analytic
#: studies, or the bench whose whole point is measuring compute).
STORE_UNAWARE = frozenset({"table3", "shadow", "sharing", "energy", "bench"})

#: Experiments pinned to the paper's x86 testbed: analytic studies with
#: no simulated walks, the compute bench, and studies whose modelled
#: mechanism (shadow paging, page sharing, resilience waves) has no
#: ISA-dependent geometry yet.  ``--isa`` is ignored with a note.
ISA_UNAWARE = frozenset(
    {"table3", "shadow", "sharing", "energy", "bench", "resilience"}
)


def _out_path(base: Path, experiment: str, multi: bool) -> Path:
    """Output path for one experiment (suffixed when running several)."""
    if not multi:
        return base
    return base.with_name(f"{base.stem}.{experiment}{base.suffix or '.json'}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stats":
        return stats.main(argv[1:])
    if argv and argv[0] == "profile":
        return profiling.main(argv[1:])
    if argv and argv[0] == "store":
        from repro.store import cli as store_cli

        return store_cli.main(argv[1:])
    if argv and argv[0] == "fabric":
        from repro.fabric import cli as fabric_cli

        return fabric_cli.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=80_000,
        help="measured page visits per run (default 80000)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink traces for a fast smoke run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal traces for CI sanity checks (even shorter than --quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation cells "
        "(default 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of formatted tables",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="attach the observability layer and write a run manifest",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the cycle-accounting walk profiler to every cell "
        "(attribution books land in the manifest; implies --metrics)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a Chrome-trace JSON timeline of the run (implies --metrics)",
    )
    parser.add_argument(
        "--manifest-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="manifest path (default manifest.json; implies --metrics)",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=DEFAULT_INTERVAL,
        metavar="N",
        help=f"observability sampling period in measured references "
        f"(default {DEFAULT_INTERVAL})",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="back the sweep with a content-addressed result store at DIR "
        "(default $REPRO_STORE when set); stored cells skip simulation",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep from the last durable cell "
        f"(implies --store, default path {DEFAULT_STORE_PATH})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="never touch a result store, even when $REPRO_STORE is set",
    )
    parser.add_argument(
        "--fabric",
        default=None,
        metavar="HOST:PORT",
        help="dispatch cell waves to a running fabric coordinator "
        "(requires a store shared with its workers; results stay "
        "byte-identical to a local run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the machine-readable result JSON to FILE "
        "(what --json prints, free of progress text)",
    )
    parser.add_argument(
        "--trace-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte bound of the in-process trace cache "
        "(default $REPRO_TRACE_CACHE_BYTES or 256 MiB)",
    )
    parser.add_argument(
        "--isa",
        default="x86_64",
        metavar="NAME",
        help="translation geometry to sweep (x86_64, sv39, sv48, sv57; "
        "default x86_64 keeps the paper's testbed and its exact output)",
    )
    args = parser.parse_args(argv)
    from repro.errors import ConfigError as _ConfigError
    from repro.isa.geometry import get_geometry

    try:
        isa = get_geometry(args.isa).name
    except _ConfigError as exc:
        parser.error(str(exc))
    if args.no_store and (args.store is not None or args.resume):
        parser.error("--no-store conflicts with --store/--resume")
    if args.fabric is not None and args.no_store:
        parser.error("--fabric needs the shared store (conflicts with --no-store)")
    if args.trace_cache_bytes is not None:
        from repro.errors import ConfigError
        from repro.sim import trace_cache

        try:
            trace_cache.set_max_bytes(args.trace_cache_bytes)
        except ConfigError as exc:
            parser.error(str(exc))
    length = args.trace_length
    if args.quick:
        length = 20_000
    if args.smoke:
        length = 6_000

    obs = None
    if (
        args.metrics
        or args.profile
        or args.trace_out is not None
        or args.manifest_out is not None
    ):
        obs = ObsOptions(interval=args.interval, profile=args.profile)
    manifest_base = args.manifest_out or Path("manifest.json")

    store = None
    if not args.no_store:
        store_path = args.store
        if store_path is None and os.environ.get("REPRO_STORE"):
            store_path = Path(os.environ["REPRO_STORE"])
        if store_path is None and args.resume:
            store_path = Path(DEFAULT_STORE_PATH)
        if store_path is None and args.fabric is not None:
            store_path = Path(DEFAULT_STORE_PATH)
        if store_path is not None:
            store = ResultStore(store_path)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    multi = len(names) > 1
    for name in names:
        start = time.time()
        print(f"=== {name} ===", flush=True)
        runner, formatter = EXPERIMENTS[name]
        sweep = None
        if store is not None and name not in STORE_UNAWARE:
            sweep = Sweep(name, store, resume=args.resume, fabric=args.fabric)
        elif args.fabric is not None:
            print(
                f"(fabric ignored: {name} has no store-addressable cells)",
                flush=True,
            )
        if isa != "x86_64" and name in ISA_UNAWARE:
            print(f"(--isa ignored: {name} is pinned to the x86 testbed)", flush=True)
        result = runner(length, args.jobs, obs, sweep, isa)
        elapsed = time.time() - start
        if args.json:
            print(report.dumps(result))
        else:
            print(formatter(result))
        if args.out is not None:
            out_path = _out_path(args.out, name, multi)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(report.dumps(result) + "\n")
            print(f"wrote result: {out_path}", flush=True)
        if obs is not None:
            _write_observability(
                name, result, args, argv, elapsed, multi, manifest_base,
                sweep=sweep,
            )
        if sweep is not None and sweep.reports:
            print(f"(store: {sweep.report.describe()})", flush=True)
        elif store is not None and name in STORE_UNAWARE:
            print(f"(no store support: {name} has no cacheable cells)", flush=True)
        print(f"({elapsed:.1f}s)\n", flush=True)
    return 0


def _write_observability(
    name: str,
    result: object,
    args: argparse.Namespace,
    argv: list[str],
    elapsed: float,
    multi: bool,
    manifest_base: Path,
    sweep: object = None,
) -> None:
    """Emit the manifest (and optional Chrome trace) for one experiment."""
    records = stats.collect_observability(result)
    if not records:
        if name in OBS_UNAWARE:
            print(f"(no observability: {name} has no per-cell runs)", flush=True)
        return
    fabric = None
    if args.fabric is not None and sweep is not None:
        fabric = {
            "coordinator": args.fabric,
            "events": list(getattr(sweep, "fabric_events", ())),
        }
    manifest = build_manifest(
        name,
        records,
        jobs=args.jobs,
        interval=args.interval,
        argv=argv,
        duration_seconds=elapsed,
        fabric=fabric,
    )
    path = write_manifest(manifest, _out_path(manifest_base, name, multi))
    print(f"wrote manifest: {path} ({len(records)} cells)", flush=True)
    if args.trace_out is not None:
        trace_path = _out_path(args.trace_out, name, multi)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(json.dumps(chrome_trace(records, name)) + "\n")
        print(f"wrote chrome trace: {trace_path}", flush=True)


if __name__ == "__main__":
    sys.exit(main())
