"""Command-line runner: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments <name> [--trace-length N] [--quick]
                                       [--jobs N] [--json]

where ``<name>`` is one of: figure1, figure11, figure12, figure13,
breakdown, table3, table4, shadow, sharing, energy, resilience, bench,
all.  ``--jobs N`` fans independent simulation cells out over N worker
processes (results are identical to a serial run); ``--json`` emits
machine-readable results instead of formatted tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    bench,
    breakdown,
    energy,
    figure01,
    figure11,
    figure12,
    figure13,
    report,
    resilience,
    shadow,
    sharing,
    table3_fragmentation,
    table4_models,
)


#: name -> (runner(trace_length, jobs) -> result, formatter -> str).
#: Runners without independent cells to fan out ignore ``jobs``.
EXPERIMENTS = {
    "figure1": (
        lambda length, jobs: figure01.run(
            trace_length=length, progress=True, jobs=jobs
        ),
        figure01.format_figure,
    ),
    "figure11": (
        lambda length, jobs: figure11.run(
            trace_length=length, progress=True, jobs=jobs
        ),
        figure11.format_figure,
    ),
    "figure12": (
        lambda length, jobs: figure12.run(
            trace_length=length, progress=True, jobs=jobs
        ),
        figure12.format_figure,
    ),
    "figure13": (
        lambda length, jobs: figure13.run(
            trace_length=min(length, 40_000), progress=True, jobs=jobs
        ),
        figure13.format_figure,
    ),
    "breakdown": (
        lambda length, jobs: breakdown.run(
            trace_length=length, progress=True, jobs=jobs
        ),
        breakdown.format_breakdown,
    ),
    "table3": (
        lambda length, jobs: table3_fragmentation.run(progress=True),
        table3_fragmentation.format_scenarios,
    ),
    "table4": (
        lambda length, jobs: table4_models.run(
            trace_length=length, progress=True, jobs=jobs
        ),
        table4_models.format_comparison,
    ),
    "shadow": (
        lambda length, jobs: shadow.run(trace_length=length, progress=True),
        shadow.format_comparison,
    ),
    "sharing": (
        lambda length, jobs: sharing.run(progress=True),
        sharing.format_study,
    ),
    "energy": (
        lambda length, jobs: energy.run(trace_length=length, progress=True),
        energy.format_energy,
    ),
    "resilience": (
        lambda length, jobs: resilience.run(
            trace_length=min(length, 40_000), progress=True
        ),
        resilience.format_resilience,
    ),
    "bench": (
        lambda length, jobs: bench.run(
            trace_length=min(length, 40_000), jobs=jobs, progress=True
        ),
        bench.format_bench,
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=80_000,
        help="measured page visits per run (default 80000)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink traces for a fast smoke run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal traces for CI sanity checks (even shorter than --quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation cells "
        "(default 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of formatted tables",
    )
    args = parser.parse_args(argv)
    length = args.trace_length
    if args.quick:
        length = 20_000
    if args.smoke:
        length = 6_000

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===", flush=True)
        runner, formatter = EXPERIMENTS[name]
        result = runner(length, args.jobs)
        if args.json:
            print(report.dumps(result))
        else:
            print(formatter(result))
        print(f"({time.time() - start:.1f}s)\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
