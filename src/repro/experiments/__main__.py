"""Command-line runner: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments <name> [--trace-length N] [--quick] [--json]

where ``<name>`` is one of: figure1, figure11, figure12, figure13,
breakdown, table3, table4, shadow, sharing, energy, resilience, all.
``--json`` emits machine-readable results instead of formatted tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    breakdown,
    energy,
    figure01,
    figure11,
    figure12,
    figure13,
    report,
    resilience,
    shadow,
    sharing,
    table3_fragmentation,
    table4_models,
)


#: name -> (runner(trace_length) -> result, formatter(result) -> str).
EXPERIMENTS = {
    "figure1": (
        lambda length: figure01.run(trace_length=length, progress=True),
        figure01.format_figure,
    ),
    "figure11": (
        lambda length: figure11.run(trace_length=length, progress=True),
        figure11.format_figure,
    ),
    "figure12": (
        lambda length: figure12.run(trace_length=length, progress=True),
        figure12.format_figure,
    ),
    "figure13": (
        lambda length: figure13.run(trace_length=min(length, 40_000), progress=True),
        figure13.format_figure,
    ),
    "breakdown": (
        lambda length: breakdown.run(trace_length=length, progress=True),
        breakdown.format_breakdown,
    ),
    "table3": (
        lambda length: table3_fragmentation.run(progress=True),
        table3_fragmentation.format_scenarios,
    ),
    "table4": (
        lambda length: table4_models.run(trace_length=length, progress=True),
        table4_models.format_comparison,
    ),
    "shadow": (
        lambda length: shadow.run(trace_length=length, progress=True),
        shadow.format_comparison,
    ),
    "sharing": (
        lambda length: sharing.run(progress=True),
        sharing.format_study,
    ),
    "energy": (
        lambda length: energy.run(trace_length=length, progress=True),
        energy.format_energy,
    ),
    "resilience": (
        lambda length: resilience.run(
            trace_length=min(length, 40_000), progress=True
        ),
        resilience.format_resilience,
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=80_000,
        help="measured page visits per run (default 80000)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink traces for a fast smoke run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal traces for CI sanity checks (even shorter than --quick)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of formatted tables",
    )
    args = parser.parse_args(argv)
    length = args.trace_length
    if args.quick:
        length = 20_000
    if args.smoke:
        length = 6_000

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===", flush=True)
        runner, formatter = EXPERIMENTS[name]
        result = runner(length)
        if args.json:
            print(report.dumps(result))
        else:
            print(formatter(result))
        print(f"({time.time() - start:.1f}s)\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
