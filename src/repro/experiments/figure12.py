"""Figure 12: virtual memory overhead per compute workload.

SPEC 2006 and PARSEC workloads are "less suited" to explicit large-page
requests (Section VIII), so the native side uses 4 KB pages and
transparent huge pages; the virtualized side varies guest/VMM page
sizes; and the proposed VMM Direct mode (the mode aimed at arbitrary
workloads, requiring no guest changes) closes the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    RunGrid,
    format_table,
    isa_configs,
    run_grid,
)
from repro.workloads.registry import COMPUTE_WORKLOADS

#: The bar order of Figure 12 (compute workloads get no DS/DD/GD bars:
#: those modes need primary-region changes compute apps do not make).
FIGURE12_CONFIGS = (
    "4K",
    "THP",
    "4K+4K",
    "4K+2M",
    "THP+2M",
    "2M+2M",
    "4K+VD",
    "THP+VD",
)


@dataclass
class Figure12Result:
    """The compute-workload bar chart."""

    grid: RunGrid

    def series(self, workload: str) -> list[tuple[str, float]]:
        """(config, overhead%) pairs for one workload's bar group."""
        return [
            (config, self.grid.overhead_percent(workload, config))
            for config in self.grid.configs
        ]


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    workloads: tuple[str, ...] = COMPUTE_WORKLOADS,
    configs: tuple[str, ...] = FIGURE12_CONFIGS,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    obs=None,
    sweep=None,
    isa: str = "x86_64",
) -> Figure12Result:
    """Simulate every Figure 12 bar (``jobs`` worker processes)."""
    configs = isa_configs(configs, isa)
    return Figure12Result(
        grid=run_grid(workloads, configs, trace_length=trace_length, seed=seed,
                      progress=progress, jobs=jobs, obs=obs, sweep=sweep)
    )


def format_figure(result: Figure12Result) -> str:
    """Render the figure as a table: rows = configs, columns = workloads."""
    grid = result.grid
    headers = ["config"] + list(grid.workloads)
    rows = []
    for config in grid.configs:
        rows.append(
            [config]
            + [grid.overhead_percent(w, config) for w in grid.workloads]
        )
    return format_table(
        headers,
        rows,
        title="Figure 12: address-translation overhead (%) per compute workload",
    )
