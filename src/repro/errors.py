"""Unified exception hierarchy for the reproduction.

Before this module existed, failure types were scattered ad hoc across
the packages (``VmmSegmentError`` in :mod:`repro.vmm.hypervisor`,
``SegmentCreationError`` in :mod:`repro.guest.guest_os`,
``OutOfMemoryError`` in :mod:`repro.mem.frame_allocator`, ...), which
made "catch every model failure" impossible to express and left the
fault-injection subsystem with no way to distinguish *expected,
degradable* failures from bugs.

Every failure the simulated software stack can raise now derives from
:class:`ReproError`, organised by subsystem.  The historical names are
still importable from their original modules (they are re-exported), so
existing call sites and tests keep working; new code should import from
here.

Design contract (see DESIGN.md, "Failure model & degradation paths"):
every raise of a :class:`ReproError` subclass is either

* **degradable** -- the caller (usually the graceful-degradation layer in
  :mod:`repro.vmm.hypervisor` or the retry loop in
  :mod:`repro.mem.frame_allocator`) catches it and continues in a
  reduced mode, recording a ``DegradationLog`` entry; or
* **terminal** -- a documented, typed error that ends the run with a
  clear message instead of an arbitrary ``KeyError``/``AssertionError``
  deep inside the walker.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every modelled failure in the reproduction."""


# ----------------------------------------------------------------------
# Configuration / input validation


class ConfigError(ReproError, ValueError):
    """Invalid simulation configuration (bad label, size, geometry...).

    Subclasses :class:`ValueError` so callers that predate the unified
    hierarchy (``pytest.raises(ValueError)``) keep working.
    """


# ----------------------------------------------------------------------
# Memory substrate


class MemoryModelError(ReproError):
    """Base for failures of the physical-memory model."""


class OutOfMemoryError(MemoryModelError):
    """No free block large enough to satisfy a request.

    Canonical home of the class formerly defined in
    :mod:`repro.mem.frame_allocator` (still re-exported there).
    """


class TransientAllocationError(OutOfMemoryError):
    """An allocation failed transiently (injected fault, Section V spirit).

    Subclasses :class:`OutOfMemoryError` so every existing
    fall-back-to-smaller-page path degrades identically for transient
    and permanent failures.  Raised only after the allocator's
    retry/backoff budget is exhausted.
    """


# ----------------------------------------------------------------------
# Direct segments


class SegmentError(ReproError):
    """Base for direct-segment lifecycle failures (either level)."""


class VmmSegmentError(SegmentError):
    """Host memory is too fragmented (or small) for a VMM segment.

    Canonical home of the class formerly defined in
    :mod:`repro.vmm.hypervisor` (still re-exported there).
    """


class SegmentCreationError(SegmentError):
    """Not enough contiguous guest physical memory for a guest segment.

    Canonical home of the class formerly defined in
    :mod:`repro.guest.guest_os` (still re-exported there).
    """


class EscapeFilterFullError(SegmentError):
    """The escape filter reached its modelled capacity (Section V).

    A Bloom filter has no architectural insert limit, but its
    false-positive rate -- and with it the fraction of the segment that
    silently falls back to paging -- grows with every insertion; the
    modelled capacity is the point past which the VMM must degrade
    (shrink the segment or fall back to nested paging) instead of
    escaping yet another page.
    """


# ----------------------------------------------------------------------
# Swapping / ballooning (Table II restrictions)


class SwapError(ReproError):
    """The page cannot be swapped (Table II restriction or no mapping).

    Canonical home of the guest-level class formerly defined in
    :mod:`repro.guest.guest_os` (still re-exported there).
    """


class VmmSwapError(SwapError):
    """The gPA page cannot be VMM-swapped (Table II restriction).

    Canonical home of the class formerly defined in
    :mod:`repro.vmm.hypervisor` (still re-exported there).
    """


class BalloonError(ReproError):
    """The balloon could not inflate by the requested amount.

    Canonical home of the class formerly defined in
    :mod:`repro.guest.balloon` (still re-exported there).
    """


# ----------------------------------------------------------------------
# Experiment store / incremental scheduling


class StoreError(ReproError):
    """Base for failures of the content-addressed experiment store.

    Like every other :class:`ReproError`, store failures are either
    degradable or terminal.  Corruption is *always* degradable: the
    store quarantines the damaged entry, records the event, and reports
    a cache miss so the scheduler recomputes the cell -- a damaged store
    can cost time, never correctness.
    """


class StoreCorruptionError(StoreError):
    """A store entry failed integrity checks (truncated file, checksum
    mismatch, undecodable payload).

    Raised internally by the entry codec; :class:`repro.store.ResultStore`
    catches it on the read path, moves the entry to quarantine, and
    degrades to a miss.  It only escapes to callers through
    ``store verify``-style inspection APIs that report corruption
    explicitly.
    """


class SchedulerError(ReproError):
    """The sweep scheduler was given an unrunnable cell graph
    (duplicate keys with conflicting tasks, unknown or cyclic deps)."""


# ----------------------------------------------------------------------
# Distributed sweep fabric


class FabricError(ReproError):
    """Base for failures of the distributed sweep fabric
    (:mod:`repro.fabric`): coordinator, workers, wire protocol."""


class FabricProtocolError(FabricError):
    """A malformed or out-of-contract message crossed the fabric wire
    (bad frame, oversized payload, unknown op, undecodable task blob)."""


class FabricJobError(FabricError):
    """A fabric job failed permanently: every one of its bounded retry
    attempts raised (or its submitter was told so by the coordinator).
    Transient losses -- a killed worker, an expired lease -- are *not*
    this error; they requeue silently within the retry budget."""


# ----------------------------------------------------------------------
# Fault injection and the translation oracle


class FaultInjectionError(ReproError):
    """A fault event could not be delivered to the running system."""


class TranslationOracleError(ReproError):
    """The MMU fast path and the shadow translation disagreed.

    Raised only in the oracle's strict mode; by default mismatches are
    recorded in the :class:`~repro.faults.oracle.OracleReport` so a
    sweep can report all of them at once.
    """
