"""memcached: an in-memory key-value cache under a Zipfian request mix.

Web caching traffic is classically Zipf-distributed over keys.  A GET
hashes the key (touching hash-bucket metadata pages) and then reads the
item from its slab page; item placement is effectively random across
slab memory because slabs are filled in arrival order.  Frequent
set/evict churn also makes memcached the paper's poster child for
shadow-paging coherence overhead (29.2% slowdown, Section IX.D).
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import (
    Workload,
    WorkloadSpec,
    mixture,
    two_scale_hot_cold,
)


class Memcached(Workload):
    """Zipf item reads over slabs + hash-bucket metadata touches."""

    #: Fraction of the footprint holding item slabs (rest: hash table).
    SLAB_FRACTION = 0.9
    #: Two-scale key popularity: a small set of very hot keys' pages
    #: plus the wider tail of warm keys (straddles the L2 TLB and so
    #: contends with nested entries under virtualization).
    INNER_PAGES = 150
    INNER_FRACTION = 0.50
    OUTER_PAGES = 2500
    OUTER_FRACTION = 0.40

    def __init__(self, footprint_bytes: int = 8 * GIB) -> None:
        self.spec = WorkloadSpec(
            name="memcached",
            description="in-memory key-value cache, Zipfian GETs (Table V)",
            category="big-memory",
            footprint_bytes=footprint_bytes,
            # Calibrated so the native-4K bar lands near the paper's
            # Figure 11 memcached overhead (~25%).
            ideal_cycles_per_ref=41.0,
            # Constant allocation/eviction churn: the workload class the
            # paper calls out for heavy shadow-page-table invalidation.
            pt_updates_per_mref=3000.0,
            content_profile=ContentProfile(zero_fraction=0.02, os_pages=8192),
            # A GET reads the bucket chain and a multi-line item.
            refs_per_entry=6.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        slab_pages = int(pages * self.SLAB_FRACTION)
        bucket_pages = pages - slab_pages
        # Hot keys concentrate both their items and their buckets; a
        # GET is one bucket page visit then one item page visit, with
        # hot keys revisiting the same pages.
        items = two_scale_hot_cold(
            length,
            slab_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )
        buckets = slab_pages + two_scale_hot_cold(
            length,
            bucket_pages,
            inner_pages=self.INNER_PAGES // 2,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES // 2,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )
        return mixture(length, [(0.5, buckets), (0.5, items)], rng)
