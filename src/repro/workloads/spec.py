"""SPEC CPU2006 compute workloads used by the paper (Table V).

The four single-threaded SPEC workloads the paper evaluates, each with a
locality model drawn from its well-documented behaviour:

* **mcf** -- network-simplex optimizer; chases pointers through a large
  arc array with poor locality, plus a hotter spanning-tree region
  (the classic TLB torture test).
* **cactusADM** -- numerical relativity on a 3D grid; the stencil walks
  several planes at strides far beyond 2 MB, so even THP keeps missing
  (the paper singles out cactusADM as expensive under THP).
* **GemsFDTD** -- finite-difference time domain; streams several large
  field arrays per timestep with good spatial locality.
* **omnetpp** -- discrete-event network simulation; heap-allocated event
  objects with skewed reuse over a moderate footprint.

Trace entries are page visits; ``refs_per_entry`` carries each
workload's intra-page reference count.
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB, MIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import (
    Workload,
    WorkloadSpec,
    mixture,
    strided_pages,
    two_scale_hot_cold,
)

_SPEC_CONTENT = ContentProfile(zero_fraction=0.03, os_pages=16384)


class Mcf(Workload):
    """Pointer chasing over arcs plus a hot spanning-tree region."""

    INNER_PAGES = 150
    INNER_FRACTION = 0.40
    OUTER_PAGES = 2000
    OUTER_FRACTION = 0.38

    def __init__(self, footprint_bytes: int = int(1.7 * GIB)) -> None:
        self.spec = WorkloadSpec(
            name="mcf",
            description="SPEC2006 429.mcf network simplex (ref input)",
            category="compute",
            footprint_bytes=footprint_bytes,
            # Calibrated to a high native-4K overhead (~40%); the paper
            # notes mcf stays expensive even with THP.
            ideal_cycles_per_ref=69.8,
            pt_updates_per_mref=520.0,
            content_profile=_SPEC_CONTENT,
            # An arc/node record is a couple of words.
            refs_per_entry=2.5,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        return two_scale_hot_cold(
            length,
            self.spec.footprint_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )


class CactusADM(Workload):
    """Large-stride stencil chains across grid planes."""

    #: Plane pitch: the grid's z-slab size, far beyond one 2 MB page --
    #: the reason THP does not rescue cactusADM.
    PLANE_STRIDE_BYTES = 24 * MIB
    STENCIL_CHAINS = 8
    #: Coefficient tables revisited every point, plus the wider set of
    #: previous-timestep planes.
    INNER_PAGES = 64
    INNER_FRACTION = 0.20
    OUTER_PAGES = 2000
    OUTER_FRACTION = 0.20

    def __init__(self, footprint_bytes: int = int(1.5 * GIB)) -> None:
        self.spec = WorkloadSpec(
            name="cactusadm",
            description="SPEC2006 436.cactusADM 3D stencil (ref input)",
            category="compute",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=32.0,
            pt_updates_per_mref=200.0,
            content_profile=_SPEC_CONTENT,
            # A plane visit reads a grid line (~8 doubles per point
            # across a few lines).
            refs_per_entry=8.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        stride = self.PLANE_STRIDE_BYTES // 4096
        planes = strided_pages(
            length, pages, stride_pages=stride, chains=self.STENCIL_CHAINS, rng=rng
        )
        tables = two_scale_hot_cold(
            length,
            pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION / (self.INNER_FRACTION + self.OUTER_FRACTION),
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION / (self.INNER_FRACTION + self.OUTER_FRACTION),
            rng=rng,
        )
        hot_share = self.INNER_FRACTION + self.OUTER_FRACTION
        return mixture(length, [(1.0 - hot_share, planes), (hot_share, tables)], rng)


class GemsFDTD(Workload):
    """Streaming sweeps over several large field arrays."""

    FIELD_ARRAYS = 6

    def __init__(self, footprint_bytes: int = int(1.5 * GIB)) -> None:
        self.spec = WorkloadSpec(
            name="gemsfdtd",
            description="SPEC2006 459.GemsFDTD finite-difference solver",
            category="compute",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=21.2,
            pt_updates_per_mref=647.0,
            content_profile=_SPEC_CONTENT,
            # Dense streaming: every line of a page is consumed.
            refs_per_entry=40.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        # Six field arrays swept in lockstep: six interleaved sequential
        # chains of page visits, plus occasional far-field updates.
        chains = self.FIELD_ARRAYS
        starts = (np.arange(chains, dtype=np.int64) * pages) // chains
        chain_idx = np.arange(length, dtype=np.int64) % chains
        step = np.arange(length, dtype=np.int64) // chains
        sweeps = (starts[chain_idx] + step) % np.int64(pages)
        # Boundary-condition tables and far-field updates: a mid-sized
        # reused set plus a sprinkle of uniform accesses.
        tables = two_scale_hot_cold(
            length, pages, 64, 0.5, 1500, 0.45, rng
        )
        return mixture(length, [(0.82, sweeps), (0.18, tables)], rng)


class Omnetpp(Workload):
    """Heap-object churn with skewed reuse (event queue hot set)."""

    INNER_PAGES = 200
    INNER_FRACTION = 0.60
    OUTER_PAGES = 1500
    OUTER_FRACTION = 0.33

    def __init__(self, footprint_bytes: int = 512 * MIB) -> None:
        self.spec = WorkloadSpec(
            name="omnetpp",
            description="SPEC2006 471.omnetpp discrete-event simulation",
            category="compute",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=103.0,
            pt_updates_per_mref=2240.0,
            content_profile=_SPEC_CONTENT,
            # Event objects span a few cache lines.
            refs_per_entry=4.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        return two_scale_hot_cold(
            length,
            self.spec.footprint_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )
