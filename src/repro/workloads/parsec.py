"""PARSEC 3.0 multi-threaded compute workloads used by the paper.

* **canneal** -- simulated-annealing chip routing: each move picks two
  random netlist elements and evaluates swaps (near-uniform over a
  large element array) while a hot set of frequently-contended nets and
  the temperature/bookkeeping state is revisited constantly.
* **streamcluster** -- online clustering: streams input points while
  repeatedly touching the current set of cluster centers (a hot region
  of a few MB).

Trace entries are page visits; ``refs_per_entry`` carries intra-page
reference counts (netlist elements span a few lines; a point/center
distance computation reads a whole coordinate vector).
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB, MIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import (
    Workload,
    WorkloadSpec,
    mixture,
    two_scale_hot_cold,
)

_PARSEC_CONTENT = ContentProfile(zero_fraction=0.03, os_pages=16384)


class Canneal(Workload):
    """Random element pairs over the netlist plus hot nets."""

    INNER_PAGES = 150
    INNER_FRACTION = 0.45
    OUTER_PAGES = 2500
    OUTER_FRACTION = 0.35

    def __init__(self, footprint_bytes: int = int(1.5 * GIB)) -> None:
        self.spec = WorkloadSpec(
            name="canneal",
            description="PARSEC canneal simulated annealing (native input)",
            category="compute",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=128.8,
            pt_updates_per_mref=2135.0,
            content_profile=_PARSEC_CONTENT,
            # A netlist element and its net list span a few lines.
            refs_per_entry=4.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        return two_scale_hot_cold(
            length,
            self.spec.footprint_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )


class Streamcluster(Workload):
    """Streaming points + a hot center table."""

    #: Size of the cluster-center region (straddles the L2 TLB).
    CENTER_BYTES = 4 * MIB
    #: Share of page visits going to centers vs streamed points.
    CENTER_FRACTION = 0.5
    #: Within the centers, the currently-open centers are hottest.
    INNER_CENTER_PAGES = 128
    INNER_CENTER_SHARE = 0.55

    def __init__(self, footprint_bytes: int = 768 * MIB) -> None:
        self.spec = WorkloadSpec(
            name="streamcluster",
            description="PARSEC streamcluster online clustering (native input)",
            category="compute",
            footprint_bytes=footprint_bytes,
            ideal_cycles_per_ref=75.3,
            pt_updates_per_mref=377.0,
            content_profile=_PARSEC_CONTENT,
            # A distance computation streams a point's full dimension
            # vector (several lines per page visit).
            refs_per_entry=10.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        center_pages = self.CENTER_BYTES // 4096
        point_pages = pages - center_pages
        # Points stream sequentially, one page visit per point block.
        points = np.arange(length, dtype=np.int64) % np.int64(point_pages)
        centers = point_pages + two_scale_hot_cold(
            length,
            center_pages,
            inner_pages=self.INNER_CENTER_PAGES,
            inner_fraction=self.INNER_CENTER_SHARE,
            outer_pages=center_pages,
            outer_fraction=1.0 - self.INNER_CENTER_SHARE,
            rng=rng,
        )
        return mixture(
            length,
            [(1.0 - self.CENTER_FRACTION, points), (self.CENTER_FRACTION, centers)],
            rng,
        )
