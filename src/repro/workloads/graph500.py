"""graph500: breadth-first search over a scale-free graph.

BFS over a CSR-format power-law graph mixes three access patterns:

* sequential scans of the edge array (each vertex's adjacency list is
  contiguous; an edge page is consumed line by line -- one page visit,
  many references);
* accesses to the *frontier* vertices' state, a working set of the
  current BFS level that is much smaller than the graph but larger than
  the L1 TLB (the hot component);
* accesses to arbitrary neighbors' visited/parent state, effectively
  uniform over the vertex arrays (the cold component).

Trace entries are page visits; ``refs_per_entry`` accounts for the
line-by-line edge scans and multi-word vertex records.
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import (
    Workload,
    WorkloadSpec,
    two_scale_hot_cold,
)


class Graph500(Workload):
    """BFS reference stream: edge streaming + frontier + random vertices."""

    #: Fraction of the footprint holding the edge array (CSR payload).
    EDGE_FRACTION = 0.65
    #: Mean adjacency-run length in pages (hub lists span pages).
    MEAN_RUN_PAGES = 3
    #: Two-scale frontier: the current BFS level's dense core plus the
    #: wider set of recently-touched vertices (straddles the L2 TLB).
    INNER_PAGES = 150
    INNER_FRACTION = 0.55
    OUTER_PAGES = 2500
    OUTER_FRACTION = 0.35

    def __init__(self, footprint_bytes: int = 8 * GIB) -> None:
        self.spec = WorkloadSpec(
            name="graph500",
            description="BFS of very large scale-free graphs (Table V)",
            category="big-memory",
            footprint_bytes=footprint_bytes,
            # Calibrated so the native-4K bar lands near the paper's 28%.
            ideal_cycles_per_ref=11.7,
            pt_updates_per_mref=58.0,
            content_profile=ContentProfile(zero_fraction=0.02, os_pages=8192),
            # One edge page visit = a full cache-line scan (~64 refs);
            # vertex visits read a couple of words.  Weighted ~1:2.
            refs_per_entry=22.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        edge_pages = int(pages * self.EDGE_FRACTION)
        vertex_pages = pages - edge_pages

        max_blocks = length // 2 + 2
        runs = rng.geometric(1.0 / self.MEAN_RUN_PAGES, size=max_blocks)
        starts = rng.integers(0, edge_pages, size=max_blocks, dtype=np.int64)
        vertex_stream = edge_pages + two_scale_hot_cold(
            length,
            vertex_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )

        out = np.empty(length, dtype=np.int64)
        pos = 0
        vpos = 0
        for block in range(max_blocks):
            if pos >= length:
                break
            # One vertex's adjacency list: a short sequential run of edge
            # pages ...
            run = min(int(runs[block]), length - pos)
            out[pos : pos + run] = (starts[block] + np.arange(run)) % edge_pages
            pos += run
            if pos >= length:
                break
            # ... then ~2 vertex-state visits per edge page scanned.
            touches = min(2 * run, length - pos)
            out[pos : pos + touches] = vertex_stream[vpos : vpos + touches]
            pos += touches
            vpos += touches
        return out
