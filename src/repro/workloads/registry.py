"""Lookup of all Table V workloads by name."""

from __future__ import annotations

from collections.abc import Callable

from repro.workloads.base import Workload
from repro.workloads.graph500 import Graph500
from repro.workloads.gups import Gups
from repro.workloads.memcached import Memcached
from repro.workloads.npb_cg import NpbCg
from repro.workloads.parsec import Canneal, Streamcluster
from repro.workloads.spec import CactusADM, GemsFDTD, Mcf, Omnetpp

_FACTORIES: dict[str, Callable[[], Workload]] = {
    "graph500": Graph500,
    "memcached": Memcached,
    "npb-cg": NpbCg,
    "gups": Gups,
    "mcf": Mcf,
    "cactusadm": CactusADM,
    "gemsfdtd": GemsFDTD,
    "omnetpp": Omnetpp,
    "canneal": Canneal,
    "streamcluster": Streamcluster,
}

#: The paper's Figure 11 x-axis.
BIG_MEMORY_WORKLOADS = ("graph500", "memcached", "npb-cg", "gups")

#: The paper's Figure 12 x-axis.
COMPUTE_WORKLOADS = (
    "cactusadm",
    "gemsfdtd",
    "mcf",
    "omnetpp",
    "canneal",
    "streamcluster",
)

ALL_WORKLOADS = BIG_MEMORY_WORKLOADS + COMPUTE_WORKLOADS


def create_workload(name: str) -> Workload:
    """Instantiate a workload by its Table V name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
    return factory()


def workload_names() -> tuple[str, ...]:
    """All registered workload names."""
    return tuple(_FACTORIES)
