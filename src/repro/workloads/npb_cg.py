"""NPB:CG -- NAS Parallel Benchmarks conjugate gradient.

CG's dominant kernel is sparse matrix-vector multiplication: the CSR
matrix (values + column indices) streams sequentially row by row, while
each nonzero gathers a random element of the dense vector.  The matrix
dominates the footprint; the vector is smaller but its gathers are the
TLB-hostile part (random over hundreds of MB).
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import Workload, WorkloadSpec, two_scale_hot_cold


class NpbCg(Workload):
    """Sequential CSR streaming with random vector gathers."""

    #: Fraction of the footprint holding the sparse matrix.
    MATRIX_FRACTION = 0.88
    #: Share of page visits that are vector gathers (the rest stream
    #: matrix pages sequentially).
    GATHER_SHARE = 0.7
    #: Two-scale reuse in the dense vector: clustered columns hit a
    #: small set of x[] pages; the wider band straddles the L2 TLB.
    INNER_PAGES = 150
    INNER_FRACTION = 0.45
    OUTER_PAGES = 2000
    OUTER_FRACTION = 0.40

    def __init__(self, footprint_bytes: int = 6 * GIB) -> None:
        self.spec = WorkloadSpec(
            name="npb-cg",
            description="NAS Parallel Benchmarks conjugate gradient (Table V)",
            category="big-memory",
            footprint_bytes=footprint_bytes,
            # Calibrated to the paper's Figure 11 NPB:CG native-4K bar.
            ideal_cycles_per_ref=11.9,
            pt_updates_per_mref=60.0,
            content_profile=ContentProfile(zero_fraction=0.01, os_pages=8192),
            # A matrix page visit streams the page (~64 refs); a gather
            # reads a word or two.  Weighted by GATHER_SHARE.
            refs_per_entry=20.0,
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        pages = self.spec.footprint_pages
        matrix_pages = int(pages * self.MATRIX_FRACTION)
        vector_pages = pages - matrix_pages

        is_gather = rng.random(length) < self.GATHER_SHARE
        out = np.empty(length, dtype=np.int64)
        # Matrix page visits advance sequentially (one visit per page).
        stream_positions = np.cumsum(~is_gather) - 1
        sweep_start = int(rng.integers(0, matrix_pages))
        out[~is_gather] = (sweep_start + stream_positions[~is_gather]) % matrix_pages
        gathers = matrix_pages + two_scale_hot_cold(
            int(is_gather.sum()),
            vector_pages,
            inner_pages=self.INNER_PAGES,
            inner_fraction=self.INNER_FRACTION,
            outer_pages=self.OUTER_PAGES,
            outer_fraction=self.OUTER_FRACTION,
            rng=rng,
        )
        out[is_gather] = gathers
        return out
