"""Workload model: specs, trace toolkit, and the generator base class.

The paper's evaluation (Table V) runs real 60-75 GB workloads on a real
Xeon; the only workload property its methodology consumes is the memory
reference stream's locality (which determines TLB misses, the fractions
F_*, and per-miss walk costs).  We therefore model each workload as a
generator of page-granular reference traces with a documented locality
structure, plus the scalar characteristics the side studies need:

* ``ideal_cycles_per_ref`` -- calibration constant standing in for the
  unmeasurable "execution time minus page-walk time" of the real
  machine (the paper's T_2Mideal denominator).  Chosen per workload so
  the native-4K overhead lands near the paper's Figure 11/12 bar.
* ``pt_updates_per_mref`` -- guest page-table writes per million
  references, driving the shadow-paging comparison (Section IX.D).
* ``content_profile`` -- page-content fingerprint model for the
  page-sharing study (Section IX.E).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.address import BASE_PAGE_SIZE
from repro.vmm.page_sharing import ContentProfile


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one Table V workload."""

    name: str
    description: str
    #: 'big-memory', 'compute' or 'micro' (GUPS).
    category: str
    #: Bytes of the primary data arena the trace references.
    footprint_bytes: int
    #: Cycles per memory reference of ideal (no-translation) execution.
    ideal_cycles_per_ref: float
    #: Guest page-table updates per million references (shadow paging).
    pt_updates_per_mref: float
    #: Page-content model for the KSM study.
    content_profile: ContentProfile
    #: Fraction of the page-table updates that remain when the guest
    #: uses 2 MB pages (fewer PTEs to write; Section IX.D's 2M shadow
    #: slowdowns run at ~0.38-0.40x the 4K ones).
    pt_update_2m_factor: float = 0.39
    #: Memory references represented by one trace entry.  Trace entries
    #: are *page visits*; real code issues several consecutive
    #: references into a page per visit (cache-line walks, multi-word
    #: objects).  Consecutive same-page references cannot change TLB
    #: state beyond the first, so the simulator probes once per entry
    #: and scales reference counts (and ideal cycles) by this factor.
    refs_per_entry: float = 1.0
    #: Default trace length in page visits.
    default_trace_length: int = 400_000

    def __post_init__(self) -> None:
        if self.footprint_bytes < BASE_PAGE_SIZE:
            raise ValueError("footprint must be at least one page")
        if self.ideal_cycles_per_ref <= 0:
            raise ValueError("ideal cycles per reference must be positive")
        if self.refs_per_entry < 1.0:
            raise ValueError("a trace entry represents at least one reference")
        if self.pt_updates_per_mref < 0:
            raise ValueError("page-table update rate cannot be negative")
        if not 0.0 < self.pt_update_2m_factor <= 1.0:
            raise ValueError("2M update factor must be in (0, 1]")
        if self.category not in ("big-memory", "compute", "micro"):
            raise ValueError(f"unknown workload category {self.category!r}")

    @property
    def footprint_pages(self) -> int:
        """4 KB pages in the data arena."""
        return self.footprint_bytes // BASE_PAGE_SIZE


class Workload(abc.ABC):
    """A reproducible generator of page-reference traces."""

    spec: WorkloadSpec

    @abc.abstractmethod
    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        """Generate ``length`` page references (4 KB page offsets).

        Returned values are page indices in ``[0, footprint_pages)``,
        relative to the workload's arena base; the simulator adds the
        primary region's base page.  Deterministic for a given seed.
        """

    def __repr__(self) -> str:
        return f"<Workload {self.spec.name}>"


# ----------------------------------------------------------------------
# Trace toolkit: the locality building blocks the generators compose.


def uniform_pages(n: int, pages: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random page references (GUPS-like)."""
    return rng.integers(0, pages, size=n, dtype=np.int64)


#: Inverse-CDF tables for truncated Zipf draws, keyed by (pages, alpha).
#: Building the CDF is O(pages); generators draw repeatedly, so cache it.
_ZIPF_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _zipf_cdf(pages: int, alpha: float) -> np.ndarray:
    key = (pages, round(alpha, 6))
    cdf = _ZIPF_CDF_CACHE.get(key)
    if cdf is None:
        ranks = np.arange(1, pages + 1, dtype=np.float64)
        cdf = np.cumsum(ranks ** (-alpha))
        cdf /= cdf[-1]
        if len(_ZIPF_CDF_CACHE) > 32:  # bound memory across many configs
            _ZIPF_CDF_CACHE.clear()
        _ZIPF_CDF_CACHE[key] = cdf
    return cdf


def zipf_pages(
    n: int,
    pages: int,
    alpha: float,
    rng: np.random.Generator,
    scatter: bool = True,
) -> np.ndarray:
    """Zipf-distributed page popularity (key-value / heap churn).

    Rank-``k`` popularity proportional to ``k**-alpha``; ``scatter``
    permutes ranks across the arena with a multiplicative hash so hot
    pages are not spatially adjacent (as hash-table buckets are not).
    """
    if alpha <= 0:
        return uniform_pages(n, pages, rng)
    cdf = _zipf_cdf(pages, alpha)
    draws = rng.random(n)
    chosen = np.searchsorted(cdf, draws).astype(np.int64)
    if scatter:
        chosen = (chosen * np.int64(2654435761)) % np.int64(pages)
    return chosen


def sequential_sweep(
    n: int, pages: int, start: int = 0, stride_pages: int = 1
) -> np.ndarray:
    """A streaming scan: `start, start+stride, ...` wrapping at the arena."""
    steps = np.arange(n, dtype=np.int64) * np.int64(stride_pages)
    return (np.int64(start) + steps) % np.int64(pages)


def strided_pages(
    n: int, pages: int, stride_pages: int, chains: int, rng: np.random.Generator
) -> np.ndarray:
    """Interleaved large-stride chains (grid/stencil codes).

    Models a stencil touching ``chains`` planes of a 3D grid: the trace
    round-robins the chains while each advances by ``stride_pages``.
    """
    starts = rng.integers(0, pages, size=chains, dtype=np.int64)
    chain_idx = np.arange(n, dtype=np.int64) % chains
    step_idx = np.arange(n, dtype=np.int64) // chains
    return (starts[chain_idx] + step_idx * np.int64(stride_pages)) % np.int64(pages)


def interleave(blocks: list[np.ndarray], rng: np.random.Generator) -> np.ndarray:
    """Concatenate trace blocks in randomized order (phase mixing)."""
    order = rng.permutation(len(blocks))
    return np.concatenate([blocks[i] for i in order])


def hot_cold_pages(
    n: int,
    pages: int,
    hot_pages: int,
    hot_fraction: float,
    rng: np.random.Generator,
    hot_alpha: float = 0.0,
) -> np.ndarray:
    """A hot working set over a cold tail -- the canonical TLB regime.

    ``hot_fraction`` of visits go to a ``hot_pages``-sized set scattered
    across the arena (optionally Zipf-skewed within it); the rest are
    uniform over the whole arena.  Hot sets comparable to the 512-entry
    L2 TLB are what make nested-entry capacity pressure visible
    (Section IX.A's miss inflation).
    """
    if hot_pages > pages:
        raise ValueError("hot set larger than the arena")
    if hot_alpha > 0:
        hot_local = zipf_pages(n, hot_pages, hot_alpha, rng, scatter=False)
    else:
        hot_local = uniform_pages(n, hot_pages, rng)
    # Scatter the hot set across the arena so it does not sit in one
    # large-page-friendly clump.
    hot = (hot_local * np.int64(2654435761)) % np.int64(pages)
    cold = uniform_pages(n, pages, rng)
    return mixture(n, [(hot_fraction, hot), (1.0 - hot_fraction, cold)], rng)


def two_scale_hot_cold(
    n: int,
    pages: int,
    inner_pages: int,
    inner_fraction: float,
    outer_pages: int,
    outer_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Two working-set scales over a cold tail.

    Real workloads rarely have a single working set: an *inner* set
    (well inside L1 TLB reach after a few hundred pages of L2) is
    backed by an *outer* set a few thousand pages wide that straddles
    the 512-entry L2 TLB, plus a uniform cold tail.  The outer scale is
    what reproduces the paper's 1.29-1.62x virtualized miss inflation:
    natively it part-fits the L2, but nested entries sharing the array
    (Table VI) evict it.
    """
    if inner_fraction + outer_fraction > 1.0:
        raise ValueError("hot fractions exceed 1")
    inner = (uniform_pages(n, inner_pages, rng) * np.int64(2654435761)) % np.int64(
        pages
    )
    outer = (uniform_pages(n, outer_pages, rng) * np.int64(2654435789)) % np.int64(
        pages
    )
    cold = uniform_pages(n, pages, rng)
    return mixture(
        n,
        [
            (inner_fraction, inner),
            (outer_fraction, outer),
            (1.0 - inner_fraction - outer_fraction, cold),
        ],
        rng,
    )


def mixture(
    n: int,
    components: list[tuple[float, np.ndarray]],
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-reference mixture: pick each reference from component ``i``
    with probability ``weight_i`` (weights must sum to ~1)."""
    weights = np.array([w for w, _ in components], dtype=np.float64)
    weights /= weights.sum()
    choice = rng.choice(len(components), size=n, p=weights)
    out = np.empty(n, dtype=np.int64)
    for i, (_, stream) in enumerate(components):
        mask = choice == i
        take = int(mask.sum())
        if take:
            out[mask] = stream[:take]
    return out
