"""Table V workload trace generators."""
