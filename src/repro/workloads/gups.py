"""GUPS: the HPC Challenge random-access micro-benchmark.

GUPS updates random 8-byte words of a huge table; every reference is an
independent uniform draw over the footprint, so essentially every access
misses every TLB level -- the worst case for address translation and the
reason the paper plots it on its own scaled axis in Figure 11.
"""

from __future__ import annotations

import numpy as np

from repro.core.address import GIB
from repro.vmm.page_sharing import ContentProfile
from repro.workloads.base import Workload, WorkloadSpec, uniform_pages


class Gups(Workload):
    """Uniform random references over the whole table."""

    def __init__(self, footprint_bytes: int = 8 * GIB) -> None:
        self.spec = WorkloadSpec(
            name="gups",
            description="HPCC random-access micro-benchmark (Table V)",
            category="micro",
            footprint_bytes=footprint_bytes,
            # Each update is an independent DRAM access with some memory-
            # level parallelism; most of the per-reference time is the
            # data access itself.
            ideal_cycles_per_ref=55.0,
            # The table is allocated once; almost no PT churn.
            pt_updates_per_mref=140.0,
            content_profile=ContentProfile(zero_fraction=0.01, os_pages=4096),
        )

    def trace(self, length: int | None = None, seed: int = 0) -> np.ndarray:
        length = length or self.spec.default_trace_length
        rng = np.random.default_rng(seed)
        return uniform_pages(length, self.spec.footprint_pages, rng)
