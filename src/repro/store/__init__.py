"""repro.store: the content-addressed, on-disk experiment result store.

One entry per simulation cell, keyed by a digest of workload spec +
parsed config + seed + trace-cache key + model-parameter fingerprint +
code fingerprint (:mod:`repro.store.keys`); durable via atomic writes
plus a write-ahead journal, with corrupted entries quarantined instead
of trusted (:mod:`repro.store.store`); maintained through the ``store``
CLI (:mod:`repro.store.cli`).  The incremental sweep scheduler
(:mod:`repro.sched`) consults this store before dispatching cells.

See STORAGE.md for the entry format, keying scheme, invalidation rules
and GC policy.
"""

from repro.store.keys import (
    cell_key,
    code_fingerprint,
    config_params,
    digest,
    grid_cell_ingredients,
    model_fingerprint,
    obs_params,
    trace_key_params,
    workload_params,
)
from repro.store.store import (
    DEFAULT_STORE_PATH,
    ENTRY_KIND,
    SCHEMA_VERSION,
    RecoveryReport,
    ResultStore,
    StoreStats,
    VerifyIssue,
    VerifyReport,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "ENTRY_KIND",
    "SCHEMA_VERSION",
    "RecoveryReport",
    "ResultStore",
    "StoreStats",
    "VerifyIssue",
    "VerifyReport",
    "cell_key",
    "code_fingerprint",
    "config_params",
    "digest",
    "grid_cell_ingredients",
    "model_fingerprint",
    "obs_params",
    "trace_key_params",
    "workload_params",
]
