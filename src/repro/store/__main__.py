"""``python -m repro.store`` -- alias for the ``store`` subcommand."""

import sys

from repro.store.cli import main

if __name__ == "__main__":
    sys.exit(main())
