"""Cell keying: content digests and invalidation fingerprints.

A store entry is addressed by a digest over *everything that determines
the cell's result*:

* the experiment-specific **ingredients** dict -- workload name and full
  :class:`~repro.workloads.base.WorkloadSpec` parameters, the parsed
  :class:`~repro.sim.config.SystemConfig` fields (not just the label),
  trace length, seed, the trace-cache key
  (:func:`repro.sim.trace_cache.trace_key`), the observability request,
  and any experiment-private knobs (fault counts, sampling rates, ...);
* the **model-parameter fingerprint** -- the default
  :class:`~repro.core.costs.CostModel` latencies and
  :class:`~repro.tlb.hierarchy.TLBGeometry`, so retuning any cost or
  TLB constant invalidates every cached cell; and
* the **code fingerprint** -- a hash over the ``repro`` package sources
  (excluding :mod:`repro.store` and :mod:`repro.sched` themselves, which
  cannot change simulated results), so any code change invalidates the
  store wholesale.

Digests are canonical-JSON SHA-256: two processes computing a key for
the same cell always agree, and any ingredient drift -- however small --
produces a different key (a *miss*, never a wrong hit).  See STORAGE.md
for the full invalidation contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.core.costs import CostModel
from repro.sim import trace_cache
from repro.sim.config import parse_config
from repro.tlb.hierarchy import TLBGeometry
from repro.workloads.base import Workload
from repro.workloads.registry import create_workload

#: Hex chars kept from the SHA-256 digest.  40 (160 bits) keeps
#: collisions out of reach while staying filename-friendly.
DIGEST_CHARS = 40

#: Bump when the key layout itself changes (orthogonal to the store's
#: on-disk schema version): old keys simply stop matching.
KEY_SCHEMA = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Any) -> str:
    """Canonical-JSON SHA-256 of ``payload``, truncated to 160 bits."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[
        :DIGEST_CHARS
    ]


# ----------------------------------------------------------------------
# Fingerprints


def hash_tree(root: Path, exclude: tuple[str, ...] = ()) -> str:
    """Digest of every ``*.py`` file under ``root`` (path + content).

    ``exclude`` names path prefixes relative to ``root`` (POSIX form)
    whose files are skipped.  Deterministic: files are visited in
    sorted relative-path order and both the path and the bytes feed the
    hash, so renames count as changes.
    """
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(rel == p or rel.startswith(p + "/") for p in exclude):
            continue
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()[:DIGEST_CHARS]


#: Sub-packages whose sources do NOT feed the code fingerprint: the
#: persistence layer itself never changes what a cell computes, so
#: store/scheduler development must not invalidate existing stores.
CODE_FINGERPRINT_EXCLUDES = ("store", "sched")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the installed ``repro`` package sources.

    Cached per process (sources cannot change under a running sweep);
    tests monkeypatch this function to prove key sensitivity without
    editing files.
    """
    import repro

    return hash_tree(
        Path(repro.__file__).resolve().parent, exclude=CODE_FINGERPRINT_EXCLUDES
    )


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Digest of the default cost-model and TLB-geometry parameters.

    Covers every latency in :class:`CostModel` (including the nested
    :class:`~repro.core.costs.CacheLatencies` residency blend) and every
    size/associativity in :class:`TLBGeometry`.  Redundant with the code
    fingerprint for constants defined in source -- but it keys the
    *values*, so experiments that will later inject alternative models
    get invalidation for free.
    """
    return digest(
        {
            "cost_model": dataclasses.asdict(CostModel()),
            "tlb_geometry": dataclasses.asdict(TLBGeometry()),
        }
    )


def workload_params(workload: Workload) -> dict:
    """The full spec of a workload instance as JSON-ready data.

    Includes the generator class (two classes can share a spec name but
    produce different traces) alongside every :class:`WorkloadSpec`
    field, so changing any workload parameter -- footprint, locality
    constants live in code (code fingerprint), but spec-level knobs like
    ``refs_per_entry`` or ``ideal_cycles_per_ref`` -- changes the key.
    """
    return {
        "class": type(workload).__qualname__,
        "spec": dataclasses.asdict(workload.spec),
    }


def config_params(label: str) -> dict:
    """The parsed :class:`SystemConfig` fields for a bar label.

    Keyed on the parse *result*, not the raw string, so label aliases
    that parse identically share entries while any grammar change that
    alters the parsed fields invalidates them.
    """
    config = parse_config(label)
    return {
        "label": config.label,
        "mode": config.mode.value,
        "guest_page": config.guest_page.name,
        "nested_page": config.nested_page.name if config.nested_page else None,
        "thp": config.thp,
        "isa": config.isa_name(),
        "geometry": config.translation_geometry().fingerprint(),
    }


def obs_params(obs: Any) -> dict | None:
    """The observability request as key material (None when unobserved).

    An observed and an unobserved run of the same cell produce different
    :class:`SimulationResult` objects (``.obs`` present or not), so they
    must not share a store entry.
    """
    if obs is None:
        return None
    return {"interval": obs.interval, "profile": obs.profile}


# ----------------------------------------------------------------------
# Cell keys


def cell_key(ingredients: dict) -> str:
    """The store key for one cell: ingredients + both fingerprints."""
    return digest(
        {
            "key_schema": KEY_SCHEMA,
            "ingredients": ingredients,
            "code": code_fingerprint(),
            "model": model_fingerprint(),
        }
    )


def trace_key_params(
    workload: Workload, trace_length: int | None, seed: int, isa: str = "x86_64"
) -> list:
    """The trace-cache key as JSON-ready key material.

    Ties an entry to the exact trace the simulator would fetch: the
    generator class, name, footprint, resolved length, seed and ISA.
    """
    return list(trace_cache.trace_key(workload, trace_length, seed, isa))


def grid_cell_ingredients(task: Any) -> dict:
    """Key ingredients for one grid cell (:class:`CellTask`-shaped).

    ``task`` needs ``workload``/``config``/``trace_length``/``seed``/
    ``obs`` attributes; the workload is re-instantiated from the
    registry so the key reflects the *current* spec parameters, and the
    trace-cache key ties the entry to the exact trace the simulator
    would fetch.
    """
    workload = create_workload(task.workload)
    isa = parse_config(task.config).isa_name()
    return {
        "kind": "grid-cell",
        "workload": task.workload,
        "workload_params": workload_params(workload),
        "config": config_params(task.config),
        "trace_length": task.trace_length,
        "seed": task.seed,
        "trace_key": trace_key_params(workload, task.trace_length, task.seed, isa),
        "obs": obs_params(task.obs),
    }
