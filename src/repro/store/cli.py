"""``store`` subcommand: inspect and maintain an experiment store.

Reached as ``python -m repro.experiments store <op>`` (or
``python -m repro.store <op>``)::

    store ls       [--store DIR] [--json]
    store verify   [--store DIR] [--json]
    store gc       [--store DIR] [--max-age-days N] [--quarantine]
                   [--dry-run]
    store export   [--store DIR] --out FILE [KEY_PREFIX ...]

``--store`` defaults to ``$REPRO_STORE`` or ``.repro-store``.  ``verify``
exits nonzero when any entry fails integrity checks, a journal record
dangles, or quarantined files are present -- so CI can gate on a
restored cache before trusting it.  ``export`` bundles entries (whole
envelopes, payload included) into one portable JSON document.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.errors import StoreError
from repro.store.store import DEFAULT_STORE_PATH, ResultStore

EXPORT_KIND = "repro.store.export"


def _resolve_store_path(arg: str | None) -> Path:
    return Path(arg or os.environ.get("REPRO_STORE") or DEFAULT_STORE_PATH)


def _open(args: argparse.Namespace) -> ResultStore:
    path = _resolve_store_path(args.store)
    if not (path / "STORE.json").exists():
        raise StoreError(
            f"no store at {path} (run a sweep with --store {path}, or pass "
            f"--store/--resume; see STORAGE.md)"
        )
    return ResultStore(path)


def _cmd_ls(args: argparse.Namespace) -> int:
    store = _open(args)
    entries = list(store.entries())
    if args.json:
        slim = [{k: v for k, v in e.items() if k != "ingredients"} for e in entries]
        print(json.dumps(slim, indent=2, sort_keys=True))
        return 0
    from repro.experiments.common import format_table

    rows = []
    for entry in entries:
        if "corrupt" in entry:
            rows.append([entry["key"][:12], "CORRUPT", "-", "-", "-", "-", "-"])
            continue
        summary = entry.get("summary", {})
        rows.append(
            [
                entry["key"][:12],
                summary.get("kind", "?"),
                summary.get("workload", "-"),
                summary.get("config", "-"),
                summary.get("seed", "-"),
                summary.get("trace_length", "-"),
                entry.get("created_at", "-"),
            ]
        )
    print(
        format_table(
            ["key", "kind", "workload", "config", "seed", "length", "created"],
            rows,
            title=f"store {store.root}: {len(entries)} entries",
        )
    )
    recovery = store.recovery
    if recovery.actions:
        print(
            f"(recovery on open: {len(recovery.completed)} completed, "
            f"{len(recovery.quarantined)} quarantined, "
            f"{len(recovery.cleared)} cleared)"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = _open(args)
    recovery = store.recovery
    report = store.verify()
    if args.json:
        print(
            json.dumps(
                {
                    "store": str(store.root),
                    "checked": report.checked,
                    "ok": report.ok,
                    "issues": [
                        {"key": i.key, "problem": i.problem, "path": i.path}
                        for i in report.issues
                    ],
                    "quarantined_files": report.quarantined_files,
                    "recovery": {
                        "completed": recovery.completed,
                        "quarantined": recovery.quarantined,
                        "cleared": recovery.cleared,
                    },
                    "clean": report.clean,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"store {store.root}: {report.checked} entries checked, {report.ok} ok")
        if recovery.actions:
            print(
                f"recovery on open: {len(recovery.completed)} dangling "
                f"commits completed, {len(recovery.quarantined)} entries "
                f"quarantined, {len(recovery.cleared)} journal records cleared"
            )
        for issue in report.issues:
            print(f"  PROBLEM {issue.key[:16]}: {issue.problem}")
        if report.quarantined_files:
            print(
                f"  {report.quarantined_files} quarantined file(s) in "
                f"{store.quarantine_dir} (inspect, then `store gc --quarantine`)"
            )
        print("verdict: clean" if report.clean else "verdict: PROBLEMS FOUND")
    return 0 if report.clean else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    store = _open(args)
    removed = store.gc(
        max_age_days=args.max_age_days,
        clear_quarantine=args.quarantine,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(f"store {store.root}: {verb} {len(removed)} entr(y/ies)")
    for key in removed:
        print(f"  {key[:16]}")
    if args.quarantine and not args.dry_run:
        print("quarantine cleared")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    store = _open(args)
    prefixes = tuple(args.keys)
    entries = []
    for path in sorted(store.objects_dir.glob("*/*.json")):
        key = path.stem
        if prefixes and not any(key.startswith(p) for p in prefixes):
            continue
        entries.append(json.loads(path.read_text()))
    bundle = {
        "kind": EXPORT_KIND,
        "schema_version": 1,
        "store": str(store.root),
        "entries": entries,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(bundle, indent=1, sort_keys=True) + "\n")
    print(f"exported {len(entries)} entr(y/ies) to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``store`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments store",
        description="Inspect and maintain a content-addressed experiment store.",
    )
    sub = parser.add_subparsers(dest="op", required=True)

    def add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help=f"store directory (default $REPRO_STORE or {DEFAULT_STORE_PATH})",
        )

    ls = sub.add_parser("ls", help="list stored entries")
    add_store_arg(ls)
    ls.add_argument("--json", action="store_true", help="machine-readable output")
    ls.set_defaults(func=_cmd_ls)

    verify = sub.add_parser("verify", help="full integrity scan (exit 1 on problems)")
    add_store_arg(verify)
    verify.add_argument("--json", action="store_true", help="machine-readable output")
    verify.set_defaults(func=_cmd_verify)

    gc = sub.add_parser("gc", help="remove old entries / clear quarantine")
    add_store_arg(gc)
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="N",
        help="remove entries created more than N days ago",
    )
    gc.add_argument(
        "--quarantine",
        action="store_true",
        help="also empty the quarantine directory",
    )
    gc.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    gc.set_defaults(func=_cmd_gc)

    export = sub.add_parser("export", help="bundle entries into one JSON file")
    add_store_arg(export)
    export.add_argument("--out", required=True, metavar="FILE", help="bundle path")
    export.add_argument(
        "keys", nargs="*", help="optional key prefixes to select entries"
    )
    export.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output truncated by a closed pager/head pipe; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
