"""The content-addressed, on-disk experiment result store.

One entry per simulation cell, addressed by the digest of everything
that determines its result (:mod:`repro.store.keys`).  Layout::

    <root>/
        STORE.json            # format marker: kind + schema version
        journal.jsonl         # write-ahead journal (begin/commit pairs)
        objects/<k[:2]>/<key>.json    # one JSON envelope per entry
        quarantine/           # corrupted envelopes, moved aside
        sweeps/               # sweep completion journals (repro.sched)

Durability and correctness contract:

* **Atomic writes** -- an entry is staged to a temp file in the same
  directory, fsynced, then ``os.replace``\\ d into place; readers never
  see a half-written object under its final name.
* **Write-ahead journal** -- every put appends a ``begin`` record
  before staging and a ``commit`` record after the rename.  On open,
  recovery replays the journal: a dangling ``begin`` whose object file
  verifies is completed (the crash hit between rename and commit);
  one whose object is damaged or missing is quarantined/cleared.
* **Quarantine, never trust** -- any read-path integrity failure
  (unparsable envelope, checksum mismatch, undecodable payload) moves
  the file into ``quarantine/`` and degrades to a miss
  (:class:`~repro.errors.StoreCorruptionError` is caught internally,
  per the degradable-failure contract of :mod:`repro.errors`).  A
  damaged store costs recomputation, never wrong results.

Payloads are pickled (every experiment result is picklable -- the
parallel sweep runner already ships them across process boundaries),
zlib-compressed and base64-embedded in a JSON envelope beside a SHA-256
checksum and the full ingredients dict, so ``store ls``/``verify`` can
inspect entries without unpickling.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import StoreCorruptionError, StoreError

#: On-disk schema version; bump on any incompatible envelope change.
SCHEMA_VERSION = 1

STORE_KIND = "repro.store"
ENTRY_KIND = "repro.store.entry"

#: Default store location (relative to the invoking cwd); override with
#: ``--store DIR`` or the ``REPRO_STORE`` environment variable.
DEFAULT_STORE_PATH = ".repro-store"

_PAYLOAD_CODEC = "pickle+zlib+b64"

#: Transient-``OSError`` retry budget for one commit (journal append or
#: object rename); mirrors the frame allocator's bounded exponential
#: backoff (``MAX_ALLOC_RETRIES``/``BACKOFF_BASE_CYCLES``), but in wall
#: time: 2 ms doubling per attempt, ~½ s total before giving up.
MAX_COMMIT_RETRIES = 8
COMMIT_BACKOFF_BASE_S = 0.002


@dataclass
class StoreStats:
    """Lifetime operation counts of one store handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    #: Dangling journal records completed or cleared during recovery.
    recovered: int = 0
    #: Transient commit failures retried with backoff (multi-writer
    #: journal/rename contention); each retry that eventually succeeds
    #: still counts.
    commit_retries: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
            "recovered": self.recovered,
            "commit_retries": self.commit_retries,
        }


@dataclass(frozen=True)
class VerifyIssue:
    """One problem ``verify`` found (or recovery handled)."""

    key: str
    problem: str
    path: str = ""


@dataclass
class VerifyReport:
    """Outcome of a full store integrity scan."""

    checked: int = 0
    ok: int = 0
    issues: list[VerifyIssue] = field(default_factory=list)
    quarantined_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.issues and not self.quarantined_files


@dataclass
class RecoveryReport:
    """What journal replay did when the store was opened."""

    #: Dangling begins whose object verified: commit was re-appended.
    completed: list[str] = field(default_factory=list)
    #: Dangling begins whose object was damaged: moved to quarantine.
    quarantined: list[str] = field(default_factory=list)
    #: Dangling begins with no object file at all (crash before staging).
    cleared: list[str] = field(default_factory=list)

    @property
    def actions(self) -> int:
        return len(self.completed) + len(self.quarantined) + len(self.cleared)


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (rename durability on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + replace)."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def encode_payload(value: Any) -> tuple[str, str, int]:
    """(base64 text, sha256 of compressed bytes, raw pickle size)."""
    raw = pickle.dumps(value, protocol=4)
    compressed = zlib.compress(raw, level=6)
    return (
        base64.b64encode(compressed).decode("ascii"),
        hashlib.sha256(compressed).hexdigest(),
        len(raw),
    )


def decode_payload(envelope: dict) -> Any:
    """Inverse of :func:`encode_payload`; integrity-checked.

    Raises :class:`StoreCorruptionError` on any mismatch -- the caller
    (the store's read path) quarantines and degrades to a miss.
    """
    codec = envelope.get("payload_codec")
    if codec != _PAYLOAD_CODEC:
        raise StoreCorruptionError(f"unknown payload codec {codec!r}")
    try:
        compressed = base64.b64decode(envelope["payload"], validate=True)
    except (KeyError, ValueError, TypeError) as exc:
        raise StoreCorruptionError(f"payload not decodable: {exc}") from exc
    checksum = hashlib.sha256(compressed).hexdigest()
    if checksum != envelope.get("payload_sha256"):
        raise StoreCorruptionError(
            f"payload checksum mismatch: stored "
            f"{envelope.get('payload_sha256')!r}, computed {checksum!r}"
        )
    try:
        return pickle.loads(zlib.decompress(compressed))
    except Exception as exc:
        raise StoreCorruptionError(f"payload not unpicklable: {exc}") from exc


class ResultStore:
    """Content-addressed store of experiment cell results.

    ``metrics`` optionally mirrors operation counts into a
    :class:`repro.obs.metrics.MetricsRegistry` under ``store.*``
    (hits/misses/puts/quarantined), matching the trace-cache pattern.
    """

    def __init__(
        self,
        root: Path | str,
        metrics: Any = None,
        recover: bool = True,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics
        self.stats = StoreStats()
        self._init_layout()
        self.recovery = self._recover() if recover else RecoveryReport()

    # -- layout ---------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def sweeps_dir(self) -> Path:
        return self.root / "sweeps"

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def marker_path(self) -> Path:
        return self.root / "STORE.json"

    def _init_layout(self) -> None:
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store path {self.root} is not a directory")
        if self.root.is_dir() and not self.marker_path.exists():
            # Refuse to adopt an arbitrary populated directory: gc and
            # quarantine move/delete files under root.
            if any(self.root.iterdir()):
                raise StoreError(
                    f"{self.root} exists, is not empty, and has no "
                    f"STORE.json marker; refusing to use it as a store"
                )
        self.root.mkdir(parents=True, exist_ok=True)
        for sub in (self.objects_dir, self.quarantine_dir, self.sweeps_dir):
            sub.mkdir(exist_ok=True)
        if not self.marker_path.exists():
            _atomic_write_text(
                self.marker_path,
                json.dumps(
                    {
                        "kind": STORE_KIND,
                        "schema_version": SCHEMA_VERSION,
                        "created_at": _now_iso(),
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        else:
            try:
                marker = json.loads(self.marker_path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store marker: {exc}") from exc
            if marker.get("kind") != STORE_KIND:
                raise StoreError(
                    f"{self.marker_path} is not a {STORE_KIND} marker"
                )
            if marker.get("schema_version") != SCHEMA_VERSION:
                raise StoreError(
                    f"store schema {marker.get('schema_version')!r} != "
                    f"supported {SCHEMA_VERSION}; delete or migrate {self.root}"
                )

    def object_path(self, key: str) -> Path:
        _check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- journal --------------------------------------------------------

    def _append_journal(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _read_journal(self) -> list[dict]:
        """Journal records, tolerating a torn trailing line (crash
        mid-append leaves a partial last line; everything before it is
        intact because records are appended with fsync)."""
        if not self.journal_path.exists():
            return []
        records = []
        for line in self.journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail: nothing after it was durable
            if isinstance(record, dict):
                records.append(record)
        return records

    def _compact_journal(self) -> None:
        """Rewrite the journal to empty: every live entry is committed
        on disk (the objects themselves are the durable state), so after
        recovery the journal only needs to cover future writes."""
        _atomic_write_text(self.journal_path, "")

    def _recover(self) -> RecoveryReport:
        report = RecoveryReport()
        records = self._read_journal()
        if not records:
            return report
        committed = {r["key"] for r in records if r.get("op") == "commit" and "key" in r}
        dangling = [
            r["key"]
            for r in records
            if r.get("op") == "begin"
            and "key" in r
            and r["key"] not in committed
        ]
        for key in dict.fromkeys(dangling):  # preserve order, dedup
            try:
                path = self.object_path(key)
            except StoreError:
                report.cleared.append(key)
                continue
            if not path.exists():
                # Crashed before the staged file was renamed in; the
                # temp file (if any) is unreachable garbage.
                report.cleared.append(key)
                self.stats.recovered += 1
                continue
            try:
                envelope = self._load_envelope(path, key)
                decode_payload(envelope)
            except StoreCorruptionError as exc:
                self._quarantine(path, key, str(exc))
                report.quarantined.append(key)
                continue
            report.completed.append(key)
            self.stats.recovered += 1
        self._compact_journal()
        return report

    # -- read/write -----------------------------------------------------

    def contains(self, key: str) -> bool:
        """Entry present (no integrity check -- ``get`` does that)."""
        return self.object_path(key).exists()

    def get(self, key: str) -> Any | None:
        """The stored value, or None on miss *or* quarantined corruption."""
        path = self.object_path(key)
        if not path.exists():
            self._count("misses")
            return None
        try:
            envelope = self._load_envelope(path, key)
            value = decode_payload(envelope)
        except StoreCorruptionError as exc:
            self._quarantine(path, key, str(exc))
            self._count("misses")
            return None
        self._count("hits")
        return value

    def put(self, key: str, value: Any, ingredients: dict) -> bool:
        """Persist one entry; returns False when it already existed.

        Content addressing makes puts idempotent: an existing entry for
        ``key`` is by construction the same result, so it is left
        untouched (and not re-journaled).
        """
        path = self.object_path(key)
        if path.exists():
            return False
        payload, checksum, raw_size = encode_payload(value)
        envelope = {
            "kind": ENTRY_KIND,
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "created_at": _now_iso(),
            "ingredients": ingredients,
            "summary": _entry_summary(ingredients, raw_size),
            "payload_codec": _PAYLOAD_CODEC,
            "payload_sha256": checksum,
            "payload": payload,
        }
        self._retry_transient(
            lambda: self._append_journal(
                {"op": "begin", "key": key, "ts": _now_iso()}
            ),
            f"journal begin for {key[:12]}",
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, indent=1, sort_keys=True) + "\n"
        self._retry_transient(
            lambda: _atomic_write_text(path, text),
            f"object write for {key[:12]}",
        )
        self._retry_transient(
            lambda: self._append_journal({"op": "commit", "key": key}),
            f"journal commit for {key[:12]}",
        )
        self._count("puts")
        return True

    def _retry_transient(self, operation: Any, what: str) -> None:
        """Run one commit step, retrying transient ``OSError`` with
        bounded exponential backoff (multi-writer contention: advisory
        locks, NFS-ish rename hiccups, EAGAIN on the journal append).
        Exhausting the budget raises :class:`StoreError` -- the entry is
        simply not durable, never half-written (every step is atomic).
        """
        delay = COMMIT_BACKOFF_BASE_S
        for attempt in range(MAX_COMMIT_RETRIES + 1):
            try:
                operation()
                return
            except OSError as exc:
                if attempt == MAX_COMMIT_RETRIES:
                    raise StoreError(
                        f"{what} failed after {MAX_COMMIT_RETRIES} "
                        f"retries: {exc}"
                    ) from exc
                self._count("commit_retries")
                time.sleep(delay)
                delay *= 2

    def _load_envelope(self, path: Path, key: str | None = None) -> dict:
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreCorruptionError(f"unparsable envelope: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("kind") != ENTRY_KIND:
            raise StoreCorruptionError(
                f"not a {ENTRY_KIND} document: {path.name}"
            )
        if envelope.get("schema_version") != SCHEMA_VERSION:
            raise StoreCorruptionError(
                f"entry schema {envelope.get('schema_version')!r} != "
                f"{SCHEMA_VERSION}"
            )
        if key is not None and envelope.get("key") != key:
            raise StoreCorruptionError(
                f"envelope key {envelope.get('key')!r} does not match "
                f"file name {key!r}"
            )
        return envelope

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        self.quarantine_dir.mkdir(exist_ok=True)
        target = self.quarantine_dir / f"{key}.{int(time.time() * 1e6)}.json"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - already gone
            pass
        note = target.with_suffix(".reason")
        try:
            note.write_text(reason + "\n")
        except OSError:  # pragma: no cover - defensive
            pass
        self.stats.quarantined += 1
        self._count("quarantined", bump_stats=False)

    # -- inspection -----------------------------------------------------

    def keys(self) -> list[str]:
        """Every stored key, sorted."""
        return sorted(p.stem for p in self.objects_dir.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.objects_dir.glob("*/*.json"))

    def entries(self) -> Iterator[dict]:
        """Envelopes without their payload text (for ls/verify views).

        Unparsable files yield a stub with a ``corrupt`` marker instead
        of raising, so inspection always covers the whole store.
        """
        for path in sorted(self.objects_dir.glob("*/*.json")):
            try:
                envelope = self._load_envelope(path, path.stem)
            except StoreCorruptionError as exc:
                yield {
                    "key": path.stem,
                    "corrupt": str(exc),
                    "path": str(path),
                }
                continue
            out = {k: v for k, v in envelope.items() if k != "payload"}
            out["path"] = str(path)
            out["file_bytes"] = path.stat().st_size
            yield out

    def verify(self) -> VerifyReport:
        """Full integrity scan: every envelope parsed, checksummed and
        unpickled; dangling journal begins reported.  Read-only -- no
        quarantining -- so CI can gate on the report without mutating
        the cache it just restored."""
        report = VerifyReport()
        for path in sorted(self.objects_dir.glob("*/*.json")):
            report.checked += 1
            key = path.stem
            try:
                envelope = self._load_envelope(path, key)
                decode_payload(envelope)
            except StoreCorruptionError as exc:
                report.issues.append(
                    VerifyIssue(key=key, problem=str(exc), path=str(path))
                )
                continue
            report.ok += 1
        committed = set()
        begins = []
        for record in self._read_journal():
            if record.get("op") == "commit":
                committed.add(record.get("key"))
            elif record.get("op") == "begin":
                begins.append(record.get("key"))
        for key in begins:
            if key not in committed:
                report.issues.append(
                    VerifyIssue(
                        key=str(key),
                        problem="dangling journal begin (no commit record)",
                    )
                )
        report.quarantined_files = sum(
            1 for _ in self.quarantine_dir.glob("*.json")
        )
        return report

    # -- garbage collection --------------------------------------------

    def gc(
        self,
        max_age_days: float | None = None,
        keep: set[str] | None = None,
        clear_quarantine: bool = False,
        dry_run: bool = False,
    ) -> list[str]:
        """Remove entries by age and/or keep-set; returns removed keys.

        Policy (STORAGE.md): an entry is removed when it is older than
        ``max_age_days`` (by ``created_at``) *and* not in ``keep``; with
        no ``max_age_days``, only entries outside an explicit ``keep``
        set are removed (``keep=None`` keeps everything).  Completed
        sweep journals older than the age limit are dropped too, and
        ``clear_quarantine`` empties the quarantine directory.
        """
        removed: list[str] = []
        cutoff = None
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
        for path in sorted(self.objects_dir.glob("*/*.json")):
            key = path.stem
            if keep is not None and key in keep:
                continue
            if cutoff is not None:
                created = _entry_timestamp(path)
                if created is None or created >= cutoff:
                    continue
            elif keep is None:
                continue  # no policy given: remove nothing
            removed.append(key)
            if not dry_run:
                path.unlink(missing_ok=True)
        if not dry_run:
            if cutoff is not None:
                for sweep in self.sweeps_dir.glob("*.jsonl"):
                    if sweep.stat().st_mtime < cutoff:
                        sweep.unlink(missing_ok=True)
            if clear_quarantine:
                for path in self.quarantine_dir.iterdir():
                    path.unlink(missing_ok=True)
            self._compact_journal()
        return removed

    # -- plumbing -------------------------------------------------------

    def _count(self, name: str, bump_stats: bool = True) -> None:
        if bump_stats:
            setattr(self.stats, name, getattr(self.stats, name) + 1)
        m = self.metrics
        if m is not None and getattr(m, "enabled", False):
            m.inc(f"store.{name}")


def _check_key(key: str) -> None:
    if (
        not isinstance(key, str)
        or len(key) < 8
        or any(c not in "0123456789abcdef" for c in key)
    ):
        raise StoreError(f"malformed store key {key!r}")


def _now_iso() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S%z")


def _entry_summary(ingredients: dict, raw_size: int) -> dict:
    """Small human-readable facts for ``store ls`` (best effort)."""
    summary = {"payload_bytes": raw_size}
    for name in ("kind", "workload", "trace_length", "seed"):
        if name in ingredients:
            summary[name] = ingredients[name]
    config = ingredients.get("config")
    if isinstance(config, dict) and "label" in config:
        summary["config"] = config["label"]
    elif isinstance(config, str):
        summary["config"] = config
    return summary


def _entry_timestamp(path: Path) -> float | None:
    """The entry's created_at as epoch seconds (None if unreadable)."""
    try:
        envelope = json.loads(path.read_text())
        created = envelope.get("created_at", "")
        return time.mktime(time.strptime(created[:19], "%Y-%m-%dT%H:%M:%S"))
    except (OSError, ValueError, TypeError):
        return None
