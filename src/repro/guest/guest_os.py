"""The guest operating system: demand paging, segments, THP, emulation.

This models the Linux-side software of the prototype (Section VI):

* a physical-frame allocator over the guest-physical layout (with the
  x86-64 I/O gap);
* per-process 4-level page tables, demand-paged on fault;
* primary-region registration and guest-segment creation from contiguous
  guest physical memory (Sections II.B, III.C);
* transparent huge pages (THP) for compute workloads (Section VIII);
* the prototype's *emulation mode* (Section VI.B): with no segment
  hardware, page faults into a direct segment install dynamically
  computed PTEs (gPA = gVA + OFFSET), giving a functionally identical
  mapping that tests verify against the hardware segment path;
* a page-table pool placed inside the VMM direct segment so that guest
  page-walk references themselves resolve through the segment
  (Section III.B's guest kernel module).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.address import (
    BASE_PAGE_SIZE,
    MIB,
    AddressRange,
    PageSize,
    align_down,
    page_number,
)
from repro.core.segments import SegmentRegisters
from repro.guest.process import GuestProcess, VirtualMemoryArea
from repro.errors import SegmentCreationError, SwapError
from repro.mem.frame_allocator import FrameAllocator, OutOfMemoryError
from repro.mem.page_table import PageTable
from repro.mem.physical_layout import PhysicalLayout

# SegmentCreationError and SwapError historically lived here; they are
# re-exported from repro.errors so existing imports keep working.
__all__ = ["GuestOS", "GuestOSConfig", "SegmentCreationError", "SwapError"]


@dataclass
class GuestOSConfig:
    """Knobs of the modelled guest kernel."""

    #: Use transparent huge pages: faults try 2 MB allocations first.
    thp: bool = False
    #: Probability a THP allocation finds an aligned 2 MB block; models
    #: the fragmentation-induced fallback to 4 KB pages real THP suffers.
    thp_success_fraction: float = 0.95
    #: Emulate segments with computed PTEs instead of segment hardware
    #: (the prototype of Section VI.B).
    emulate_segments: bool = False
    #: Size of the page-table frame pool, reserved contiguously so the
    #: guest's page tables can sit inside the VMM direct segment.
    pt_pool_bytes: int = 64 * MIB


class GuestOS:
    """One guest kernel instance (also reused as the native OS).

    ``layout`` describes the (guest-)physical address space.  Frames for
    page tables come from a contiguous pool reserved at boot; ``pt_pool_hint``
    restricts where that pool lives (pass the prospective VMM-segment
    range so walks of the guest page table are segment-resolvable).
    """

    def __init__(
        self,
        layout: PhysicalLayout,
        config: GuestOSConfig | None = None,
        pt_pool_hint: AddressRange | None = None,
        seed: int = 0,
        geometry=None,
    ) -> None:
        from repro.isa.geometry import X86_64

        self.layout = layout
        self.config = config or GuestOSConfig()
        #: Translation geometry process page tables are built with.
        self.geometry = geometry or X86_64
        self.allocator = FrameAllocator(layout.regions)
        self._rng = random.Random(seed)
        self._next_pid = 1
        self.processes: dict[int, GuestProcess] = {}
        self.page_tables: dict[int, PageTable] = {}
        self._pt_pool = self._reserve_pt_pool(pt_pool_hint)
        #: Pages swapped to (modelled) disk: (pid, gva_page) keys.
        self._swapped: set[tuple[int, int]] = set()
        #: Counters a real kernel would expose; tests assert on these.
        self.minor_faults = 0
        self.major_faults = 0
        self.swap_outs = 0
        self.thp_fallbacks = 0

    # ------------------------------------------------------------------
    # Boot-time reservations

    def _reserve_pt_pool(self, hint: AddressRange | None) -> list[int]:
        frames = self.config.pt_pool_bytes // BASE_PAGE_SIZE
        within = None
        if hint is not None:
            within = AddressRange(
                page_number(hint.start), page_number(hint.end)
            )
        try:
            start = self.allocator.reserve_contiguous(frames, within=within)
        except OutOfMemoryError:
            start = self.allocator.reserve_contiguous(frames)
        return list(range(start, start + frames))

    def _alloc_pt_frame(self) -> int:
        if self._pt_pool:
            return self._pt_pool.pop()
        return self.allocator.alloc_frame()

    # ------------------------------------------------------------------
    # Processes

    def spawn(self, page_size: PageSize = PageSize.SIZE_4K) -> GuestProcess:
        """Create a process with an empty address space and page table."""
        pid = self._next_pid
        self._next_pid += 1
        process = GuestProcess(pid=pid, page_size=page_size)
        self.processes[pid] = process
        self.page_tables[pid] = PageTable(self._alloc_pt_frame, geometry=self.geometry)
        return process

    def page_table_of(self, process: GuestProcess) -> PageTable:
        """The gPT of ``process``."""
        return self.page_tables[process.pid]

    # ------------------------------------------------------------------
    # Demand paging

    def handle_page_fault(self, process: GuestProcess, gva: int) -> None:
        """Service a guest page fault at ``gva`` (minor fault path).

        In emulation mode, faults inside the guest segment install a
        *computed* PTE (gVA + OFFSET_G) rather than allocating a frame --
        Section VI.B's technique for running the design on current
        hardware.
        """
        vma = process.vma_at(gva)
        if vma is None:
            raise MemoryError(f"guest SEGV at {gva:#x} (pid {process.pid})")
        gva_4k = align_down(gva, PageSize.SIZE_4K)
        if (process.pid, gva_4k) in self._swapped:
            # Major fault: bring the page back from swap (fresh frame;
            # we do not model the data transfer, only residency).
            self._swapped.discard((process.pid, gva_4k))
            self.major_faults += 1
            frame = self.allocator.alloc_frame()
            self.page_tables[process.pid].map(
                gva_4k, frame * BASE_PAGE_SIZE, PageSize.SIZE_4K
            )
            return
        self.minor_faults += 1
        table = self.page_tables[process.pid]
        segment = process.guest_segment
        if segment.enabled and segment.covers(gva):
            gva_page = align_down(gva, PageSize.SIZE_4K)
            filtered = process.guest_escape_filter.may_contain(
                page_number(gva_page)
            )
            if self.config.emulate_segments or filtered:
                # Emulation mode (Section VI.B), or a page the guest
                # escape filter diverts to paging (genuinely escaped or
                # a false positive): either way the PTE must reproduce
                # the segment's computed translation.
                gpa = segment.translate_unchecked(gva_page)
                table.map(gva_page, gpa, PageSize.SIZE_4K)
                return
        self._map_anonymous(table, vma, gva)

    def _map_anonymous(
        self, table: PageTable, vma: VirtualMemoryArea, gva: int
    ) -> None:
        page_size = vma.page_size
        if self.config.thp and page_size == PageSize.SIZE_4K:
            if self._rng.random() < self.config.thp_success_fraction:
                page_size = PageSize.SIZE_2M
            else:
                self.thp_fallbacks += 1
        while True:
            try:
                order = {
                    PageSize.SIZE_4K: 0,
                    PageSize.SIZE_2M: 9,
                    PageSize.SIZE_1G: 18,
                }[page_size]
                frame = self.allocator.alloc_block(order)
                break
            except OutOfMemoryError:
                if page_size == PageSize.SIZE_4K:
                    raise
                # Fall back to the next smaller size (as Linux does).
                page_size = (
                    PageSize.SIZE_2M
                    if page_size == PageSize.SIZE_1G
                    else PageSize.SIZE_4K
                )
        gva_page = align_down(gva, page_size)
        if table.is_mapped(gva):
            # Another mapping already covers the faulting address.
            self.allocator.free_block(frame)
            return
        try:
            table.map(gva_page, frame * BASE_PAGE_SIZE, page_size)
        except ValueError:
            # A THP-sized mapping collided with an existing 4 KB
            # subtree under the same PD slot; real THP cannot collapse
            # on the fault path either, so fall back to a 4 KB page.
            self.allocator.free_block(frame)
            if page_size is PageSize.SIZE_4K:
                raise
            self.thp_fallbacks += 1
            small = self.allocator.alloc_frame()
            table.map(
                align_down(gva, PageSize.SIZE_4K),
                small * BASE_PAGE_SIZE,
                PageSize.SIZE_4K,
            )

    def populate_vma(self, process: GuestProcess, vma: VirtualMemoryArea) -> int:
        """Eagerly fault in every page of ``vma`` (big-memory apps touch
        their whole arena at startup; the paper measures steady state).

        Pages covered by an active *hardware* guest segment need no PTEs
        and are skipped unless emulation mode is on.  Returns the number
        of fault-handler invocations performed.
        """
        table = self.page_tables[process.pid]
        segment = process.guest_segment
        hw_segment = segment.enabled and not self.config.emulate_segments
        faults = 0
        step = int(vma.page_size)
        va = vma.range.start
        while va < vma.range.end:
            if hw_segment and segment.covers(va):
                va += int(PageSize.SIZE_4K)
                continue
            if not table.is_mapped(va):
                self.handle_page_fault(process, va)
                faults += 1
                # THP (or fallback) may have mapped a different size than
                # the VMA's nominal one; advance by what actually mapped.
                walked = table.lookup(va)
                assert walked is not None
                va = align_down(va, walked.page_size) + int(walked.page_size)
                continue
            va += step
        return faults

    # ------------------------------------------------------------------
    # Guest segments (Sections II.B / III.C)

    def create_guest_segment(
        self,
        process: GuestProcess,
        size: int | None = None,
        within: AddressRange | None = None,
    ) -> SegmentRegisters:
        """Back the process's primary region with contiguous guest memory.

        Reserves ``size`` bytes (default: the whole primary region) of
        contiguous guest physical memory and programs the per-process
        guest segment registers.  Raises :class:`SegmentCreationError`
        when guest physical memory is too fragmented -- the situation
        self-ballooning exists to fix.
        """
        primary = process.primary_region
        if primary is None:
            raise SegmentCreationError("process has no primary region")
        size = size if size is not None else primary.range.size
        if size > primary.range.size:
            raise SegmentCreationError("segment larger than primary region")
        frames = size // BASE_PAGE_SIZE
        frame_within = None
        if within is not None:
            frame_within = AddressRange(
                page_number(within.start), page_number(within.end)
            )
        try:
            start_frame = self.allocator.reserve_contiguous(
                frames, within=frame_within
            )
        except OutOfMemoryError as exc:
            raise SegmentCreationError(
                f"no contiguous {size} bytes of guest physical memory"
            ) from exc
        registers = SegmentRegisters.mapping(
            AddressRange.of_size(primary.range.start, size),
            start_frame * BASE_PAGE_SIZE,
        )
        process.guest_segment = registers
        return registers

    def drop_guest_segment(self, process: GuestProcess) -> None:
        """Tear down the process's guest segment, freeing its memory."""
        registers = process.guest_segment
        if not registers.enabled:
            return
        start_frame = page_number(registers.base + registers.offset)
        self.allocator.free_contiguous(start_frame, registers.size // BASE_PAGE_SIZE)
        process.guest_segment = SegmentRegisters.disabled()

    def escape_guard_page(
        self, process: GuestProcess, gva: int, writable: bool = False
    ) -> None:
        """Give one page inside the guest segment different protection.

        Section V: the escape filter "can also implement a limited
        number of pages with different protection, such as guard
        pages".  The page escapes segment translation through the
        guest-level filter, and the guest OS installs a conventional
        PTE carrying the desired permissions (preserving the segment's
        computed gPA, so data placement is unchanged).
        """
        segment = process.guest_segment
        if not segment.enabled or not segment.covers(gva):
            raise ValueError(
                f"guard page {gva:#x} is not inside the guest segment"
            )
        gva_page = align_down(gva, PageSize.SIZE_4K)
        process.guest_escape_filter.insert(page_number(gva_page))
        table = self.page_tables[process.pid]
        gpa = segment.translate_unchecked(gva_page)
        if table.is_mapped(gva_page):
            table.unmap(gva_page)
        table.map(gva_page, gpa, PageSize.SIZE_4K, writable=writable)
        # Any false positives the insertion creates must also be
        # backed by PTEs (same contract as the VMM-level filter); map
        # them lazily via the fault handler, which computes the same
        # gPA the segment would have.

    def swap_out(self, process: GuestProcess, gva: int) -> None:
        """Evict one page to (modelled) swap, freeing its guest frame.

        Only pages with PTEs can be swapped: segment-covered addresses
        raise :class:`SwapError` (Table II's 'limited' guest swapping
        for Dual/Guest Direct).  A later access refaults the page in.
        """
        if not self.can_swap_out(process, gva):
            raise SwapError(
                f"{gva:#x} is segment-covered; no PTE exists to evict "
                f"(Table II: guest swapping limited)"
            )
        gva_page = align_down(gva, PageSize.SIZE_4K)
        table = self.page_tables[process.pid]
        walked = table.lookup(gva_page)
        if walked is None:
            raise SwapError(f"{gva:#x} is not resident")
        if walked.page_size != PageSize.SIZE_4K:
            # Linux splits huge pages before swapping; model the result:
            # free the huge frame and remap the other 4K pieces.
            base = align_down(gva_page, walked.page_size)
            table.unmap(base)
            self.allocator.free_block(walked.frame)
            for offset in range(walked.page_size.base_pages):
                piece = base + offset * int(PageSize.SIZE_4K)
                if piece == gva_page:
                    continue
                frame = self.allocator.alloc_frame()
                table.map(piece, frame * BASE_PAGE_SIZE, PageSize.SIZE_4K)
        else:
            table.unmap(gva_page)
            self.allocator.free_block(walked.frame)
        self._swapped.add((process.pid, gva_page))
        self.swap_outs += 1

    def is_swapped(self, process: GuestProcess, gva: int) -> bool:
        """True if the page was evicted and not yet faulted back."""
        return (process.pid, align_down(gva, PageSize.SIZE_4K)) in self._swapped

    def can_swap_out(self, process: GuestProcess, gva: int) -> bool:
        """Guest swapping needs a PTE to invalidate; guest-segment-
        covered addresses have none (Table II: guest swapping 'limited'
        for Dual Direct and Guest Direct).  In emulation mode every
        mapping is a real PTE, so swapping works everywhere.
        """
        if self.config.emulate_segments:
            return True
        segment = process.guest_segment
        return not (segment.enabled and segment.covers(gva))

    # ------------------------------------------------------------------
    # Context switches (Section III.C)

    def context_switch(
        self, old: GuestProcess | None, new: GuestProcess
    ) -> SegmentRegisters:
        """Return the segment registers to load for ``new``.

        Hardware must save/restore BASE_G/LIMIT_G/OFFSET_G along with
        other process state; the caller (the simulated machine) installs
        the returned registers into the walker.
        """
        return new.guest_segment
