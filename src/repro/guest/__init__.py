"""Guest OS model: processes, demand paging, segments, balloon, hotplug."""
