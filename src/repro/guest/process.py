"""Guest process address spaces and the primary-region abstraction.

Section II.B: big-memory applications expose a *primary region* to the
OS -- one contiguous chunk of virtual address space mapped with uniform
permissions (the application's heap / data arena).  A direct segment may
map all or part of a primary region; the rest of the address space stays
paged for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address import GIB, AddressRange, PageSize, align_up
from repro.core.escape_filter import EscapeFilter
from repro.core.segments import SegmentRegisters

#: Where process heaps start in our guest virtual layout (arbitrary but
#: page-table-friendly: a high user-space address).
DEFAULT_PRIMARY_REGION_BASE = 16 * GIB


@dataclass
class VirtualMemoryArea:
    """One mapped region of a process (a simplified Linux VMA)."""

    range: AddressRange
    page_size: PageSize = PageSize.SIZE_4K
    is_primary_region: bool = False
    writable: bool = True


@dataclass
class GuestProcess:
    """A process inside the guest: VMAs, preferred page size, segment state.

    The guest OS owns the page table; the process records layout and the
    per-process guest segment registers (saved/restored by the guest OS
    on context switch, Section III.C).
    """

    pid: int
    page_size: PageSize = PageSize.SIZE_4K
    vmas: list[VirtualMemoryArea] = field(default_factory=list)
    #: Per-process guest direct-segment registers (gVA -> gPA).
    guest_segment: SegmentRegisters = field(default_factory=SegmentRegisters.disabled)
    #: Guest-level escape filter (Section V: "it may be useful to have
    #: escape filters at both levels so the guest OS can escape pages
    #: as well") -- used for guard pages and other pages needing
    #: different protection inside a primary region.  Saved/restored
    #: with the segment registers on context switch.
    guest_escape_filter: EscapeFilter = field(default_factory=EscapeFilter)

    def mmap(
        self,
        size: int,
        page_size: PageSize | None = None,
        is_primary_region: bool = False,
    ) -> VirtualMemoryArea:
        """Map a new region after the last existing one.

        Returns the created VMA.  ``size`` is rounded up to the page size.
        """
        page_size = page_size or self.page_size
        start = self._next_free_address(page_size)
        size = align_up(size, page_size)
        vma = VirtualMemoryArea(
            range=AddressRange.of_size(start, size),
            page_size=page_size,
            is_primary_region=is_primary_region,
        )
        self.vmas.append(vma)
        return vma

    def _next_free_address(self, page_size: PageSize) -> int:
        if not self.vmas:
            return DEFAULT_PRIMARY_REGION_BASE
        # Leave a guard gap of one page size between regions.
        return align_up(self.vmas[-1].range.end + int(page_size), page_size)

    def vma_at(self, address: int) -> VirtualMemoryArea | None:
        """The VMA covering ``address``, or None (a SEGV in real life)."""
        for vma in self.vmas:
            if address in vma.range:
                return vma
        return None

    @property
    def primary_region(self) -> VirtualMemoryArea | None:
        """The process's primary region, if it declared one."""
        for vma in self.vmas:
            if vma.is_primary_region:
                return vma
        return None

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of mapped virtual address space."""
        return sum(vma.range.size for vma in self.vmas)
