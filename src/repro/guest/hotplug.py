"""Memory hotplug and the I/O-gap reclaim optimization.

Section IV: the x86-64 I/O gap (3-4 GB) splits guest physical memory
into a ~3 GB region below it and the rest above, so no single direct
segment can cover all guest memory.  The fix (prototyped in Section
VI.C): hot-*unplug* most memory below the gap -- hot-unplug, unlike
ballooning, removes *specific* addresses -- keep 256 MB for the kernel,
and extend the memory above the gap by the unplugged amount.  One
segment can then map almost everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.address import BASE_PAGE_SIZE, AddressRange, format_size
from repro.guest.guest_os import GuestOS
from repro.mem.physical_layout import (
    IO_GAP_START,
    KERNEL_RESERVED_BELOW_GAP,
)


class HotplugPort(Protocol):
    """VMM operations behind guest hotplug (KVM slot adjustments)."""

    def shrink_below_gap_slot(self, removed: AddressRange) -> None:
        """The guest stopped using ``removed``; free its host backing."""

    def extend_above_gap_slot(self, num_frames: int) -> AddressRange:
        """Grow the >4 GB slot by ``num_frames``; returns the new range."""


class HotplugError(Exception):
    """The requested hotplug operation cannot be performed."""


@dataclass(frozen=True)
class IoGapReclaimResult:
    """Outcome of the I/O-gap reclaim."""

    removed: AddressRange
    added: AddressRange

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"unplugged {format_size(self.removed.size)} below the I/O gap, "
            f"extended above-gap memory by {format_size(self.added.size)}"
        )


def reclaim_io_gap(
    guest_os: GuestOS,
    port: HotplugPort,
    keep_below_gap: int = KERNEL_RESERVED_BELOW_GAP,
) -> IoGapReclaimResult:
    """Relocate below-gap guest memory to the end of the address space.

    Must run early in boot, while below-gap memory (beyond the kernel's
    ``keep_below_gap``) is still free; raises :class:`HotplugError` if
    the range is already in use.  After the call the guest allocator's
    memory above 4 GB is one long contiguous range, ready to back a
    single VMM (and/or guest) direct segment.
    """
    below_gap_top = min(IO_GAP_START, guest_os.layout.total_memory)
    if below_gap_top <= keep_below_gap:
        raise HotplugError("guest has no removable memory below the I/O gap")
    removed = AddressRange(keep_below_gap, below_gap_top)
    try:
        guest_os.allocator.unplug_range(removed)
    except Exception as exc:
        raise HotplugError(
            f"below-gap range {removed!r} is not entirely free: {exc}"
        ) from exc
    port.shrink_below_gap_slot(removed)
    num_frames = removed.size // BASE_PAGE_SIZE
    added = port.extend_above_gap_slot(num_frames)
    guest_os.allocator.add_region(added)
    return IoGapReclaimResult(removed=removed, added=added)
