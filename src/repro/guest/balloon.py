"""Self-ballooning: contiguous guest physical memory without compaction.

Section IV / Figure 9: when fragmented free guest physical memory
prevents guest-segment creation, self-ballooning builds contiguity in two
steps instead of slowly compacting:

1. a balloon driver in the guest asks the kernel for a set of reclaimable
   pages (scattered is fine), pins them, and hands them to the VMM, which
   reclaims their backing host memory;
2. the VMM hot-adds the *same amount* of memory back to the VM as new,
   contiguous guest physical addresses, which can then back a guest
   segment.

The prototype (Section VI.C) pre-extends the VM's second KVM slot by a
reserve that is ballooned out at startup (KVM cannot hot-add), and the
driver trades fragmented pages for pieces of that reserve on demand.
This module implements the driver side; the VMM side lives in
:class:`repro.vmm.hypervisor.VirtualMachine`, and the two meet at the
:class:`BalloonPort` protocol so each half is testable alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.address import BASE_PAGE_SIZE, AddressRange
from repro.errors import BalloonError
from repro.guest.guest_os import GuestOS
from repro.mem.frame_allocator import OutOfMemoryError

# BalloonError historically lived here; it is re-exported from
# repro.errors so existing imports keep working.
__all__ = ["BalloonPort", "BalloonError", "BalloonStats", "SelfBalloonDriver"]


class BalloonPort(Protocol):
    """The VMM operations the balloon driver invokes (virtio channel)."""

    def reclaim_guest_frames(self, frames: list[int]) -> None:
        """Guest frames handed to the VMM; their host backing is freed."""

    def release_reserved_region(self, num_frames: int) -> AddressRange:
        """Hot-add ``num_frames`` of contiguous guest physical memory.

        Returns the released gPA range.  Raises if the reserve is
        exhausted.
        """


@dataclass
class BalloonStats:
    """Driver-side accounting."""

    inflations: int = 0
    #: Inflations that failed after hand-off to the VMM and were rolled
    #: back (the guest deflated and kept running, Section IV spirit).
    failed_inflations: int = 0
    frames_ballooned: int = 0
    frames_released: int = 0
    pinned_frames: list[int] = field(default_factory=list)


class SelfBalloonDriver:
    """The modified virtio-balloon driver of Section VI.C."""

    def __init__(self, guest_os: GuestOS, port: BalloonPort) -> None:
        self.guest_os = guest_os
        self.port = port
        self.stats = BalloonStats()

    def make_contiguous(self, size_bytes: int) -> AddressRange:
        """Trade ``size_bytes`` of fragmented memory for contiguous memory.

        Pins scattered free frames, passes them to the VMM, and receives
        a contiguous guest physical range of the same size, which is
        added to the guest allocator (and is therefore available for an
        immediately-following guest-segment reservation).
        """
        num_frames = -(-size_bytes // BASE_PAGE_SIZE)
        pinned = self._pin_frames(num_frames)
        self.port.reclaim_guest_frames(pinned)
        try:
            released = self.port.release_reserved_region(num_frames)
        except BalloonError:
            self._deflate(pinned)
            raise
        self.guest_os.allocator.add_region(released)
        self.stats.inflations += 1
        self.stats.frames_ballooned += len(pinned)
        self.stats.frames_released += released.size // BASE_PAGE_SIZE
        self.stats.pinned_frames.extend(pinned)
        return released

    def _deflate(self, pinned: list[int]) -> None:
        """Roll back a failed inflation: unpin and return the frames.

        The VMM already reclaimed the pinned frames' host backing, so we
        first ask it to forget the balloon-out (the backing refaults in
        on next touch); ports that cannot (e.g. test fakes) just see the
        frames return to the guest's free lists.
        """
        self.stats.failed_inflations += 1
        unballoon = getattr(self.port, "unballoon_guest_frames", None)
        if unballoon is not None:
            unballoon(pinned)
        for frame in pinned:
            self.guest_os.allocator.free_block(frame)

    def _pin_frames(self, num_frames: int) -> list[int]:
        """Allocate (pin) scattered single frames from the guest kernel.

        A standard balloon driver takes whatever the kernel gives it --
        order-0 allocations, so fragmentation does not block inflation.
        """
        allocator = self.guest_os.allocator
        if allocator.free_frames < num_frames:
            raise BalloonError(
                f"guest has only {allocator.free_frames} free frames, "
                f"balloon needs {num_frames}"
            )
        pinned: list[int] = []
        try:
            for _ in range(num_frames):
                pinned.append(allocator.alloc_frame())
        except OutOfMemoryError as exc:
            for frame in pinned:
                allocator.free_block(frame)
            raise BalloonError("guest memory exhausted during inflation") from exc
        return pinned
