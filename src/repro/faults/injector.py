"""Scheduled mid-trace fault events and the injector that delivers them.

The paper's resilience story (Section V, Figure 13) is evaluated with
*static* fault injection: bad pages exist before the system boots.  Real
machines are messier -- DRAM develops hard faults while the workload
runs, balloons fail to inflate, memory fragments under multi-tenant
churn, and allocations fail transiently under reclaim pressure.  This
module schedules exactly those events at chosen points of the measured
trace; :mod:`repro.sim.simulator` polls :meth:`FaultInjector.deliver_due`
once per measured reference.

Every event degrades, never crashes: delivery routes through the
graceful-degradation layer (:meth:`repro.vmm.hypervisor.Hypervisor.
inject_hard_fault` and friends), which records its reactions in the
hypervisor's :class:`~repro.faults.degradation.DegradationLog`.

Module-level imports stay clear of :mod:`repro.vmm` / :mod:`repro.sim` /
:mod:`repro.guest`: the hypervisor imports this package's sibling
:mod:`repro.faults.degradation`, which triggers ``repro.faults.__init__``
and hence this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.address import page_number
from repro.errors import BalloonError, FaultInjectionError
from repro.mem.frame_allocator import MAX_ALLOC_RETRIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import SimulatedSystem


@dataclass
class InjectedFault:
    """One scheduled fault event.

    ``at_ref`` is the index into the *measured* reference stream at (or
    after) which the event fires; the simulator delivers every due event
    before performing that reference.
    """

    at_ref: int

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        """Apply the fault to the running system; returns a short note."""
        raise NotImplementedError

    def _require_virtualized(self, system: "SimulatedSystem"):
        if system.vm is None or system.hypervisor is None:
            raise FaultInjectionError(
                f"{type(self).__name__} requires a virtualized system"
            )
        return system.vm


@dataclass
class DramHardFault(InjectedFault):
    """A host DRAM frame develops a permanent hard fault mid-run.

    ``frame`` pins the faulty frame explicitly; otherwise ``placement``
    picks one relative to the VM's segment: ``"segment-edge"`` (within
    the policy's shrinkable edge), ``"segment-middle"`` (forces
    filter-full faults to a full fall-back), ``"segment"`` (uniform over
    the covered range) or ``"anywhere"`` (uniform over host DRAM).
    """

    frame: int | None = None
    placement: str = "segment"

    PLACEMENTS = ("segment", "segment-edge", "segment-middle", "anywhere")

    def __post_init__(self) -> None:
        if self.placement not in self.PLACEMENTS:
            raise ValueError(
                f"placement must be one of {self.PLACEMENTS}, got "
                f"{self.placement!r}"
            )

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        self._require_virtualized(system)
        frame = self.frame
        if frame is None:
            frame = self._pick_frame(system, rng)
        event = system.hypervisor.inject_hard_fault(frame)
        return f"hard fault at frame {frame:#x} -> {event.action.value}"

    def _pick_frame(self, system: "SimulatedSystem", rng: random.Random) -> int:
        vm = system.vm
        segment = vm.vmm_segment
        if self.placement != "anywhere" and segment.enabled:
            start = page_number(segment.base + segment.offset)
            end = page_number(segment.limit + segment.offset)
            span = end - start
            # Stay comfortably inside / outside the default policy's
            # edge_fraction (1/8 of the segment from either end).
            if self.placement == "segment-edge":
                margin = max(1, span // 16)
                if rng.random() < 0.5:
                    return rng.randrange(start, start + margin)
                return rng.randrange(end - margin, end)
            if self.placement == "segment-middle":
                margin = max(1, span * 3 // 8)
                lo, hi = start + margin, end - margin
                if lo < hi:
                    return rng.randrange(lo, hi)
            return rng.randrange(start, end)
        reserved = vm.reserved_frame_range
        if self.placement != "anywhere" and reserved is not None:
            return rng.randrange(reserved[0], reserved[1])
        region = rng.choice(system.hypervisor.layout.regions)
        return rng.randrange(page_number(region.start), page_number(region.end))


@dataclass
class EscapeFilterExhaustion(InjectedFault):
    """The VM's escape filter hits its modelled capacity.

    Caps the filter at its current occupancy (plus ``headroom`` spare
    inserts), so subsequent hard faults under the segment cannot escape
    and must take a harsher degradation rung (shrink or fall back).
    """

    headroom: int = 0

    def __post_init__(self) -> None:
        if self.headroom < 0:
            raise ValueError(f"headroom must be >= 0, got {self.headroom}")

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        vm = self._require_virtualized(system)
        vm.escape_filter.capacity = len(vm.escape_filter) + self.headroom
        return (
            f"escape filter capped at {vm.escape_filter.capacity} pages "
            f"({len(vm.escape_filter)} in use)"
        )


@dataclass
class BalloonInflationFailure(InjectedFault):
    """A self-balloon inflation fails after the reclaim half completed.

    Arms the VM's balloon port to reject the hot-add, then (by default)
    drives an inflation through a fresh
    :class:`~repro.guest.balloon.SelfBalloonDriver` to exercise the
    failure and the driver's deflate-rollback.  The VM logs a TOLERATE
    event either way.
    """

    size_bytes: int = 2 * 1024 * 1024
    attempt: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be > 0, got {self.size_bytes}")

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        vm = self._require_virtualized(system)
        vm.arm_balloon_failures(1)
        if not self.attempt:
            return "armed one balloon-inflation failure"
        from repro.guest.balloon import SelfBalloonDriver  # noqa: PLC0415 (cycle)

        driver = SelfBalloonDriver(system.guest_os, vm)
        try:
            driver.make_contiguous(self.size_bytes)
        except BalloonError:
            return (
                f"balloon inflation of {self.size_bytes} bytes failed "
                f"(injected) and was rolled back"
            )
        return "balloon inflation unexpectedly succeeded"


@dataclass
class FragmentationShock(InjectedFault):
    """Other tenants suddenly dice up a fraction of free host memory."""

    fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {self.fraction}")

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        allocator = (
            system.hypervisor.allocator
            if system.hypervisor is not None
            else system.guest_os.allocator
        )
        held = allocator.fragment(self.fraction, rng=rng)
        return f"fragmentation shock: pinned {len(held)} scattered blocks"


@dataclass
class TransientAllocationFailures(InjectedFault):
    """A burst of transient allocation failures (reclaim pressure).

    ``count`` must stay below the allocator's retry budget so the burst
    degrades into backoff cycles instead of an unhandled
    :class:`~repro.errors.TransientAllocationError`.
    """

    count: int = 3

    def __post_init__(self) -> None:
        if not 0 < self.count < MAX_ALLOC_RETRIES:
            raise ValueError(
                f"count must be in [1, {MAX_ALLOC_RETRIES - 1}] so the "
                f"retry budget absorbs the burst, got {self.count}"
            )

    def deliver(self, system: "SimulatedSystem", rng: random.Random) -> str:
        allocator = (
            system.hypervisor.allocator
            if system.hypervisor is not None
            else system.guest_os.allocator
        )
        allocator.inject_transient_failures(self.count)
        return f"armed {self.count} transient allocation failures"


class FaultInjector:
    """Delivers scheduled fault events into a running simulation.

    The simulator calls :meth:`deliver_due` with the current measured
    reference index before performing each reference; every event whose
    ``at_ref`` has been reached is delivered (in schedule order), after
    which the system's translation state is re-synced (register reload +
    TLB shootdown, as real fault handling would).
    """

    def __init__(self, events, seed: int) -> None:
        self.events = sorted(events, key=lambda e: e.at_ref)
        self._queue = list(self.events)
        self.rng = random.Random(seed)
        #: (ref_index, event, note) per delivered event.
        self.delivered: list[tuple[int, InjectedFault, str]] = []
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when
        #: attached, each delivery bumps ``faults.delivered.<kind>``.
        self.metrics = None

    @property
    def pending(self) -> int:
        """Events not yet delivered."""
        return len(self._queue)

    def deliver_due(self, ref_index: int, system: "SimulatedSystem") -> list[str]:
        """Deliver every event scheduled at or before ``ref_index``."""
        if not self._queue or self._queue[0].at_ref > ref_index:
            return []
        hypervisor = system.hypervisor
        notes: list[str] = []
        while self._queue and self._queue[0].at_ref <= ref_index:
            event = self._queue.pop(0)
            if hypervisor is not None:
                hypervisor.current_ref_index = ref_index
            note = event.deliver(system, self.rng)
            self.delivered.append((ref_index, event, note))
            notes.append(note)
            m = self.metrics
            if m is not None and m.enabled:
                m.inc("faults.delivered")
                m.inc(f"faults.delivered.{type(event).__name__}")
        if hypervisor is not None:
            hypervisor.current_ref_index = -1
        system.resync_translation_state()
        return notes

    @classmethod
    def chaos_plan(
        cls,
        trace_length: int,
        seed: int = 0,
        extra_hard_faults: int = 2,
    ) -> "FaultInjector":
        """A representative mixed schedule over ``trace_length`` refs.

        Front-loads the benign events, exhausts the escape filter, then
        lands hard faults at the segment edge (provoking a shrink) and
        mid-segment (provoking a fall-back to nested paging), plus
        ``extra_hard_faults`` anywhere in host memory.
        """
        if trace_length < 10:
            raise ValueError(f"trace_length too short: {trace_length}")
        rng = random.Random(seed)
        events: list[InjectedFault] = [
            TransientAllocationFailures(at_ref=trace_length // 10, count=3),
            BalloonInflationFailure(at_ref=trace_length // 5),
            DramHardFault(at_ref=trace_length * 3 // 10, placement="segment"),
            EscapeFilterExhaustion(at_ref=trace_length * 2 // 5),
            DramHardFault(at_ref=trace_length // 2, placement="segment-edge"),
            DramHardFault(at_ref=trace_length * 3 // 5, placement="segment-middle"),
            FragmentationShock(at_ref=trace_length * 7 // 10, fraction=0.05),
        ]
        for _ in range(extra_hard_faults):
            events.append(
                DramHardFault(
                    at_ref=rng.randrange(trace_length * 3 // 4, trace_length),
                    placement="anywhere",
                )
            )
        return cls(events, seed=seed)
