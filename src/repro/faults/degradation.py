"""Degradation accounting: what the system gave up to stay correct.

Section V's argument for the escape filter is that real machines develop
DRAM hard faults *while running*; Table III's argument for dynamic mode
switching is that contiguity comes and goes.  When a mid-run fault makes
the current translation mode untenable, the hypervisor reacts along a
fixed ladder (escape the page, shrink the segment, fall back to nested
paging) -- each rung trades performance for continued correctness.

This module records those reactions.  :class:`DegradationLog` is the
flight recorder: every action the graceful-degradation layer takes is
appended as a :class:`DegradationEvent` with its modelled cycle cost, so
experiments can attribute exactly how much performance each injected
fault cost and tests can assert the right rung was chosen.

Kept dependency-light on purpose: :mod:`repro.vmm.hypervisor` and
:mod:`repro.vmm.policy` import it, so it must not import them back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.modes import TranslationMode


class DegradationAction(enum.Enum):
    """The rungs of the degradation ladder, mildest first."""

    #: Nothing needed to change (e.g. the faulty frame was free and was
    #: simply quarantined).
    QUARANTINE = "quarantine"
    #: A paged (non-segment) frame was migrated to a healthy replacement.
    REMAP = "remap"
    #: The faulty page escaped the segment through the escape filter.
    ESCAPE = "escape"
    #: The segment was shrunk past the faulty page (it stays enabled over
    #: a smaller range; the trimmed range falls back to nested paging).
    SHRINK = "shrink"
    #: The segment was dropped entirely; the VM fell back to the best
    #: remaining paging mode (Dual Direct -> Guest Direct, VMM Direct ->
    #: Base Virtualized).
    FALLBACK = "fallback"
    #: A software component failed and the system continued without it
    #: (e.g. a balloon inflation that could not complete).
    TOLERATE = "tolerate"


@dataclass(frozen=True)
class DegradationEvent:
    """One reaction of the graceful-degradation layer."""

    #: Measured-trace reference index at which the event fired (-1 when
    #: it happened outside a measured run, e.g. in a unit test).
    ref_index: int
    #: Which VM reacted ("" for host-level events).
    vm_name: str
    action: DegradationAction
    #: Human-readable cause ("hard fault at frame 0x1234", ...).
    detail: str
    #: Translation mode before/after the reaction (equal when the mode
    #: survived the event; ``None`` for host-level events with no VM).
    from_mode: TranslationMode | None = None
    to_mode: TranslationMode | None = None
    #: Modelled cost of the reaction itself (page copies, TLB shootdown,
    #: PTE installs), charged on top of the steady-state translation
    #: cycles the run measures.
    cycle_cost: float = 0.0
    #: Monotonic per-log sequence number.  ``ref_index`` alone cannot
    #: order events: one hard fault can fire several ladder rungs at the
    #: same reference index (and unit-test events all sit at -1), so the
    #: log stamps each append.  -1 marks events built outside a log.
    seq: int = -1

    @property
    def is_mode_transition(self) -> bool:
        """True when the VM changed translation mode."""
        return self.from_mode is not self.to_mode

    @property
    def order_key(self) -> tuple[int, int]:
        """Total order of events: trace position, then append order."""
        return (self.ref_index, self.seq)


@dataclass
class DegradationLog:
    """Ordered record of every degradation a run performed."""

    events: list[DegradationEvent] = field(default_factory=list)
    #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when attached
    #: every recorded event bumps ``degradation.events.<action>`` and
    #: feeds ``degradation.cycle_cost``.
    metrics: object | None = None
    #: Optional :class:`repro.obs.profiler.WalkProfiler`; reaction
    #: costs are attributed per action in the profiler's (separate)
    #: degradation books, conserved against :attr:`total_cycle_cost`.
    profiler: object | None = None

    def record(
        self,
        ref_index: int,
        vm_name: str,
        action: DegradationAction,
        detail: str,
        from_mode: TranslationMode | None = None,
        to_mode: TranslationMode | None = None,
        cycle_cost: float = 0.0,
    ) -> DegradationEvent:
        """Append one event (stamped with the next sequence number)."""
        event = DegradationEvent(
            ref_index=ref_index,
            vm_name=vm_name,
            action=action,
            detail=detail,
            from_mode=from_mode,
            to_mode=to_mode,
            cycle_cost=cycle_cost,
            seq=len(self.events),
        )
        self.events.append(event)
        m = self.metrics
        if m is not None and m.enabled:
            m.inc(f"degradation.events.{action.value}")
            m.observe("degradation.cycle_cost", cycle_cost)
            if event.is_mode_transition:
                m.inc("degradation.mode_transitions")
        p = self.profiler
        if p is not None:
            p.degradation_event(action.value, cycle_cost)
        return event

    def sorted_events(self) -> list[DegradationEvent]:
        """Events in total order (``(ref_index, seq)``, stable).

        Append order usually *is* trace order, but replayed or merged
        logs can interleave; sorting on the explicit key keeps consumers
        (manifests, chrome traces, reports) deterministic either way.
        """
        return sorted(self.events, key=lambda e: e.order_key)

    def count(self, action: DegradationAction) -> int:
        """Number of events of one action kind."""
        return sum(1 for e in self.events if e.action is action)

    @property
    def mode_transitions(self) -> list[DegradationEvent]:
        """Events where the VM actually changed translation mode."""
        return [e for e in self.events if e.is_mode_transition]

    @property
    def total_cycle_cost(self) -> float:
        """Cycles spent reacting to faults, across all events."""
        return sum(e.cycle_cost for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def summary(self) -> str:
        """One line per event, for experiment reports."""
        if not self.events:
            return "no degradation events"
        lines = []
        for e in self.events:
            arrow = (
                f" [{e.from_mode.value} -> {e.to_mode.value}]"
                if e.is_mode_transition
                else ""
            )
            lines.append(
                f"ref {e.ref_index}: {e.vm_name or 'host'} "
                f"{e.action.value}{arrow}: {e.detail} "
                f"({e.cycle_cost:.0f} cycles)"
            )
        return "\n".join(lines)
