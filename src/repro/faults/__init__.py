"""Runtime fault injection, graceful degradation, and the translation oracle.

Three cooperating pieces:

- :mod:`repro.faults.degradation` -- the vocabulary (actions, events,
  log) the hypervisor uses to record how it absorbed each fault.
- :mod:`repro.faults.injector` -- scheduled mid-trace fault events and
  the :class:`FaultInjector` the simulator polls each measured reference.
- :mod:`repro.faults.oracle` -- the :class:`TranslationOracle` that
  shadow-translates sampled references through raw architectural state
  and asserts the MMU agreed.
"""

from repro.faults.degradation import (
    DegradationAction,
    DegradationEvent,
    DegradationLog,
)
from repro.faults.injector import (
    BalloonInflationFailure,
    DramHardFault,
    EscapeFilterExhaustion,
    FaultInjector,
    FragmentationShock,
    InjectedFault,
    TransientAllocationFailures,
)
from repro.faults.oracle import OracleMismatch, OracleReport, TranslationOracle

__all__ = [
    "BalloonInflationFailure",
    "DegradationAction",
    "DegradationEvent",
    "DegradationLog",
    "DramHardFault",
    "EscapeFilterExhaustion",
    "FaultInjector",
    "FragmentationShock",
    "InjectedFault",
    "OracleMismatch",
    "OracleReport",
    "TransientAllocationFailures",
    "TranslationOracle",
]
