"""Translation-consistency oracle: shadow-translate and compare.

The MMU fast path stacks many mechanisms -- split L1 TLBs, a shared L2,
page-walk caches, two levels of segment registers, two escape filters,
and the degradation ladder rewiring all of the above mid-run.  The
oracle is the independent referee: it re-translates a sampled subset of
references through the *raw software state* (guest page table, nested
page table, the segment register contents and the VMM's own remap
records) with none of the caching machinery, and asserts the MMU
returned the identical host-physical frame.

This is the simulator's analogue of Virtuoso-style built-in consistency
checking: a run under injected chaos (new bad frames, filter
exhaustion, segment shrinks, mode fallbacks) is trusted because the
oracle observed zero mismatches, not because nothing crashed.

The shadow path reads the *architectural* state -- the segment register
files, the escape filters (both genuinely part of the context, Section
V) and the raw page tables -- and recomputes the translation the
hardware order prescribes (segment-with-filter first, then tables).
What it deliberately never touches are the caches: L1/L2 TLBs and the
page-walk caches.  Any stale entry, wrong base-frame arithmetic, or
fault handler installing the wrong PTE therefore shows up as a
mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.address import PageSize, align_down, page_number
from repro.core.walker import NestedWalker
from repro.errors import TranslationOracleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports us)
    from repro.sim.system import SimulatedSystem


@dataclass(frozen=True)
class OracleMismatch:
    """One disagreement between the MMU and the shadow translation."""

    ref_index: int
    vaddr: int
    observed_frame: int
    expected_frame: int

    def describe(self) -> str:
        return (
            f"ref {self.ref_index}: va {self.vaddr:#x} -> MMU frame "
            f"{self.observed_frame:#x}, shadow walk says {self.expected_frame:#x}"
        )


@dataclass
class OracleReport:
    """Tally of one run's oracle activity."""

    checks: int = 0
    mismatches: int = 0
    #: References whose ground truth was indeterminate (no mapping
    #: installed yet anywhere); these are skipped, not failed.
    unresolved: int = 0
    #: First few mismatches in full detail (bounded so a systematically
    #: wrong run does not hoard memory).
    samples: list[OracleMismatch] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every checked reference agreed."""
        return self.mismatches == 0

    def summary(self) -> str:
        head = (
            f"oracle: {self.checks} checks, {self.mismatches} mismatches, "
            f"{self.unresolved} unresolved"
        )
        if not self.samples:
            return head
        return head + "\n" + "\n".join(m.describe() for m in self.samples)


class TranslationOracle:
    """Invariant checker wired into the simulator's measured loop.

    Parameters
    ----------
    system:
        The built machine whose MMU is being audited.
    sample_every:
        Check one in this many measured references (1 = every
        reference).  Sampling keeps the oracle's cost negligible while
        still catching systematic divergence almost immediately.
    strict:
        Raise :class:`~repro.errors.TranslationOracleError` on the first
        mismatch instead of recording it.
    """

    MAX_RECORDED_MISMATCHES = 16

    def __init__(
        self,
        system: "SimulatedSystem",
        sample_every: int = 64,
        strict: bool = False,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.system = system
        self.sample_every = sample_every
        self.strict = strict
        self.report = OracleReport()

    # ------------------------------------------------------------------
    # Ground truth

    def shadow_translate(self, vaddr: int) -> int | None:
        """Host 4 KB frame for ``vaddr`` from raw architectural state.

        Returns None when no dimension has a mapping yet (the reference
        would demand-fault; after the MMU serviced it, the ground truth
        becomes determinate).
        """
        va_page = align_down(vaddr, PageSize.SIZE_4K)
        walker = self.system.mmu.walker
        if isinstance(walker, NestedWalker):
            gpa_page = self._shadow_guest(walker, va_page)
            if gpa_page is None:
                return None
            return self._shadow_nested(walker, gpa_page)
        return self._shadow_native(walker, va_page)

    @staticmethod
    def _segment_hit(segment, escape_filter, address: int) -> bool:
        """The hardware membership test: covered and not filtered out."""
        if segment is None or not segment.enabled or not segment.covers(address):
            return False
        if escape_filter is not None and escape_filter.may_contain(
            page_number(address)
        ):
            return False
        return True

    @classmethod
    def _shadow_native(cls, walker, va_page: int) -> int | None:
        """Native translation: optional direct segment, then the table."""
        segment = getattr(walker, "segment", None)
        escape = getattr(walker, "escape_filter", None)
        if cls._segment_hit(segment, escape, va_page):
            return page_number(segment.translate_unchecked(va_page))
        walked = walker.page_table.lookup(va_page)
        if walked is None:
            return None
        return page_number(walked.translate(va_page))

    @classmethod
    def _shadow_guest(cls, walker: NestedWalker, va_page: int) -> int | None:
        """First dimension: gVA -> gPA of the referenced 4 KB page."""
        if cls._segment_hit(
            walker.guest_segment, walker.guest_escape_filter, va_page
        ):
            return walker.guest_segment.translate_unchecked(va_page)
        walked = walker.guest_table.lookup(va_page)
        if walked is None:
            return None
        return align_down(walked.translate(va_page), PageSize.SIZE_4K)

    def _shadow_nested(self, walker: NestedWalker, gpa_page: int) -> int | None:
        """Second dimension: gPA -> hPA frame from VMM records."""
        if self._segment_hit(
            walker.vmm_segment, walker.vmm_escape_filter, gpa_page
        ):
            return page_number(walker.vmm_segment.translate_unchecked(gpa_page))
        walked = walker.nested_table.lookup(gpa_page)
        if walked is not None:
            return page_number(walked.translate(gpa_page))
        vm = self.system.vm
        if vm is not None:
            # Ranges trimmed off the segment by graceful degradation keep
            # their computed backing until first touch installs the PTE.
            return vm.degraded_frame_for(page_number(gpa_page))
        return None

    # ------------------------------------------------------------------
    # Checking

    def observe(self, ref_index: int, vaddr: int, observed_frame: int) -> None:
        """Simulator hook: sample-check one measured reference."""
        if ref_index % self.sample_every:
            return
        self.check(vaddr, observed_frame, ref_index=ref_index)

    def check(self, vaddr: int, observed_frame: int, ref_index: int = -1) -> bool:
        """Compare one MMU result against the shadow translation."""
        expected = self.shadow_translate(vaddr)
        if expected is None:
            self.report.unresolved += 1
            return True
        self.report.checks += 1
        if expected == observed_frame:
            return True
        self.report.mismatches += 1
        mismatch = OracleMismatch(
            ref_index=ref_index,
            vaddr=vaddr,
            observed_frame=observed_frame,
            expected_frame=expected,
        )
        if len(self.report.samples) < self.MAX_RECORDED_MISMATCHES:
            self.report.samples.append(mismatch)
        if self.strict:
            raise TranslationOracleError(mismatch.describe())
        return False

    def audit_addresses(self, addresses) -> OracleReport:
        """Drive ``addresses`` through the MMU uncounted and check each.

        Used by tests to prove translation is unchanged across a fault:
        run it before the injection, inject, run it again, and assert
        :attr:`report` stayed clean.
        """
        touch = self.system.mmu.touch
        for vaddr in addresses:
            vaddr = int(vaddr)
            self.check(vaddr, touch(vaddr))
        return self.report
