"""repro: Efficient Memory Virtualization, reproduced in Python.

A trace-driven reproduction of Gandhi, Basu, Hill and Swift, *"Efficient
Memory Virtualization: Reducing Dimensionality of Nested Page Walks"*
(MICRO 2014): direct segments at both levels of nested address
translation, the escape filter, self-ballooning and the I/O-gap
reclaim, plus the full evaluation harness (Figures 1/11/12/13, Tables
I-IV, the shadow-paging and page-sharing studies).

Quick taste::

    from repro import create_workload, simulate

    result = simulate("4K+VD", create_workload("graph500"))
    print(result.overhead_percent)

See README.md for the architecture overview and
``python -m repro.experiments all`` for the paper's figures.
"""

from repro.core.address import GIB, KIB, MIB, TIB, AddressRange, PageSize
from repro.core.escape_filter import EscapeFilter
from repro.core.modes import MODE_PROPERTIES, TranslationMode
from repro.core.mmu import MMU, MMUCounters
from repro.core.segments import SegmentRegisters
from repro.guest.balloon import SelfBalloonDriver
from repro.guest.guest_os import GuestOS, GuestOSConfig
from repro.guest.hotplug import reclaim_io_gap
from repro.mem.badpages import BadPageList
from repro.mem.compaction import CompactionDaemon
from repro.mem.frame_allocator import FrameAllocator
from repro.mem.page_table import PageTable
from repro.sim.config import SystemConfig, parse_config
from repro.sim.simulator import SimulationResult, run_trace, simulate
from repro.sim.system import SimulatedSystem, build_system
from repro.vmm.hypervisor import Hypervisor, VirtualMachine
from repro.vmm.policy import FragmentationManager, WorkloadClass, plan_modes
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.registry import (
    ALL_WORKLOADS,
    BIG_MEMORY_WORKLOADS,
    COMPUTE_WORKLOADS,
    create_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "AddressRange",
    "BIG_MEMORY_WORKLOADS",
    "BadPageList",
    "COMPUTE_WORKLOADS",
    "CompactionDaemon",
    "EscapeFilter",
    "FragmentationManager",
    "FrameAllocator",
    "GIB",
    "GuestOS",
    "GuestOSConfig",
    "Hypervisor",
    "KIB",
    "MIB",
    "MMU",
    "MMUCounters",
    "MODE_PROPERTIES",
    "PageSize",
    "PageTable",
    "SegmentRegisters",
    "SelfBalloonDriver",
    "SimulatedSystem",
    "SimulationResult",
    "SystemConfig",
    "TIB",
    "TranslationMode",
    "VirtualMachine",
    "Workload",
    "WorkloadClass",
    "WorkloadSpec",
    "build_system",
    "create_workload",
    "parse_config",
    "plan_modes",
    "reclaim_io_gap",
    "run_trace",
    "simulate",
]
