"""Energy accounting for the designs (Section IX.B).

Two effects:

1. **Static energy** scales with execution time: a design that cuts
   runtime by X% cuts whole-system static energy by about X%.
2. **Dynamic translation energy** decomposes into (a) L1 TLB accesses,
   (b) L2 TLB accesses (plus, for the new design, the small virtualized
   direct-segment comparators probed on L1 misses), and (c) page-walker
   and MMU-cache activity on L2/segment misses.  The paper argues the
   new design's large reduction in term (c) dominates its small increase
   in term (b); the original direct segment moves the comparators to the
   L1 path, trading term (b) savings for L1-path cost.

Per-event energies are in arbitrary units with TLB-size-proportional
defaults; conclusions should be read as relative orderings, exactly as
the paper's qualitative discussion intends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event dynamic energies (arbitrary units).

    Defaults scale roughly with structure size: the 512-entry L2 costs
    more per probe than the 64-entry L1; a page-walk memory reference
    (cache/DRAM traffic) dwarfs both; the 6-register segment comparator
    block is nearly free.
    """

    l1_probe: float = 1.0
    l2_probe: float = 4.0
    segment_check: float = 0.05
    walk_reference: float = 20.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic translation energy of one run, by term."""

    l1_energy: float  # term (a)
    l2_energy: float  # term (b)
    walker_energy: float  # term (c)

    @property
    def total(self) -> float:
        """Total dynamic translation energy."""
        return self.l1_energy + self.l2_energy + self.walker_energy


def dynamic_energy(
    accesses: int,
    l1_misses: int,
    segment_checked_misses: int,
    l2_probes: int,
    walk_refs: int,
    params: EnergyParameters | None = None,
) -> EnergyBreakdown:
    """Dynamic translation energy from event counts.

    ``segment_checked_misses`` counts L1 misses that also probed the
    direct-segment comparators (all L1 misses for the new virtualized
    design; zero for the base designs).
    """
    p = params or EnergyParameters()
    return EnergyBreakdown(
        l1_energy=accesses * p.l1_probe,
        l2_energy=l2_probes * p.l2_probe
        + segment_checked_misses * p.segment_check,
        walker_energy=walk_refs * p.walk_reference,
    )


def static_energy_saving(base_cycles: float, improved_cycles: float) -> float:
    """Fractional whole-system static-energy saving from a speedup.

    "If the mechanism reduces execution time by some percentage X, it
    can reduce whole-system static energy by about X%."
    """
    if base_cycles <= 0:
        raise ValueError("base execution time must be positive")
    return max(0.0, (base_cycles - improved_cycles) / base_cycles)
