"""Table IV: linear models for cycles spent on page walks.

Section VII's methodology: measure, per workload,

* ``Mn`` -- TLB misses in the native environment,
* ``Cn`` -- page-walk cycles per native TLB miss,
* ``Cv`` -- page-walk cycles per virtualized TLB miss,
* ``F_DS/F_VD/F_GD/F_DD`` -- fractions of misses falling in the
  respective direct segments (classified BadgerTrap-style),

then predict each design's walk cycles with the linear models below.
``Delta`` is the base-bound-check overhead: 1 cycle per check, so
``Delta_VD = 5`` (four guest-PTE pointers + the final gPA) and
``Delta_GD = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's flat per-walk base-bound-check overheads (Section VII).
DELTA_VD = 5.0
DELTA_GD = 1.0


@dataclass(frozen=True)
class MeasuredInputs:
    """The measured quantities a linear model consumes."""

    native_misses: float  # Mn
    native_cycles_per_miss: float  # Cn
    virtualized_cycles_per_miss: float  # Cv
    f_ds: float = 0.0
    f_vd: float = 0.0
    f_gd: float = 0.0
    f_dd: float = 0.0

    def __post_init__(self) -> None:
        for name in ("f_ds", "f_vd", "f_gd", "f_dd"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.f_vd + self.f_gd + self.f_dd > 1.0 + 1e-9:
            raise ValueError("Dual Direct fractions exceed 1")


def direct_segment_cycles(m: MeasuredInputs) -> float:
    """Unvirtualized Direct Segment: ``Cn * (1 - F_DS) * Mn``.

    Misses inside the segment are eliminated outright; the remainder pay
    the native walk cost.
    """
    return m.native_cycles_per_miss * (1.0 - m.f_ds) * m.native_misses


def vmm_direct_cycles(m: MeasuredInputs, delta_vd: float = DELTA_VD) -> float:
    """VMM Direct: ``[(Cn + D_VD)*F_VD + Cv*(1 - F_VD)] * Mn``."""
    covered = (m.native_cycles_per_miss + delta_vd) * m.f_vd
    uncovered = m.virtualized_cycles_per_miss * (1.0 - m.f_vd)
    return (covered + uncovered) * m.native_misses


def guest_direct_cycles(m: MeasuredInputs, delta_gd: float = DELTA_GD) -> float:
    """Guest Direct: ``[(Cn + D_GD)*F_GD + Cv*(1 - F_GD)] * Mn``."""
    covered = (m.native_cycles_per_miss + delta_gd) * m.f_gd
    uncovered = m.virtualized_cycles_per_miss * (1.0 - m.f_gd)
    return (covered + uncovered) * m.native_misses


def dual_direct_cycles(
    m: MeasuredInputs,
    delta_vd: float = DELTA_VD,
    delta_gd: float = DELTA_GD,
) -> float:
    """Dual Direct: the four-way miss split of Section VII.

    ``[(Cn + D_VD)*F_VD + (Cn + D_GD)*F_GD + Cv*(1 - F_GD - F_VD - F_DD)] * Mn``
    -- the F_DD fraction (misses inside both segments) costs nothing.
    """
    vmm_only = (m.native_cycles_per_miss + delta_vd) * m.f_vd
    guest_only = (m.native_cycles_per_miss + delta_gd) * m.f_gd
    neither = m.virtualized_cycles_per_miss * (
        1.0 - m.f_gd - m.f_vd - m.f_dd
    )
    return (vmm_only + guest_only + neither) * m.native_misses


def base_virtualized_cycles(m: MeasuredInputs) -> float:
    """The 2D-walk baseline: ``Cv * Mn`` (per Section VII's normalization
    to native miss counts)."""
    return m.virtualized_cycles_per_miss * m.native_misses


def native_cycles(m: MeasuredInputs) -> float:
    """The native baseline: ``Cn * Mn``."""
    return m.native_cycles_per_miss * m.native_misses
