"""Evaluation methodology: Table IV models, overhead metric, energy."""
