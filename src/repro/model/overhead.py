"""The paper's execution-time overhead metric (Section VIII).

"If an execution E runs in time T_E, we calculate address-translation
overhead as (T_E - T_2Mideal) / T_2Mideal, where T_2Mideal is the same
benchmark's native execution time with 2MB pages minus the time the 2MB
run spends in page table walks."

In the simulator the ideal time is directly constructible: trace length
times the workload's ideal cycles-per-reference.  Execution time of a
configuration is that ideal time plus the configuration's translation
cycles, so the overhead reduces to translation cycles over ideal cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadResult:
    """Execution-time decomposition of one run."""

    ideal_cycles: float
    translation_cycles: float

    @property
    def execution_cycles(self) -> float:
        """T_E: ideal work plus translation stalls."""
        return self.ideal_cycles + self.translation_cycles

    @property
    def overhead(self) -> float:
        """(T_E - T_ideal) / T_ideal, the paper's bar heights."""
        return self.translation_cycles / self.ideal_cycles

    @property
    def overhead_percent(self) -> float:
        """Overhead as a percentage (Figure 11/12 y-axis)."""
        return 100.0 * self.overhead


def overhead_from_trace(
    trace_length: int,
    ideal_cycles_per_ref: float,
    translation_cycles: float,
) -> OverheadResult:
    """Build an :class:`OverheadResult` from simulator outputs."""
    if trace_length <= 0:
        raise ValueError("trace length must be positive")
    if ideal_cycles_per_ref <= 0:
        raise ValueError("ideal cycles per reference must be positive")
    return OverheadResult(
        ideal_cycles=trace_length * ideal_cycles_per_ref,
        translation_cycles=translation_cycles,
    )


def speedup(base: OverheadResult, improved: OverheadResult) -> float:
    """Execution-time ratio base/improved (>1 means improved is faster)."""
    return base.execution_cycles / improved.execution_cycles


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, used for the paper's cross-workload summaries."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
