"""Measured-run bookkeeping: the simulator's perf + BadgerTrap stack.

Section VII instruments every DTLB miss (BadgerTrap [24]) to classify it
by segment membership, and reads hardware counters (perf) for miss
counts and walk cycles.  The simulator's MMU already produces both; this
module shapes them into the quantities the Table IV models and the
experiment harnesses consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mmu import (
    CASE_BOTH,
    CASE_GUEST_ONLY,
    CASE_NEITHER,
    CASE_VMM_ONLY,
    MMUCounters,
)
from repro.model.linear_model import MeasuredInputs


@dataclass(frozen=True)
class MeasuredRun:
    """One (workload, configuration) measurement."""

    config_name: str
    workload_name: str
    trace_length: int
    l1_misses: int
    walks: int
    walk_cycles: float
    translation_cycles: float
    fraction_both: float
    fraction_vmm_only: float
    fraction_guest_only: float
    fraction_neither: float
    walk_refs: int
    faults: int
    nested_insertions: int

    @property
    def misses_per_kilo_ref(self) -> float:
        """L1 TLB misses per thousand references (an MPKI analogue)."""
        return 1000.0 * self.l1_misses / self.trace_length if self.trace_length else 0.0

    @property
    def cycles_per_walk(self) -> float:
        """Average walk cost: the paper's Cn (native) or Cv (virtual)."""
        return self.walk_cycles / self.walks if self.walks else 0.0

    @property
    def refs_per_walk(self) -> float:
        """Average page-table references per walk (cache-filtered)."""
        return self.walk_refs / self.walks if self.walks else 0.0


def measured_run(
    config_name: str,
    workload_name: str,
    trace_length: int,
    counters: MMUCounters,
    nested_insertions: int = 0,
) -> MeasuredRun:
    """Snapshot MMU counters into an immutable measurement record.

    ``nested_insertions`` comes from the TLB hierarchy (nested entries
    inserted into the shared L2), not the MMU counters.
    """
    return MeasuredRun(
        config_name=config_name,
        workload_name=workload_name,
        trace_length=trace_length,
        l1_misses=counters.l1_misses,
        walks=counters.walks,
        walk_cycles=counters.walk_cycles,
        translation_cycles=counters.translation_cycles,
        fraction_both=counters.miss_fraction(CASE_BOTH),
        fraction_vmm_only=counters.miss_fraction(CASE_VMM_ONLY),
        fraction_guest_only=counters.miss_fraction(CASE_GUEST_ONLY),
        fraction_neither=counters.miss_fraction(CASE_NEITHER),
        walk_refs=counters.walk_refs,
        faults=counters.faults,
        nested_insertions=nested_insertions,
    )


def model_inputs(
    native: MeasuredRun,
    virtualized: MeasuredRun,
    classified: MeasuredRun,
) -> MeasuredInputs:
    """Assemble Table IV inputs from three measurement runs.

    ``native`` supplies Mn and Cn; ``virtualized`` (the base 2D-walk run)
    supplies Cv; ``classified`` is a run on the segment-equipped
    hardware whose BadgerTrap classification gives the F fractions.
    F_DS for the unvirtualized model reuses the guest-covered fraction.
    """
    return MeasuredInputs(
        native_misses=native.walks,
        native_cycles_per_miss=native.cycles_per_walk,
        virtualized_cycles_per_miss=virtualized.cycles_per_walk,
        f_ds=classified.fraction_both + classified.fraction_guest_only,
        f_vd=classified.fraction_vmm_only,
        f_gd=classified.fraction_guest_only,
        f_dd=classified.fraction_both,
    )
