"""Run-provenance manifests: what ran, from which code, with what result.

Every observed experiment run can answer, months later: which workload
cells ran, under which configuration and seed, from which git revision
and package version, how long each cell took, and what the headline
metrics were.  A manifest is a plain JSON document:

* top level -- schema version, experiment name, creation time, git
  describe, package/python versions, host platform, CLI provenance;
* ``cells`` -- one entry per simulation cell, each with a content hash
  of its identifying parameters (``config_hash``), timing, the metric
  snapshot and an end-of-run summary;
* ``totals`` -- cell count, total measured references/walks/cycles and
  the merged metric snapshot.

The parallel sweep runner produces per-cell records in worker
processes; :func:`build_manifest` merges them **deterministically** --
cells are sorted by ``(workload, config, seed)``, metric merges are
order-independent, and :func:`stable_view` strips the wall-clock /
host-specific fields so two runs of the same sweep compare equal
byte-for-byte regardless of ``--jobs``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.metrics import merge_snapshots
from repro.obs.profiler import merge_profiles, strip_reservoir

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import RunObservability

#: Bump on any backward-incompatible manifest layout change.
SCHEMA_VERSION = 1

#: Manifest documents self-identify so tooling can reject foreign JSON.
MANIFEST_KIND = "repro.obs.manifest"

#: Fields whose values legitimately differ between reruns of the same
#: sweep (wall clock, host identity, and how the run was invoked --
#: ``--jobs 8`` must produce the same results as a serial run);
#: :func:`stable_view` removes them for determinism comparisons.
VOLATILE_TOP_FIELDS = (
    "created_at",
    "duration_seconds",
    "host",
    "git",
    "jobs",
    "argv",
    "fabric",
)
VOLATILE_CELL_FIELDS = ("duration_us", "started_us", "pid", "host")

_REQUIRED_TOP_FIELDS = {
    "kind": str,
    "schema_version": int,
    "experiment": str,
    "created_at": str,
    "package_version": str,
    "python_version": str,
    "cells": list,
    "totals": dict,
}

_REQUIRED_CELL_FIELDS = {
    "workload": str,
    "config": str,
    "seed": int,
    "config_hash": str,
    "duration_us": int,
    "pid": int,
    "metrics": dict,
    "summary": dict,
}


class ManifestError(ValueError):
    """A document failed manifest schema validation."""


def config_hash(payload: dict) -> str:
    """Short content hash of a cell's identifying parameters.

    Canonical-JSON SHA-256, truncated to 16 hex chars: enough to detect
    any drift in (workload, config, trace length, seed, interval)
    between runs that claim to be comparable.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def git_describe(repo_root: Path | None = None) -> str | None:
    """``git describe --always --dirty`` of the source tree, if any."""
    root = repo_root or Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    describe = out.stdout.strip()
    return describe or None


def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def cell_manifest(record: "RunObservability") -> dict:
    """One manifest cell from one run's observability record."""
    identity = {
        "workload": record.workload,
        "config": record.config,
        "seed": record.seed,
        "trace_length": record.trace_length,
        "interval": record.interval,
    }
    cell = {
        "workload": record.workload,
        "config": record.config,
        "seed": record.seed,
        "trace_length": record.trace_length,
        "interval": record.interval,
        "config_hash": config_hash(identity),
        "started_us": record.started_us,
        "duration_us": record.duration_us,
        "pid": record.pid,
        "host": record.host,
        "num_samples": len(record.samples),
        "num_degradations": len(record.degradations),
        "metrics": record.metrics,
        "summary": record.summary,
    }
    if record.profile is not None:
        # Attribution books and heatmaps belong in the manifest; the
        # raw walk-record reservoir would bloat it and is reproducible
        # from the cell's seed anyway.
        cell["profile"] = strip_reservoir(record.profile)
    return cell


def build_manifest(
    experiment: str,
    records: list["RunObservability"],
    jobs: int = 1,
    interval: int | None = None,
    argv: list[str] | None = None,
    duration_seconds: float | None = None,
    fabric: dict | None = None,
) -> dict:
    """Assemble the merged manifest for one experiment invocation.

    Cell order is ``(workload, config, seed)`` regardless of the order
    workers finished in, and the totals merge is order-independent, so
    serial and parallel runs of the same sweep produce the same
    manifest up to the wall-clock fields (:func:`stable_view`).

    ``fabric`` optionally records a distributed run's provenance: the
    coordinator address and the lease lifecycle events (granted /
    heartbeat / expired / completed, per worker) the coordinator
    reported for this sweep's batches.  It is volatile by definition
    (which worker ran which cell differs run to run), so
    :func:`stable_view` strips it.
    """
    cells = sorted(
        (cell_manifest(record) for record in records),
        key=lambda c: (c["workload"], c["config"], c["seed"]),
    )
    totals = {
        "cells": len(cells),
        "measured_refs": sum(c["summary"].get("measured_refs", 0) for c in cells),
        "walks": sum(c["summary"].get("walks", 0) for c in cells),
        "translation_cycles": sum(
            c["summary"].get("translation_cycles", 0.0) for c in cells
        ),
        "degradation_events": sum(c["num_degradations"] for c in cells),
        "metrics": merge_snapshots([c["metrics"] for c in cells]),
    }
    profiles = [c["profile"] for c in cells if "profile" in c]
    if profiles:
        # One order-independent merge over every profiled cell (cells
        # are already in canonical order, and merge_profiles sums all
        # inputs before any top-K cut).
        totals["profile"] = merge_profiles(profiles)
    manifest = {
        "kind": MANIFEST_KIND,
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "package_version": _package_version(),
        "python_version": platform.python_version(),
        "host": {"platform": platform.platform(), "machine": platform.machine()},
        "git": {"describe": git_describe()},
        "jobs": jobs,
        "interval": interval,
        "argv": list(argv) if argv is not None else None,
        "cells": cells,
        "totals": totals,
    }
    if duration_seconds is not None:
        manifest["duration_seconds"] = round(duration_seconds, 3)
    if fabric is not None:
        manifest["fabric"] = fabric
    return manifest


# ----------------------------------------------------------------------
# Validation / IO


def validate_manifest(data: object) -> dict:
    """Check a document against the manifest schema; return it typed.

    Raises :class:`ManifestError` naming every violated field, so tests
    and the ``stats`` subcommand reject malformed or foreign JSON with
    an actionable message.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        raise ManifestError(f"manifest must be a JSON object, got {type(data).__name__}")
    if data.get("kind") != MANIFEST_KIND:
        problems.append(f"kind must be {MANIFEST_KIND!r}, got {data.get('kind')!r}")
    if data.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got {data.get('schema_version')!r}"
        )
    for name, kind in _REQUIRED_TOP_FIELDS.items():
        if name not in data:
            problems.append(f"missing top-level field {name!r}")
        elif not isinstance(data[name], kind):
            problems.append(
                f"field {name!r} must be {kind.__name__}, got "
                f"{type(data[name]).__name__}"
            )
    for index, cell in enumerate(data.get("cells") or []):
        if not isinstance(cell, dict):
            problems.append(f"cells[{index}] must be an object")
            continue
        for name, kind in _REQUIRED_CELL_FIELDS.items():
            if name not in cell:
                problems.append(f"cells[{index}] missing field {name!r}")
            elif not isinstance(cell[name], kind):
                problems.append(
                    f"cells[{index}].{name} must be {kind.__name__}, got "
                    f"{type(cell[name]).__name__}"
                )
    if problems:
        raise ManifestError("; ".join(problems))
    return data


def write_manifest(manifest: dict, path: Path | str) -> Path:
    """Serialize a manifest to ``path`` (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: Path | str) -> dict:
    """Read and validate a manifest file."""
    data = json.loads(Path(path).read_text())
    return validate_manifest(data)


def stable_view(manifest: dict) -> dict:
    """The manifest minus wall-clock/host fields that vary across runs.

    Two invocations of the same sweep (any ``--jobs``) must produce
    equal stable views -- the determinism contract the tests assert.
    """
    out = {k: v for k, v in manifest.items() if k not in VOLATILE_TOP_FIELDS}
    out["cells"] = [
        {k: v for k, v in cell.items() if k not in VOLATILE_CELL_FIELDS}
        for cell in manifest.get("cells", [])
    ]
    return out
