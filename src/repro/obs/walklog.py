"""Bounded per-walk records and hot-page/hot-region heat aggregation.

The profiler (:mod:`repro.obs.profiler`) explains *where* walk cycles
went by structure; this module explains *which addresses* caused them:

* a **reservoir** of structured per-walk records (vpn, walk dimensions,
  per-level outcome, cycle cost) -- bounded memory, seed-deterministic
  (Vitter's algorithm R driven by a ``random.Random`` derived from the
  run seed), so two runs of the same cell sample identical walks;
* **page heat** -- per-4K-page walk counts and fixed-point cycle sums,
  capped at :data:`DEFAULT_MAX_PAGES` distinct pages (overflow is
  counted, never silently dropped);
* **region heat** -- TLB-miss walks per 2 MB region (the paper's
  large-page granularity), for spotting hot segments a direct mode
  would flatten.

Snapshots are plain JSON-ready dicts.  Top-K lists are cut
deterministically (ties broken by ascending page number) and
:func:`merge_walklogs` sums every input before re-cutting, so manifest
totals are independent of worker completion order.
"""

from __future__ import annotations

import random

#: Per-walk records kept per run (algorithm-R reservoir).
DEFAULT_RESERVOIR = 256

#: Distinct pages tracked exactly; later new pages only bump
#: ``pages_dropped``.
DEFAULT_MAX_PAGES = 4096

#: Entries kept in snapshot top-K lists (pages and regions).
TOP_CAP = 256

#: 4 KB pages per 2 MB region.
REGION_SHIFT = 9

#: Mixed into the run seed so the reservoir stream is decoupled from
#: any other consumer of the same seed.
_SEED_SALT = 0x9E3779B97F4A7C15


class WalkLog:
    """Seed-deterministic walk sampling plus page/region heat."""

    def __init__(
        self,
        seed: int = 0,
        reservoir_size: int = DEFAULT_RESERVOIR,
        max_pages: int = DEFAULT_MAX_PAGES,
    ) -> None:
        if reservoir_size < 0:
            raise ValueError(f"reservoir_size must be >= 0, got {reservoir_size}")
        if max_pages <= 0:
            raise ValueError(f"max_pages must be positive, got {max_pages}")
        self.seed = seed
        self.reservoir_size = reservoir_size
        self.max_pages = max_pages
        self._rng = random.Random(_SEED_SALT ^ seed)
        self.reservoir: list[dict] = []
        self.walks_seen = 0
        #: vpn -> [walks, cycles_fp]
        self.pages: dict[int, list[int]] = {}
        self.pages_dropped = 0
        #: 2 MB region index (vpn >> 9) -> walk (= L2 TLB miss) count.
        self.regions: dict[int, int] = {}

    def record(self, record: dict) -> None:
        """Log one completed walk (called by the profiler's end_walk)."""
        self.walks_seen += 1
        if self.reservoir_size:
            if len(self.reservoir) < self.reservoir_size:
                self.reservoir.append(record)
            else:
                slot = self._rng.randrange(self.walks_seen)
                if slot < self.reservoir_size:
                    self.reservoir[slot] = record
        vpn = record["vpn"]
        entry = self.pages.get(vpn)
        if entry is not None:
            entry[0] += 1
            entry[1] += record["cycles_fp"]
        elif len(self.pages) < self.max_pages:
            self.pages[vpn] = [1, record["cycles_fp"]]
        else:
            self.pages_dropped += 1
        region = vpn >> REGION_SHIFT
        self.regions[region] = self.regions.get(region, 0) + 1

    # ------------------------------------------------------------------

    def top_pages(self, k: int = TOP_CAP) -> list[list[int]]:
        """Hottest pages as ``[vpn, walks, cycles_fp]``, most cycles first."""
        ranked = sorted(
            self.pages.items(), key=lambda item: (-item[1][1], item[0])
        )
        return [[vpn, walks, fp] for vpn, (walks, fp) in ranked[:k]]

    def top_regions(self, k: int = TOP_CAP) -> list[list[int]]:
        """Most-missed 2 MB regions as ``[region, walks]``."""
        ranked = sorted(
            self.regions.items(), key=lambda item: (-item[1], item[0])
        )
        return [[region, walks] for region, walks in ranked[:k]]

    def snapshot(self) -> dict:
        """Deterministic JSON-ready view (top-K lists already cut)."""
        return {
            "walks_seen": self.walks_seen,
            "reservoir_size": self.reservoir_size,
            "reservoir": [dict(r, levels=list(r["levels"]))
                          for r in self.reservoir],
            "pages_tracked": len(self.pages),
            "pages_dropped": self.pages_dropped,
            "pages": self.top_pages(),
            "regions_tracked": len(self.regions),
            "regions": self.top_regions(),
        }


def merge_walklogs(snapshots: list[dict]) -> dict:
    """Order-independent merge of walklog snapshots (sum, then cut).

    Page and region heat sum by key across *all* inputs before the
    top-K cut, so any permutation of the inputs yields the same result.
    Reservoirs are not merged -- a mixture of per-cell samples has no
    seed that reproduces it -- so the merged view carries an empty one.
    """
    pages: dict[int, list[int]] = {}
    regions: dict[int, int] = {}
    walks_seen = 0
    pages_dropped = 0
    for snap in snapshots:
        walks_seen += snap["walks_seen"]
        pages_dropped += snap["pages_dropped"]
        for vpn, walks, fp in snap["pages"]:
            have = pages.get(vpn)
            if have is None:
                pages[vpn] = [walks, fp]
            else:
                have[0] += walks
                have[1] += fp
        for region, walks in snap["regions"]:
            regions[region] = regions.get(region, 0) + walks
    ranked_pages = sorted(pages.items(), key=lambda item: (-item[1][1], item[0]))
    ranked_regions = sorted(regions.items(), key=lambda item: (-item[1], item[0]))
    return {
        "walks_seen": walks_seen,
        "reservoir_size": 0,
        "reservoir": [],
        "pages_tracked": len(pages),
        "pages_dropped": pages_dropped,
        "pages": [[vpn, walks, fp] for vpn, (walks, fp) in ranked_pages[:TOP_CAP]],
        "regions_tracked": len(regions),
        "regions": [[region, walks] for region, walks in ranked_regions[:TOP_CAP]],
    }
