"""Metric primitives: counters, gauges and fixed-bucket histograms.

The simulator's components (MMU, batched engine, degradation log, fault
injector, trace cache) report into a :class:`MetricsRegistry` through
hooks that cost one attribute load and a truthiness check when no
registry is attached -- the registry is opt-in per run, so the default
(unobserved) hot paths stay within noise of the uninstrumented code
(asserted by ``python -m repro.experiments bench``).

Design points:

* **Name-addressed, lazily created.**  A metric exists once something
  reports to it; components need no up-front declarations and the
  registry never pays for metrics a configuration cannot produce.
* **Fixed buckets.**  Histograms use fixed upper-bound bucket arrays
  (chosen per metric family in :data:`BUCKET_FAMILIES`), so snapshots
  from different runs/processes are always mergeable bucket-by-bucket.
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot`
  returns plain sorted dicts, safe to hash, diff and embed in
  run-provenance manifests (:mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: Histogram upper bounds per metric family (longest prefix match on the
#: metric name); every histogram implicitly gains a final +inf bucket.
#: Families mirror what the components report -- see OBSERVABILITY.md.
BUCKET_FAMILIES: dict[str, tuple[float, ...]] = {
    # Modelled page-walk latency: native walks land around tens of
    # cycles, cold 2D walks in the hundreds (24 refs worst case).
    "mmu.walk_latency_cycles": (0, 20, 40, 60, 90, 130, 200, 300, 450, 700, 1100),
    # Memory references issued per walk (paper Table IV's dimensions:
    # 0/1/4/24 refs for the flattening levels).
    "mmu.walk_refs": (0, 1, 2, 4, 8, 16, 24),
    # Batched-engine vectorized chunk sizes (MIN_CHUNK=256 growing 4x
    # toward MAX_CHUNK=16384).
    "engine.batch_chunk_refs": (64, 256, 1024, 4096, 16384),
    # Graceful-degradation reaction costs (page fault ~ thousands of
    # cycles, shootdown + migration far more).
    "degradation.cycle_cost": (0, 1e3, 5e3, 2e4, 1e5, 1e6),
    # Escape-filter occupancy (256-bit/4-hash filter saturates in the
    # tens of pages).
    "escape_filter.occupancy": (0, 1, 2, 4, 8, 16, 32, 64, 128),
}

#: Fallback buckets: decades, enough to sketch any unanticipated metric.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 10, 100, 1e3, 1e4, 1e5, 1e6)


def buckets_for(name: str) -> tuple[float, ...]:
    """The fixed bucket bounds for a metric name (longest prefix wins)."""
    best = None
    for prefix, bounds in BUCKET_FAMILIES.items():
        if name.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    return BUCKET_FAMILIES[best] if best is not None else DEFAULT_BUCKETS


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0 for the merge semantics to hold)."""
        self.value += amount

    def as_dict(self) -> dict:
        """Snapshot form."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (last write wins; extremes tracked)."""

    value: float = 0
    min: float = float("inf")
    max: float = float("-inf")

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        """Snapshot form (min/max omitted until the first set)."""
        out: dict = {"type": "gauge", "value": self.value}
        if self.min <= self.max:
            out["min"] = self.min
            out["max"] = self.max
        return out


@dataclass
class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``bounds`` are inclusive upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the last bound (``counts`` has
    ``len(bounds) + 1`` slots).
    """

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Average observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated ``q``-quantile of the observations.

        Exact values are gone once bucketed, so this interpolates
        linearly within the bucket holding the ``q``-th observation --
        the standard Prometheus ``histogram_quantile`` estimate.  The
        overflow bucket has no upper bound and clamps to the last
        finite bound; an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.bounds):
                    return float(self.bounds[-1])
                upper = float(self.bounds[index])
                lower = (
                    float(self.bounds[index - 1])
                    if index > 0
                    else min(0.0, upper)
                )
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return float(self.bounds[-1])  # pragma: no cover - rank <= count

    def as_dict(self) -> dict:
        """Snapshot form (bounds listed so merges can check geometry).

        Includes the derived ``mean``/``p50``/``p95``/``p99`` summary
        stats; :func:`merge_snapshots` recomputes them from the merged
        buckets, so they stay consistent under aggregation.
        """
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Name-addressed home for every metric one run produces.

    Components hold an optional reference (``self.metrics``, default
    ``None``) and guard every report with ``if m is not None and
    m.enabled`` -- the no-op-when-disabled contract.  A disabled
    registry (``enabled=False``) can be attached to measure the hook
    overhead itself; it accepts and drops every report.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Reporting

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment the counter ``name`` (created on first use)."""
        if not self.enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (created on first use)."""
        if not self.enabled:
            return
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(buckets_for(name))
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float | None:
        """Current value of a gauge (None when never set)."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else None

    def histogram(self, name: str) -> Histogram | None:
        """The histogram object for ``name`` (None when never observed)."""
        return self._histograms.get(name)

    def names(self) -> list[str]:
        """Every metric name in the registry, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> dict[str, dict]:
        """Deterministic plain-dict view of every metric, sorted by name."""
        out: dict[str, dict] = {}
        for name in self.names():
            if name in self._counters:
                out[name] = self._counters[name].as_dict()
            elif name in self._gauges:
                out[name] = self._gauges[name].as_dict()
            else:
                out[name] = self._histograms[name].as_dict()
        return out


def merge_snapshots(snapshots: list[dict]) -> dict[str, dict]:
    """Combine per-run metric snapshots into one aggregate.

    Counters and histogram buckets sum (fixed buckets guarantee
    bucket-wise compatibility; mismatched bounds raise ``ValueError``);
    gauges keep the min/max envelope and the last value in input order.
    The result is sorted by name, so merging is deterministic for a
    deterministic input order.
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for name, data in snap.items():
            kind = data.get("type")
            have = merged.get(name)
            if have is None:
                merged[name] = {k: (list(v) if isinstance(v, list) else v)
                                for k, v in data.items()}
                continue
            if have.get("type") != kind:
                raise ValueError(f"metric {name!r}: kind mismatch in merge")
            if kind == "counter":
                have["value"] += data["value"]
            elif kind == "gauge":
                have["value"] = data["value"]
                if "min" in data:
                    have["min"] = min(have.get("min", data["min"]), data["min"])
                    have["max"] = max(have.get("max", data["max"]), data["max"])
            elif kind == "histogram":
                if list(have["bounds"]) != list(data["bounds"]):
                    raise ValueError(
                        f"metric {name!r}: histogram bounds differ in merge"
                    )
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], data["counts"])
                ]
                have["sum"] += data["sum"]
                have["count"] += data["count"]
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
    for data in merged.values():
        # Summary stats do not merge linearly (a merged p95 is not a
        # function of per-run p95s); recompute them from the merged
        # buckets instead.
        if data.get("type") == "histogram":
            histogram = Histogram(
                bounds=tuple(data["bounds"]),
                counts=list(data["counts"]),
                total=data["sum"],
                count=data["count"],
            )
            data["mean"] = histogram.mean
            data["p50"] = histogram.quantile(0.50)
            data["p95"] = histogram.quantile(0.95)
            data["p99"] = histogram.quantile(0.99)
    return dict(sorted(merged.items()))
