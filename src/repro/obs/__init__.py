"""repro.obs: metrics, structured tracing and run-provenance manifests.

The observability layer the rest of the simulator reports into:

* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms behind a :class:`MetricsRegistry`, attached per run via
  cheap no-op-when-disabled hooks;
* :mod:`repro.obs.tracing` -- :class:`RunObserver` interval time
  series plus Chrome-trace (``chrome://tracing`` / Perfetto) span
  export for experiment cells;
* :mod:`repro.obs.manifest` -- deterministic run-provenance
  ``manifest.json`` documents with schema validation.

See OBSERVABILITY.md for metric names, bucket layouts, the manifest
schema and CLI usage (``--metrics/--trace-out/--interval`` and the
``stats`` subcommand).
"""

from repro.obs.manifest import (
    MANIFEST_KIND,
    SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    stable_view,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.tracing import (
    DEFAULT_INTERVAL,
    IntervalSample,
    ObsOptions,
    RunObservability,
    RunObserver,
    chrome_trace,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "MANIFEST_KIND",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSample",
    "ManifestError",
    "MetricsRegistry",
    "ObsOptions",
    "RunObservability",
    "RunObserver",
    "build_manifest",
    "chrome_trace",
    "load_manifest",
    "merge_snapshots",
    "stable_view",
    "validate_manifest",
    "write_manifest",
]
