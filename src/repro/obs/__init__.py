"""repro.obs: metrics, structured tracing and run-provenance manifests.

The observability layer the rest of the simulator reports into:

* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket
  histograms behind a :class:`MetricsRegistry`, attached per run via
  cheap no-op-when-disabled hooks;
* :mod:`repro.obs.tracing` -- :class:`RunObserver` interval time
  series plus Chrome-trace (``chrome://tracing`` / Perfetto) span
  export for experiment cells;
* :mod:`repro.obs.manifest` -- deterministic run-provenance
  ``manifest.json`` documents with schema validation;
* :mod:`repro.obs.profiler` / :mod:`repro.obs.walklog` /
  :mod:`repro.obs.report` -- the cycle-accounting profiler: exact
  per-walk attribution of modelled cycles to (structure, level, cause)
  axes, hot-page heatmaps, and text/folded-stack/HTML reports.

See OBSERVABILITY.md for metric names, bucket layouts, the manifest
schema, the profiler's conservation invariant, and CLI usage
(``--metrics/--profile/--trace-out/--interval`` and the ``stats`` /
``profile`` subcommands).
"""

from repro.obs.manifest import (
    MANIFEST_KIND,
    SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    stable_view,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.profiler import (
    SCALE,
    WalkProfiler,
    from_fixed,
    merge_profiles,
    strip_reservoir,
    to_fixed,
)
from repro.obs.report import render_folded, render_html, render_text
from repro.obs.tracing import (
    DEFAULT_INTERVAL,
    IntervalSample,
    ObsOptions,
    RunObservability,
    RunObserver,
    chrome_trace,
)
from repro.obs.walklog import WalkLog, merge_walklogs

__all__ = [
    "DEFAULT_INTERVAL",
    "MANIFEST_KIND",
    "SCALE",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSample",
    "ManifestError",
    "MetricsRegistry",
    "ObsOptions",
    "RunObservability",
    "RunObserver",
    "WalkLog",
    "WalkProfiler",
    "build_manifest",
    "chrome_trace",
    "from_fixed",
    "load_manifest",
    "merge_profiles",
    "merge_snapshots",
    "merge_walklogs",
    "render_folded",
    "render_html",
    "render_text",
    "stable_view",
    "strip_reservoir",
    "to_fixed",
    "validate_manifest",
    "write_manifest",
]
