"""Structured run tracing: interval time series and Chrome-trace spans.

End-of-run counter totals cannot show *when* TLB behaviour changed
mid-trace.  A :class:`RunObserver` attached to a simulation run fixes
that in two complementary forms:

* **Interval samples** -- every ``interval`` measured references the
  observer snapshots the cumulative MMU/TLB counters into an
  :class:`IntervalSample`, giving per-phase miss rates and cycle
  breakdowns as a time series (the batched fast path is simply driven
  in interval-sized chunks, which its equivalence invariant makes
  bit-identical to one big run).
* **Chrome-trace spans** -- :func:`chrome_trace` renders a set of
  per-cell :class:`RunObservability` records as Chrome Trace Event
  Format JSON (load in ``chrome://tracing`` or https://ui.perfetto.dev):
  one complete-event span per experiment cell (named
  ``workload/config``, grouped by worker process), counter tracks from
  the interval samples, and instant events for every graceful-
  degradation reaction, ordered by their monotonic sequence key.

Everything an observer produces is plain picklable data, so parallel
sweep workers ship their records back to the parent inside the
:class:`~repro.sim.simulator.SimulationResult`.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.sim.system import SimulatedSystem

#: Default measured references between interval samples.
DEFAULT_INTERVAL = 2_000


def run_host() -> str:
    """The host label stamped on observability records.

    Matches :func:`repro.fabric.worker.worker_host` (fabric workers and
    local runs label lanes the same way); ``REPRO_FABRIC_HOST`` in the
    environment overrides the real node name, which tests use to
    exercise multi-host trace layouts on one machine.
    """
    return os.environ.get("REPRO_FABRIC_HOST") or platform.node() or "localhost"


@dataclass(frozen=True)
class ObsOptions:
    """Picklable observability request, carried by experiment tasks.

    ``interval`` is the sampling period in measured references (None
    disables the time series but keeps metrics and the run span).
    ``profile`` additionally attaches a cycle-accounting
    :class:`~repro.obs.profiler.WalkProfiler` to every run (the
    ``--profile`` flag); simulation results stay bit-identical.
    """

    interval: int | None = DEFAULT_INTERVAL
    profile: bool = False

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")

    def make_observer(self) -> "RunObserver":
        """A fresh observer (one per simulation run)."""
        return RunObserver(
            MetricsRegistry(), interval=self.interval, profile=self.profile
        )


@dataclass(frozen=True)
class IntervalSample:
    """Cumulative counters at one point of the measured reference stream.

    Values are cumulative since the post-warm-up counter reset;
    consumers difference consecutive samples for per-interval rates.
    """

    ref_index: int
    accesses: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    walks: int
    walk_cycles: float
    translation_cycles: float
    dual_direct_hits: int
    segment_l2_parallel_hits: int
    #: Escape-filter occupancy of the active VM/process (-1 when the
    #: configuration has no filter).
    escape_filter_pages: int


@dataclass(frozen=True)
class RunObservability:
    """Everything one observed run produced, as plain picklable data."""

    workload: str
    config: str
    seed: int
    trace_length: int | None
    interval: int | None
    #: Wall-clock span of the whole run (build excluded), microseconds
    #: since the epoch -- comparable across worker processes.
    started_us: int
    duration_us: int
    pid: int
    samples: tuple[IntervalSample, ...]
    #: Deterministic metric snapshot (:meth:`MetricsRegistry.snapshot`).
    metrics: dict
    #: End-of-run summary (overhead %, counter totals, ...).
    summary: dict
    #: Host the run executed on (fabric workers span machines; local
    #: runs record the node name).  ``REPRO_FABRIC_HOST`` overrides.
    host: str = ""
    #: Graceful-degradation events as plain dicts, ordered by their
    #: monotonic ``(ref_index, seq)`` key.
    degradations: tuple[dict, ...] = ()
    #: Cycle-attribution snapshot (:meth:`WalkProfiler.finalize`);
    #: None unless the run was profiled.  Includes the full walk-record
    #: reservoir -- manifests strip it, reports consume it.
    profile: dict | None = None


class RunObserver:
    """Collects metrics and interval samples for one simulation run.

    The observer owns the run's :class:`MetricsRegistry`; attaching it
    to a built system points every component hook (MMU, engine,
    degradation log, fault injector) at that registry.  Detached
    systems keep their default ``metrics = None`` and pay only the
    hooks' None checks.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        interval: int | None = DEFAULT_INTERVAL,
        profile: bool = False,
    ) -> None:
        if interval is not None and interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.interval = interval
        self.profile = profile
        #: Created lazily at :meth:`attach` so the walk-record reservoir
        #: is seeded from the run seed (set via :meth:`set_run_info`).
        self.profiler = None
        self.samples: list[IntervalSample] = []
        self.seed = 0
        self.trace_length: int | None = None
        self._started_us = 0
        self._perf_start = 0.0

    # ------------------------------------------------------------------

    def set_run_info(self, seed: int, trace_length: int | None) -> None:
        """Record provenance facts the observer cannot see itself."""
        self.seed = seed
        self.trace_length = trace_length

    def attach(self, system: "SimulatedSystem") -> None:
        """Point the system's component hooks at this observer's registry."""
        system.mmu.metrics = self.metrics
        if system.hypervisor is not None:
            system.hypervisor.degradation_log.metrics = self.metrics
        if self.profile:
            if self.profiler is None:
                from repro.obs.profiler import WalkProfiler

                self.profiler = WalkProfiler(seed=self.seed)
            self.profiler.attach(system)

    def begin(self) -> None:
        """Mark the start of the measured portion."""
        self._started_us = int(time.time() * 1e6)
        self._perf_start = time.perf_counter()

    def sample(self, ref_index: int, system: "SimulatedSystem") -> None:
        """Snapshot cumulative counters after ``ref_index`` measured refs."""
        c = system.mmu.counters
        occupancy = -1
        if system.vm is not None:
            occupancy = len(system.vm.escape_filter)
        elif getattr(system.process, "guest_escape_filter", None) is not None:
            occupancy = len(system.process.guest_escape_filter)
        if occupancy >= 0:
            self.metrics.set_gauge("escape_filter.pages", occupancy)
            self.metrics.observe("escape_filter.occupancy", occupancy)
        self.samples.append(
            IntervalSample(
                ref_index=ref_index,
                accesses=c.accesses,
                l1_hits=c.l1_hits,
                l1_misses=c.l1_misses,
                l2_hits=c.l2_hits,
                l2_misses=c.l2_misses,
                walks=c.walks,
                walk_cycles=c.walk_cycles,
                translation_cycles=c.translation_cycles,
                dual_direct_hits=c.dual_direct_hits,
                segment_l2_parallel_hits=c.segment_l2_parallel_hits,
                escape_filter_pages=occupancy,
            )
        )

    def finalize(
        self,
        system: "SimulatedSystem",
        workload_name: str = "",
        overhead_percent: float = 0.0,
        measured_refs: int = 0,
    ) -> RunObservability:
        """Freeze everything collected into a picklable record."""
        duration_us = int((time.perf_counter() - self._perf_start) * 1e6)
        c = system.mmu.counters
        hierarchy = system.hierarchy
        summary = {
            "overhead_percent": overhead_percent,
            "measured_refs": measured_refs,
            "accesses": c.accesses,
            "l1_hits": c.l1_hits,
            "l1_misses": c.l1_misses,
            "l2_hits": c.l2_hits,
            "l2_misses": c.l2_misses,
            "walks": c.walks,
            "walk_cycles": c.walk_cycles,
            "translation_cycles": c.translation_cycles,
            "faults": c.faults,
            "walks_by_case": dict(c.walks_by_case),
            "tlb": hierarchy.stats_snapshot(),
        }
        degradations: tuple[dict, ...] = ()
        if system.hypervisor is not None:
            log = system.hypervisor.degradation_log
            degradations = tuple(
                _degradation_dict(event) for event in log.sorted_events()
            )
            self.metrics.set_gauge("degradation.total_events", len(log))
        profile = None
        if self.profiler is not None:
            profile = self.profiler.finalize(system)
            self.metrics.set_gauge("profile.walks", profile["walks"])
            self.metrics.set_gauge("profile.axes", len(profile["axes"]))
            self.metrics.set_gauge(
                "profile.attributed_cycles",
                profile["total_cycles_fp"] / profile["scale"],
            )
            walklog = profile.get("walklog")
            if walklog is not None:
                self.metrics.set_gauge(
                    "profile.pages_tracked", walklog["pages_tracked"]
                )
                self.metrics.set_gauge(
                    "profile.reservoir_samples", len(walklog["reservoir"])
                )
        return RunObservability(
            workload=workload_name,
            config=system.config.label,
            seed=self.seed,
            trace_length=self.trace_length,
            interval=self.interval,
            started_us=self._started_us,
            duration_us=max(duration_us, 1),
            pid=os.getpid(),
            host=run_host(),
            samples=tuple(self.samples),
            metrics=self.metrics.snapshot(),
            summary=summary,
            degradations=degradations,
            profile=profile,
        )


def _degradation_dict(event: Any) -> dict:
    """A DegradationEvent as plain JSON-ready data (ordering key kept)."""
    return {
        "ref_index": event.ref_index,
        "seq": event.seq,
        "vm": event.vm_name,
        "action": event.action.value,
        "detail": event.detail,
        "from_mode": event.from_mode.value if event.from_mode else None,
        "to_mode": event.to_mode.value if event.to_mode else None,
        "cycle_cost": event.cycle_cost,
    }


# ----------------------------------------------------------------------
# Chrome Trace Event Format (chrome://tracing, Perfetto)


def chrome_trace(
    records: list[RunObservability], experiment: str = ""
) -> dict:
    """Render observed runs as a Chrome-trace JSON object.

    Spans are laid out on their real wall-clock timeline (normalized so
    the earliest cell starts at ts 0), one process row per worker --
    a ``--jobs 4`` sweep therefore shows four lanes of overlapping
    cells.  Single-host runs keep the raw worker pid as the lane id;
    records spanning several hosts (a fabric sweep) get one lane per
    ``(host, pid)`` pair with the host in the lane name, so two workers
    that happen to share a pid on different machines never collapse
    into one row.  Interval samples become per-cell counter tracks;
    degradation events become instant events inside their cell's span.
    """
    events: list[dict] = []
    if not records:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(r.started_us for r in records)
    multi_host = len({r.host for r in records}) > 1
    lanes: dict[tuple[str, int], int] = {}
    for index, (host, pid) in enumerate(
        sorted({(r.host, r.pid) for r in records}), start=1
    ):
        lane = index if multi_host else pid
        lanes[(host, pid)] = lane
        label = (
            f"{experiment or 'experiment'} {host or '?'} worker {pid}"
            if multi_host
            else f"{experiment or 'experiment'} worker {pid}"
        )
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": lane,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in records:
        name = f"{record.workload}/{record.config}"
        start = record.started_us - t0
        lane = lanes[(record.host, record.pid)]
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": "cell",
                "ts": start,
                "dur": record.duration_us,
                "pid": lane,
                "tid": 0,
                "args": {
                    "seed": record.seed,
                    "host": record.host,
                    "worker_pid": record.pid,
                    "overhead_percent": record.summary.get("overhead_percent"),
                    "walks": record.summary.get("walks"),
                    "l1_misses": record.summary.get("l1_misses"),
                },
            }
        )
        events.extend(_counter_events(record, name, start, lane))
        events.extend(_degradation_events(record, name, start, lane))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _sample_ts(record: RunObservability, ref_index: int, start: int) -> int:
    """Wall-clock position of a reference index, linearly interpolated."""
    total = record.samples[-1].ref_index if record.samples else 0
    if total <= 0:
        return start
    frac = min(max(ref_index, 0), total) / total
    return start + int(frac * record.duration_us)


def _counter_events(
    record: RunObservability, name: str, start: int, lane: int
) -> list[dict]:
    events = []
    prev_refs = 0
    prev_misses = 0
    prev_cycles = 0.0
    for sample in record.samples:
        refs = sample.ref_index - prev_refs
        if refs <= 0:
            continue
        misses_per_kref = 1000.0 * (sample.l1_misses - prev_misses) / refs
        cycles_per_ref = (sample.translation_cycles - prev_cycles) / refs
        prev_refs = sample.ref_index
        prev_misses = sample.l1_misses
        prev_cycles = sample.translation_cycles
        ts = _sample_ts(record, sample.ref_index, start)
        events.append(
            {
                "ph": "C",
                "name": f"{name} L1 misses/kref",
                "ts": ts,
                "pid": lane,
                "tid": 0,
                "args": {"misses_per_kref": round(misses_per_kref, 3)},
            }
        )
        events.append(
            {
                "ph": "C",
                "name": f"{name} translation cycles/ref",
                "ts": ts,
                "pid": lane,
                "tid": 0,
                "args": {"cycles_per_ref": round(cycles_per_ref, 4)},
            }
        )
    return events


def _degradation_events(
    record: RunObservability, name: str, start: int, lane: int
) -> list[dict]:
    events = []
    for degradation in record.degradations:
        ts = _sample_ts(record, degradation["ref_index"], start)
        events.append(
            {
                "ph": "i",
                "name": f"{degradation['action']}: {name}",
                "cat": "degradation",
                "s": "p",
                "ts": ts,
                "pid": lane,
                "tid": 0,
                "args": {
                    "detail": degradation["detail"],
                    "ref_index": degradation["ref_index"],
                    "seq": degradation["seq"],
                    "cycle_cost": degradation["cycle_cost"],
                },
            }
        )
    return events
