"""Cycle-accounting profiler: exact per-walk attribution of modelled cycles.

Aggregate counters (:mod:`repro.obs.metrics`) say *how many* cycles a
configuration spent translating; they cannot say *where* those cycles
went.  The :class:`WalkProfiler` answers that: every modelled cycle of
every page walk is attributed to a ``(structure, level, cause)`` axis --
a guest or host radix level, the segment-register check path, the nested
TLB probe, and so on -- together with a folded call path
(``walk;guest_L4;host_L3``) suitable for flamegraph tooling.

**Conservation invariant.**  Per-axis attributions must sum *exactly*
(integer equality) to the MMU's total modelled cycles.  Cycle costs are
floats (cache-residency blends like 12.56 cycles per PTE), so naive
per-charge float sums drift away from the float-accumulated
``MMUCounters.walk_cycles``.  The profiler therefore works in fixed
point at :data:`SCALE` = 2**52:

* :func:`to_fixed` converts a float to an integer number of
  ``1/SCALE`` cycle quanta, exactly, via ``float.as_integer_ratio``;
* a *mirror* accumulator repeats the MMU's own ``walk_cycles +=
  outcome.cycles`` float addition bit-for-bit, so per walk the exact
  integer delta ``to_fixed(mirror') - to_fixed(mirror)`` telescopes to
  ``to_fixed(counters.walk_cycles)`` over the whole run;
* the (tiny) difference between that delta and the walk's per-charge
  fixed-point sum is folded into the walk's largest charge, so axis
  sums conserve by construction.

The scalar and batched translation paths share every walk-side code
path (the batched engine fast-paths only proven L1 hits, which cost
zero cycles), so one set of walker/MMU hooks covers both engines and
profiles are engine-invariant.

Hooks follow the no-op-when-disabled pattern: components hold
``self.profiler = None`` by default and pay one attribute load plus a
``None`` check per *walk* (never per reference), keeping the bench
gate's <2% disabled-overhead budget intact.  TLB hit/miss and
fast-path event counts are derived from counter deltas at
:meth:`WalkProfiler.finalize` instead of hot-path callbacks.

Degradation reactions are charged on top of translation cycles by the
fault layer, so they live in a separate pair of books, conserved
against ``DegradationLog.total_cycle_cost`` by the same mirror trick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.walker import WalkOutcome
    from repro.sim.system import SimulatedSystem

from repro.obs.walklog import WalkLog

#: Fixed-point scale: one modelled cycle == 2**52 quanta.  Every cost
#: the simulator charges is a float with at most 52 fractional mantissa
#: bits at magnitude >= 1, so :func:`to_fixed` is exact for them.
SCALE = 1 << 52

#: Axis key for cycles no buffered charge could explain (defensive; a
#: correctly hooked walker never produces these).
UNATTRIBUTED = ("walk", "-", "unattributed")

#: Root frame of every folded stack.
ROOT_FRAME = "walk"


def to_fixed(value: float) -> int:
    """``value`` in 1/SCALE cycle quanta (exact for sane magnitudes).

    Exact whenever the float's denominator divides ``SCALE`` (true for
    every value >= 2**-52 and for 0); deterministic floor-rounding
    otherwise, which preserves the telescoping-sum conservation because
    the same pure function maps both sides of the invariant.
    """
    if value == 0.0:
        return 0
    numerator, denominator = float(value).as_integer_ratio()
    if denominator <= SCALE:
        return numerator * (SCALE // denominator)
    return (numerator * SCALE) // denominator


def from_fixed(quanta: int) -> float:
    """Back to (approximate) cycles, for display only."""
    return quanta / SCALE


class WalkProfiler:
    """Attributes every modelled walk cycle to a (structure, level, cause) axis.

    One profiler observes one run.  The MMU calls :meth:`begin_walk` /
    :meth:`end_walk` around each walk attempt; walkers report each cost
    site through :meth:`charge` and shape the folded stack with
    :meth:`enter`/:meth:`leave`.  ``begin_walk`` discards any charges
    buffered by a previous faulted attempt (whose cycles never reached
    the counters), so retries cannot break conservation.
    """

    def __init__(
        self,
        seed: int = 0,
        walklog: bool = True,
        reservoir_size: int | None = None,
        max_pages: int | None = None,
    ) -> None:
        self.seed = seed
        #: (structure, level, cause) -> fixed-point cycles / event count.
        self.axis_cycles: dict[tuple[str, str, str], int] = {}
        self.axis_counts: dict[tuple[str, str, str], int] = {}
        #: folded stack (tuple of frames) -> fixed-point cycles.
        self.folded: dict[tuple[str, ...], int] = {}
        self.walks = 0
        #: Degradation books (separate conservation domain).
        self.degradation_cycles: dict[str, int] = {}
        self.degradation_counts: dict[str, int] = {}
        # Bit-identical mirrors of the float accumulations being attributed.
        self._mirror = 0.0
        self._mirror_fp = 0
        self._deg_mirror = 0.0
        self._deg_mirror_fp = 0
        # Per-walk state.
        self._buffer: list[tuple[tuple[str, str, str], float, tuple[str, ...]]] = []
        self._stack: list[str] = [ROOT_FRAME]
        self._vaddr = 0
        self._walk_open = False
        # Escape-filter probe baselines captured at attach().
        self._filter_baselines: list[tuple[str, object, int, int]] = []
        self._nested_baseline: tuple[int, int] = (0, 0)
        kwargs = {}
        if reservoir_size is not None:
            kwargs["reservoir_size"] = reservoir_size
        if max_pages is not None:
            kwargs["max_pages"] = max_pages
        self.walklog: WalkLog | None = (
            WalkLog(seed=seed, **kwargs) if walklog else None
        )

    # ------------------------------------------------------------------
    # Hot-path hooks (called by MMU / walkers, only on walks)

    def begin_walk(self, vaddr: int) -> None:
        """Open one walk attempt; discards any prior attempt's charges."""
        self._buffer.clear()
        del self._stack[1:]
        self._vaddr = vaddr
        self._walk_open = True

    def charge(
        self,
        structure: str,
        level: str,
        cause: str,
        cycles: float,
        frame: str | None = None,
    ) -> None:
        """Buffer one cycle charge at the current folded-stack position.

        ``frame`` names a leaf frame appended below the current stack;
        ``None`` charges self-time at the current path.  Zero-cycle
        charges record pure events (counted on the axis, absent from
        the folded output).
        """
        path = tuple(self._stack) if frame is None else (*self._stack, frame)
        self._buffer.append(((structure, level, cause), cycles, path))

    def event(self, structure: str, level: str, cause: str) -> None:
        """Buffer a zero-cycle event (PWC hit/miss, probe, ...)."""
        self._buffer.append(((structure, level, cause), 0.0, tuple(self._stack)))

    def enter(self, frame: str) -> None:
        """Push a folded-stack frame (a nested sub-resolution begins)."""
        self._stack.append(frame)

    def leave(self) -> None:
        """Pop the innermost folded-stack frame."""
        if len(self._stack) > 1:
            self._stack.pop()

    def fault_event(self, dimension: str) -> None:
        """Count a translation fault (charged even when the walk retries)."""
        key = ("fault", dimension, "raised")
        self.axis_counts[key] = self.axis_counts.get(key, 0) + 1

    def end_walk(self, outcome: "WalkOutcome", case: str) -> None:
        """Close the walk: conserve, attribute, and log it.

        Must be called immediately after the MMU performs
        ``counters.walk_cycles += outcome.cycles``: the mirror repeats
        that exact float operation, so the fixed-point delta between
        the old and new mirror is this walk's exact contribution to the
        accumulated counter, however float rounding fell.
        """
        new_mirror = self._mirror + outcome.cycles
        new_fp = to_fixed(new_mirror)
        walk_fp = new_fp - self._mirror_fp
        self._mirror = new_mirror
        self._mirror_fp = new_fp

        charges = [
            (key, to_fixed(cycles), path)
            for key, cycles, path in self._buffer
        ]
        residual = walk_fp - sum(fp for _, fp, _ in charges)
        if residual:
            best = -1
            best_fp = -1
            for index, (_, fp, _) in enumerate(charges):
                if fp > best_fp:
                    best_fp = fp
                    best = index
            if best >= 0:
                key, fp, path = charges[best]
                charges[best] = (key, fp + residual, path)
            else:
                charges.append((UNATTRIBUTED, residual, (ROOT_FRAME,)))

        axis_cycles = self.axis_cycles
        axis_counts = self.axis_counts
        folded = self.folded
        pte_frames: list[str] = []
        for key, fp, path in charges:
            axis_cycles[key] = axis_cycles.get(key, 0) + fp
            axis_counts[key] = axis_counts.get(key, 0) + 1
            if fp:
                folded[path] = folded.get(path, 0) + fp
            if key[2] == "pte":
                pte_frames.append(path[-1])
        self.walks += 1

        if self.walklog is not None:
            self.walklog.record(
                {
                    "vpn": self._vaddr >> 12,
                    "cycles": outcome.cycles,
                    "cycles_fp": walk_fp,
                    "refs": outcome.refs,
                    "raw_refs": outcome.raw_refs,
                    "checks": outcome.checks,
                    "page_size": outcome.page_size.label,
                    "case": case,
                    "levels": tuple(pte_frames),
                }
            )
        self._buffer.clear()
        del self._stack[1:]
        self._walk_open = False

    # ------------------------------------------------------------------
    # Degradation books (separate conservation domain)

    def degradation_event(self, action: str, cycle_cost: float) -> None:
        """Attribute one degradation reaction's modelled cost.

        Mirrors ``DegradationLog.total_cycle_cost``'s float summation
        order (append order), so the books conserve against it exactly.
        """
        new_mirror = self._deg_mirror + cycle_cost
        new_fp = to_fixed(new_mirror)
        delta = new_fp - self._deg_mirror_fp
        self._deg_mirror = new_mirror
        self._deg_mirror_fp = new_fp
        self.degradation_cycles[action] = (
            self.degradation_cycles.get(action, 0) + delta
        )
        self.degradation_counts[action] = (
            self.degradation_counts.get(action, 0) + 1
        )

    # ------------------------------------------------------------------
    # Lifecycle

    def attach(self, system: "SimulatedSystem") -> None:
        """Point every component hook at this profiler; snap baselines."""
        mmu = system.mmu
        mmu.profiler = self
        mmu.walker.profiler = self
        if system.hypervisor is not None:
            system.hypervisor.degradation_log.profiler = self
        self._filter_baselines = []
        walker = mmu.walker
        for name, attr in (
            ("native", "escape_filter"),
            ("vmm", "vmm_escape_filter"),
            ("guest", "guest_escape_filter"),
        ):
            escape_filter = getattr(walker, attr, None)
            if escape_filter is not None:
                self._filter_baselines.append(
                    (name, escape_filter, escape_filter.probes,
                     escape_filter.probe_hits)
                )
        hierarchy = system.hierarchy
        self._nested_baseline = (
            hierarchy.nested_lookups,
            hierarchy.nested_hits,
        )

    def finalize(self, system: "SimulatedSystem") -> dict:
        """Fold counter-derived events in and freeze the snapshot.

        TLB probes, fast-path hits and faults cost zero modelled cycles
        (probe latency overlaps the pipeline; the paper charges only
        walk references and checks), so their event counts come from
        counter deltas here rather than per-reference hot-path hooks.
        """
        c = system.mmu.counters
        self._bump_count(("tlb_l1", "-", "hit"), c.l1_hits)
        self._bump_count(("tlb_l1", "-", "miss"), c.l1_misses)
        self._bump_count(("tlb_l2", "-", "hit"), c.l2_hits)
        self._bump_count(("tlb_l2", "-", "miss"), c.l2_misses)
        self._bump_count(("segment", "dual_direct", "hit"), c.dual_direct_hits)
        self._bump_count(
            ("segment", "ds_parallel", "hit"), c.segment_l2_parallel_hits
        )
        hierarchy = system.hierarchy
        lookups0, hits0 = self._nested_baseline
        probes = hierarchy.nested_lookups - lookups0
        hits = hierarchy.nested_hits - hits0
        self._bump_count(("ntlb", "shared", "probe"), probes)
        self._bump_count(("ntlb", "shared", "probe_hit"), hits)
        for name, escape_filter, probes0, hits0 in self._filter_baselines:
            self._bump_count(
                ("escape_filter", name, "probe"),
                escape_filter.probes - probes0,
            )
            self._bump_count(
                ("escape_filter", name, "probe_hit"),
                escape_filter.probe_hits - hits0,
            )
        # Future-safety: fold any check_cycles the MMU accumulated
        # outside walks (today always 0.0 -- fast-path checks overlap
        # the L2 probe and cost nothing) so translation_cycles =
        # walk_cycles + check_cycles stays conserved either way.
        if c.check_cycles:
            key = ("segment", "mmu", "check_cycles")
            delta = to_fixed(self._mirror + c.check_cycles) - self._mirror_fp
            self.axis_cycles[key] = self.axis_cycles.get(key, 0) + delta
            self.axis_counts[key] = self.axis_counts.get(key, 0) + 1
        return self.snapshot()

    def _bump_count(self, key: tuple[str, str, str], amount: int) -> None:
        if amount:
            self.axis_counts[key] = self.axis_counts.get(key, 0) + amount

    # ------------------------------------------------------------------
    # Snapshots

    def snapshot(self) -> dict:
        """Deterministic plain-dict view (JSON-ready, picklable).

        ``total_cycles_fp`` equals ``to_fixed`` of the MMU's
        float-accumulated translation cycles -- the conservation
        invariant tests assert as integer equality.
        """
        axes = {}
        for key in sorted(set(self.axis_cycles) | set(self.axis_counts)):
            axes["|".join(key)] = {
                "cycles_fp": self.axis_cycles.get(key, 0),
                "count": self.axis_counts.get(key, 0),
            }
        out = {
            "scale": SCALE,
            "walks": self.walks,
            "axes": axes,
            "total_cycles_fp": sum(self.axis_cycles.values()),
            "folded": {
                ";".join(path): fp
                for path, fp in sorted(self.folded.items())
            },
            "degradation": {
                action: {
                    "cycles_fp": self.degradation_cycles.get(action, 0),
                    "count": self.degradation_counts.get(action, 0),
                }
                for action in sorted(
                    set(self.degradation_cycles) | set(self.degradation_counts)
                )
            },
            "degradation_cycles_fp": sum(self.degradation_cycles.values()),
        }
        if self.walklog is not None:
            out["walklog"] = self.walklog.snapshot()
        return out


# ----------------------------------------------------------------------
# Snapshot algebra (manifests, parallel sweeps)


def merge_profiles(snapshots: list[dict]) -> dict:
    """Order-independent merge of profiler snapshots.

    Everything sums: axis fixed-point cycles and counts, folded stacks,
    walk counts, degradation books, page/region heat.  All inputs are
    summed before any top-K cap is applied, so the result is identical
    for any input order (the manifest totals contract).  Per-cell
    reservoirs are dropped -- a cross-cell sample mixture has no single
    seed to reproduce it from.
    """
    if not snapshots:
        return WalkProfiler(walklog=False).snapshot()
    scales = {snap["scale"] for snap in snapshots}
    if len(scales) != 1:
        raise ValueError(f"profile scale mismatch in merge: {sorted(scales)}")
    axes: dict[str, dict[str, int]] = {}
    folded: dict[str, int] = {}
    degradation: dict[str, dict[str, int]] = {}
    walks = 0
    for snap in snapshots:
        walks += snap["walks"]
        for name, data in snap["axes"].items():
            have = axes.setdefault(name, {"cycles_fp": 0, "count": 0})
            have["cycles_fp"] += data["cycles_fp"]
            have["count"] += data["count"]
        for path, fp in snap["folded"].items():
            folded[path] = folded.get(path, 0) + fp
        for action, data in snap["degradation"].items():
            have = degradation.setdefault(action, {"cycles_fp": 0, "count": 0})
            have["cycles_fp"] += data["cycles_fp"]
            have["count"] += data["count"]
    out = {
        "scale": next(iter(scales)),
        "walks": walks,
        "axes": dict(sorted(axes.items())),
        "total_cycles_fp": sum(a["cycles_fp"] for a in axes.values()),
        "folded": dict(sorted(folded.items())),
        "degradation": dict(sorted(degradation.items())),
        "degradation_cycles_fp": sum(
            d["cycles_fp"] for d in degradation.values()
        ),
    }
    logs = [snap["walklog"] for snap in snapshots if "walklog" in snap]
    if logs:
        from repro.obs.walklog import merge_walklogs

        out["walklog"] = merge_walklogs(logs)
    return out


def strip_reservoir(snapshot: dict) -> dict:
    """A copy of ``snapshot`` without the per-walk sample reservoir.

    Cell manifests embed the attribution books and heatmaps but not the
    raw walk records; reports that want the reservoir read it from the
    in-memory :class:`~repro.obs.tracing.RunObservability` instead.
    """
    out = dict(snapshot)
    walklog = out.get("walklog")
    if isinstance(walklog, dict) and "reservoir" in walklog:
        walklog = dict(walklog)
        walklog["reservoir"] = []
        out["walklog"] = walklog
    return out
