"""Profiler report renderers: text, folded stacks, self-contained HTML.

Consumes the plain-dict snapshots :meth:`WalkProfiler.snapshot` /
:func:`merge_profiles` produce (also embedded in manifests under
``cells[*].profile`` and ``totals.profile``):

* :func:`render_text` -- the ``experiments profile`` terminal report:
  per-axis attribution table with the conservation line, hot pages,
  hot 2 MB regions, degradation books and sampled walk records;
* :func:`render_folded` -- one ``frame;frame;... cycles`` line per
  folded stack, the input format of Brendan Gregg's ``flamegraph.pl``
  and of speedscope / Perfetto ("import folded stacks");
* :func:`render_html` -- a dependency-free single-file HTML report
  (inline CSS only) with the attribution table, a hot-page heat table
  and the folded-stack top paths.

Everything here is presentation: fixed-point quanta are divided back
into cycles for display, while the underlying snapshot keeps the exact
integers.
"""

from __future__ import annotations

import html

from repro.obs.profiler import from_fixed

#: Default number of rows shown per ranked table.
DEFAULT_TOP = 20


def _fmt_cycles(quanta: int) -> str:
    """Fixed-point quanta as a cycle count for humans."""
    return f"{from_fixed(quanta):,.1f}"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal aligned text table (obs must not import experiments)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _axis_rows(profile: dict, top: int | None = None) -> list[list[str]]:
    total = profile["total_cycles_fp"] or 1
    ranked = sorted(
        profile["axes"].items(),
        key=lambda item: (-item[1]["cycles_fp"], item[0]),
    )
    if top is not None:
        ranked = ranked[:top]
    rows = []
    for name, data in ranked:
        structure, level, cause = name.split("|")
        count = data["count"]
        cycles_fp = data["cycles_fp"]
        per_event = from_fixed(cycles_fp) / count if count else 0.0
        rows.append(
            [
                structure,
                level,
                cause,
                _fmt_cycles(cycles_fp),
                f"{100.0 * cycles_fp / total:.1f}%",
                f"{count:,}",
                f"{per_event:.2f}",
            ]
        )
    return rows


_AXIS_HEADERS = [
    "structure", "level", "cause", "cycles", "share", "events", "cyc/event",
]


def render_text(
    profile: dict, top: int = DEFAULT_TOP, per_page: bool = False
) -> str:
    """The terminal report for one profile snapshot."""
    total_fp = profile["total_cycles_fp"]
    lines = [
        f"profiled walks: {profile['walks']:,}   "
        f"attributed cycles: {_fmt_cycles(total_fp)}   "
        f"(exact fixed-point sum at scale 2^52)",
        "",
        "cycle attribution by (structure, level, cause):",
        _table(_AXIS_HEADERS, _axis_rows(profile)),
    ]
    walklog = profile.get("walklog")
    if walklog is not None:
        lines += ["", _render_heat_text(walklog, top, per_page)]
    degradation = profile.get("degradation") or {}
    if degradation:
        rows = [
            [action, _fmt_cycles(d["cycles_fp"]), f"{d['count']:,}"]
            for action, d in sorted(
                degradation.items(),
                key=lambda item: (-item[1]["cycles_fp"], item[0]),
            )
        ]
        lines += [
            "",
            "degradation reactions (charged outside translation cycles):",
            _table(["action", "cycles", "events"], rows),
        ]
    folded = profile.get("folded") or {}
    if folded:
        ranked = sorted(folded.items(), key=lambda item: (-item[1], item[0]))
        rows = [[path, _fmt_cycles(fp)] for path, fp in ranked[:top]]
        lines += ["", "hottest folded stacks:", _table(["stack", "cycles"], rows)]
    return "\n".join(lines)


def _render_heat_text(walklog: dict, top: int, per_page: bool) -> str:
    lines = [
        f"walks logged: {walklog['walks_seen']:,}   "
        f"pages tracked: {walklog['pages_tracked']:,}"
        + (
            f" (+{walklog['pages_dropped']:,} walks past the page cap)"
            if walklog["pages_dropped"]
            else ""
        ),
    ]
    pages = walklog["pages"][: top if per_page else min(top, 10)]
    if pages:
        rows = [
            [f"{vpn:#x}", f"{walks:,}", _fmt_cycles(fp)]
            for vpn, walks, fp in pages
        ]
        lines += [
            "hot pages (by walk cycles):",
            _table(["vpn", "walks", "cycles"], rows),
        ]
    regions = walklog["regions"][:top]
    if regions:
        rows = [
            [f"{region:#x}", f"{walks:,}"] for region, walks in regions
        ]
        lines += [
            "hot 2M regions (by TLB-miss walks):",
            _table(["region", "misses"], rows),
        ]
    reservoir = walklog.get("reservoir") or []
    if reservoir and per_page:
        rows = [
            [
                f"{r['vpn']:#x}",
                r["case"],
                r["page_size"],
                str(r["refs"]),
                f"{r['cycles']:.1f}",
                ";".join(r["levels"]) or "-",
            ]
            for r in reservoir[:top]
        ]
        lines += [
            f"sampled walk records ({len(reservoir)} in reservoir):",
            _table(["vpn", "case", "page", "refs", "cycles", "levels"], rows),
        ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Folded stacks (flamegraph.pl / speedscope / Perfetto)


def render_folded(profile: dict) -> str:
    """``frame;frame;... <cycles>`` lines, one per folded stack.

    Cycle weights are rounded to integers (the format requires integer
    sample counts); stacks whose weight rounds to zero are kept at 1 so
    rare-but-real paths stay visible in the flame graph.
    """
    lines = []
    for path, fp in sorted(profile.get("folded", {}).items()):
        cycles = round(from_fixed(fp))
        lines.append(f"{path} {max(cycles, 1)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Self-contained HTML


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.7em 0; font-size: 0.92em; }
th, td { padding: 0.25em 0.8em; text-align: left;
         border-bottom: 1px solid #ddd; }
th { background: #f0f0f5; } td.num { text-align: right;
     font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: 0.8em; background: #4361ee;
       vertical-align: baseline; }
.heat td.cell { text-align: right; font-variant-numeric: tabular-nums; }
.meta { color: #555; font-size: 0.9em; }
code { background: #f5f5fa; padding: 0 0.25em; }
"""


def _html_table(headers: list[str], rows: list[list[str]], cls: str = "") -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(cell for cell in row) + "</tr>" for row in rows
    )
    cls_attr = f' class="{cls}"' if cls else ""
    return f"<table{cls_attr}><tr>{head}</tr>{body}</table>"


def _td(text: str, numeric: bool = False, style: str = "") -> str:
    cls = ' class="num"' if numeric else ""
    style_attr = f' style="{style}"' if style else ""
    return f"<td{cls}{style_attr}>{html.escape(text)}</td>"


def render_html(profile: dict, title: str = "walk profile") -> str:
    """One dependency-free HTML page for a profile snapshot."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='meta'>{profile['walks']:,} walks, "
        f"{_fmt_cycles(profile['total_cycles_fp'])} attributed cycles "
        f"(exact fixed-point books at scale 2<sup>52</sup>; per-axis sums "
        f"equal the MMU's modelled total by construction).</p>",
        "<h2>Cycle attribution</h2>",
    ]
    axis_rows = []
    for row in _axis_rows(profile):
        structure, level, cause, cycles, share, events, per_event = row
        width = max(1.0, 180.0 * float(share.rstrip("%")) / 100.0)
        axis_rows.append(
            [
                _td(structure),
                _td(level),
                _td(cause),
                _td(cycles, numeric=True),
                f"<td class='num'>{html.escape(share)} "
                f"<span class='bar' style='width:{width:.0f}px'></span></td>",
                _td(events, numeric=True),
                _td(per_event, numeric=True),
            ]
        )
    parts.append(_html_table(_AXIS_HEADERS, axis_rows))

    walklog = profile.get("walklog")
    if walklog is not None and walklog["pages"]:
        parts.append("<h2>Hot pages</h2>")
        max_fp = max(fp for _, _, fp in walklog["pages"]) or 1
        heat_rows = []
        for vpn, walks, fp in walklog["pages"][:32]:
            alpha = 0.08 + 0.8 * (fp / max_fp)
            heat_rows.append(
                [
                    _td(f"{vpn:#x}"),
                    _td(f"{walks:,}", numeric=True),
                    _td(
                        _fmt_cycles(fp),
                        numeric=True,
                        style=f"background: rgba(239, 71, 111, {alpha:.2f})",
                    ),
                ]
            )
        parts.append(_html_table(["vpn", "walks", "cycles"], heat_rows, "heat"))
    if walklog is not None and walklog["regions"]:
        parts.append("<h2>Hot 2&nbsp;MB regions (TLB-miss walks)</h2>")
        max_walks = walklog["regions"][0][1] or 1
        region_rows = []
        for region, walks in walklog["regions"][:32]:
            alpha = 0.08 + 0.8 * (walks / max_walks)
            region_rows.append(
                [
                    _td(f"{region:#x}"),
                    _td(
                        f"{walks:,}",
                        numeric=True,
                        style=f"background: rgba(67, 97, 238, {alpha:.2f})",
                    ),
                ]
            )
        parts.append(_html_table(["region", "misses"], region_rows, "heat"))

    folded = profile.get("folded") or {}
    if folded:
        parts.append("<h2>Hottest folded stacks</h2>")
        ranked = sorted(folded.items(), key=lambda item: (-item[1], item[0]))
        stack_rows = [
            [f"<td><code>{html.escape(path)}</code></td>",
             _td(_fmt_cycles(fp), numeric=True)]
            for path, fp in ranked[:DEFAULT_TOP]
        ]
        parts.append(_html_table(["stack", "cycles"], stack_rows))
        parts.append(
            "<p class='meta'>Export the full set with "
            "<code>experiments profile --folded walks.folded</code> and render "
            "with flamegraph.pl or speedscope.</p>"
        )

    degradation = profile.get("degradation") or {}
    if degradation:
        parts.append("<h2>Degradation reactions</h2>")
        degradation_rows = [
            [
                _td(action),
                _td(_fmt_cycles(d["cycles_fp"]), numeric=True),
                _td(f"{d['count']:,}", numeric=True),
            ]
            for action, d in sorted(
                degradation.items(),
                key=lambda item: (-item[1]["cycles_fp"], item[0]),
            )
        ]
        parts.append(_html_table(["action", "cycles", "events"], degradation_rows))

    parts.append("</body></html>")
    return "".join(parts)
