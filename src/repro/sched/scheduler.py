"""Incremental, crash-resumable sweep scheduling over the result store.

The scheduler sits between the experiments and the existing
serial/parallel runners: every sweep is decomposed into a cell DAG
(:mod:`repro.sched.cells`), each cell's store entry is consulted before
any work is dispatched, misses run through the same worker-pool
machinery as before (results land in input order, so sweeps stay
byte-identical to store-less runs), and **every completed cell is
persisted immediately** -- a sweep killed at any point resumes from the
last durable cell, recomputing nothing that already finished.

Completion is double-journalled:

* the **store's write-ahead journal** makes each entry durable and
  crash-consistent (that is the source of truth for ``--resume``);
* a per-sweep **completion journal** under ``<store>/sweeps/`` records
  which cells of *this* sweep finished, so a resumed invocation can
  report "N of M cells were already durable" and tests can assert
  exactly what was recomputed.

Results must never be ``None`` (no experiment result is): ``None`` is
the store's miss sentinel.
"""

from __future__ import annotations

import json
import multiprocessing
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import SchedulerError
from repro.experiments.parallel import CellTask, prewarm_traces, run_cell
from repro.sched.cells import Cell, toposort_waves
from repro.store.keys import cell_key, digest, grid_cell_ingredients
from repro.store.store import ResultStore


@dataclass
class SweepReport:
    """How one scheduled sweep was satisfied."""

    experiment: str
    total: int = 0
    #: Cells served from the store without recomputation.
    hits: int = 0
    #: Cells computed (and persisted) by this invocation.
    computed: int = 0
    #: Cells the completion journal already recorded when a ``--resume``
    #: invocation opened it (0 for fresh sweeps).
    resumed: int = 0

    @property
    def all_hits(self) -> bool:
        return self.total > 0 and self.hits == self.total

    def describe(self) -> str:
        parts = [f"{self.hits}/{self.total} cells from store"]
        if self.computed:
            parts.append(f"{self.computed} computed")
        if self.resumed:
            parts.append(f"resumed past {self.resumed} journalled cells")
        return ", ".join(parts)


def _indexed_call(item: tuple[int, Callable, Any]) -> tuple[int, Any]:
    """Worker shim: run one cell, tagged with its wave index."""
    index, execute, task = item
    return index, execute(task)


class SweepScheduler:
    """Schedules one experiment's cell DAG against a result store.

    ``fabric`` optionally routes each wave's misses through a running
    fabric coordinator (:mod:`repro.fabric`) instead of the in-process
    worker pool: pass a ``HOST:PORT`` address (a connection is opened
    per :meth:`run`) or an already-connected
    :class:`~repro.fabric.client.FabricClient`.  Hits, journalling and
    result ordering are identical either way, so fabric sweeps stay
    byte-identical to serial ones.
    """

    def __init__(
        self,
        experiment: str,
        store: ResultStore,
        resume: bool = False,
        fabric: Any = None,
    ) -> None:
        self.experiment = experiment
        self.store = store
        self.resume = resume
        self.fabric = fabric
        self.report: SweepReport | None = None
        #: Lease lifecycle events the coordinator reported for this
        #: sweep's batches (empty for non-fabric runs); feeds manifests.
        self.fabric_events: list[dict] = []

    # ------------------------------------------------------------------

    def run(
        self,
        cells: Sequence[Cell],
        jobs: int = 1,
        progress: bool = False,
    ) -> dict[str, Any]:
        """Execute the DAG; returns ``{cell key: result}`` for all cells.

        Store hits skip execution entirely; misses run wave by wave
        (dependencies first) and are persisted the moment they complete,
        with a completion record appended to the sweep journal.
        """
        waves = toposort_waves(cells)
        ordered = [cell for wave in waves for cell in wave]
        report = SweepReport(experiment=self.experiment, total=len(ordered))
        journal = self._journal_path(ordered)
        report.resumed = self._open_journal(journal, len(ordered), progress)

        results: dict[str, Any] = {}
        for cell in ordered:
            value = self.store.get(cell.key)
            if value is not None:
                results[cell.key] = value
                report.hits += 1
        if progress and ordered:
            print(
                f"  store: {report.hits}/{len(ordered)} cells warm, "
                f"computing {len(ordered) - report.hits}",
                flush=True,
            )

        def on_done(cell: Cell, value: Any) -> None:
            if value is None:
                raise SchedulerError(
                    f"cell {cell.label or cell.key[:12]} produced None "
                    f"(reserved as the store's miss sentinel)"
                )
            self.store.put(cell.key, value, cell.ingredients)
            _append_line(journal, {"op": "cell-done", "key": cell.key})
            results[cell.key] = value
            report.computed += 1

        client, owns_client = self._fabric_client()
        try:
            for wave in waves:
                pending = [c for c in wave if c.key not in results]
                if client is not None:
                    self._execute_wave_fabric(pending, client, progress, on_done)
                else:
                    self._execute_wave(pending, jobs, progress, on_done)
        finally:
            if client is not None:
                self.fabric_events.extend(client.events)
                if owns_client:
                    client.close()
        _append_line(journal, {"op": "sweep-done"})
        self.report = report
        return results

    # ------------------------------------------------------------------

    def _journal_path(self, cells: Sequence[Cell]) -> Path:
        sweep_id = digest(
            {
                "experiment": self.experiment,
                "keys": sorted({c.key for c in cells}),
            }
        )[:16]
        return self.store.sweeps_dir / f"{self.experiment}-{sweep_id}.jsonl"

    def _open_journal(
        self, journal: Path, total: int, progress: bool
    ) -> int:
        """Start or resume the sweep's completion journal.

        Returns the number of cells an interrupted prior invocation had
        already journalled (only honoured under ``resume``; otherwise
        the journal restarts, while store entries still serve as hits).
        """
        prior_done = 0
        if journal.exists() and self.resume:
            done = False
            seen: set[str] = set()
            for record in _read_lines(journal):
                if record.get("op") == "cell-done" and "key" in record:
                    seen.add(record["key"])
                elif record.get("op") == "sweep-done":
                    done = True
            if not done:
                prior_done = len(seen)
                _append_line(journal, {"op": "sweep-resume"})
                if progress:
                    print(
                        f"  resuming interrupted sweep "
                        f"{journal.stem}: {prior_done}/{total} cells "
                        f"already journalled durable",
                        flush=True,
                    )
                return prior_done
        journal.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "op": "sweep-begin",
            "experiment": self.experiment,
            "cells": total,
        }
        journal.write_text(
            json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
        )
        return prior_done

    def _fabric_client(self) -> tuple[Any, bool]:
        """Resolve ``self.fabric`` to a connected client (or ``(None, False)``).

        An address string opens a connection this run owns and closes;
        an object exposing ``run_wave`` is used as-is (caller-owned).
        """
        if self.fabric is None:
            return None, False
        if hasattr(self.fabric, "run_wave"):
            return self.fabric, False
        from repro.fabric.client import FabricClient

        client = FabricClient(str(self.fabric))
        client.connect()
        return client, True

    def _execute_wave_fabric(
        self,
        pending: Sequence[Cell],
        client: Any,
        progress: bool,
        on_done: Callable[[Cell, Any], None],
    ) -> None:
        """Run one wave's misses through the fabric coordinator.

        The wave is submitted as one batch; workers commit each result
        to the shared store and the coordinator streams per-cell
        completions back, at which point the value is read *from the
        store* (results never cross the wire) and handed to the same
        ``on_done`` the local paths use -- its ``store.put`` is an
        idempotent no-op on an already-durable key, so journalling and
        report accounting stay identical to a local run.
        """
        if not pending:
            return
        if progress:
            print(
                f"  dispatching {len(pending)} cells to fabric at "
                f"{client.address} ...",
                flush=True,
            )
        by_key = {cell.key: cell for cell in pending}

        def fabric_done(key: str) -> None:
            cell = by_key.get(key)
            if cell is None:  # completion for some other batch's key
                return
            value = self.store.get(key)
            if value is None:
                raise SchedulerError(
                    f"fabric reported cell {cell.label or key[:12]} done "
                    f"but the store has no readable entry for it"
                )
            on_done(cell, value)

        client.run_wave(pending, fabric_done)

    def _execute_wave(
        self,
        pending: Sequence[Cell],
        jobs: int,
        progress: bool,
        on_done: Callable[[Cell, Any], None],
    ) -> None:
        """Run one wave's misses; ``on_done`` fires per completion.

        Serial path mirrors :func:`repro.experiments.parallel.run_cells`
        exactly; the parallel path uses ``imap_unordered`` so results
        are persisted -- and therefore resumable -- as workers finish,
        not when the whole wave does.
        """
        if not pending:
            return
        if jobs <= 1 or len(pending) == 1:
            for cell in pending:
                if progress:
                    print(
                        f"  running {cell.label or cell.key[:12]} ...",
                        flush=True,
                    )
                on_done(cell, cell.execute(cell.task))
            return
        if progress:
            print(
                f"  dispatching {len(pending)} cells across "
                f"{min(jobs, len(pending))} workers ...",
                flush=True,
            )
        grid_tasks = [c.task for c in pending if isinstance(c.task, CellTask)]
        if grid_tasks:
            prewarm_traces(grid_tasks)
        items = [(i, cell.execute, cell.task) for i, cell in enumerate(pending)]
        workers = min(jobs, len(items))
        with multiprocessing.get_context().Pool(processes=workers) as pool:
            for index, value in pool.imap_unordered(
                _indexed_call, items, chunksize=1
            ):
                on_done(pending[index], value)


class Sweep:
    """Front door for store-backed experiments.

    One instance per (experiment entry point, invocation); experiments
    thread it through to their dispatch sites.  ``run_cells`` covers
    grid sweeps (:class:`CellTask`); ``run_tasks`` covers any
    experiment-specific picklable task type with a module-level
    executor.  Both return results in input task order -- exactly what
    the store-less runners produce -- so warm, cold, serial and parallel
    sweeps all assemble identical experiment results.
    """

    def __init__(
        self,
        experiment: str,
        store: ResultStore,
        resume: bool = False,
        fabric: Any = None,
    ) -> None:
        self.experiment = experiment
        self.store = store
        self.resume = resume
        self.fabric = fabric
        self.reports: list[SweepReport] = []
        #: Lease lifecycle events across every fabric dispatch (empty
        #: for local sweeps); :func:`repro.obs.manifest.build_manifest`
        #: records them per run.
        self.fabric_events: list[dict] = []

    @property
    def report(self) -> SweepReport:
        """Aggregate over every dispatch this sweep served."""
        total = SweepReport(experiment=self.experiment)
        for r in self.reports:
            total.total += r.total
            total.hits += r.hits
            total.computed += r.computed
            total.resumed += r.resumed
        return total

    def run_cells(
        self,
        tasks: Iterable[CellTask],
        jobs: int = 1,
        progress: bool = False,
    ) -> list[Any]:
        """Store-backed drop-in for :func:`parallel.run_cells`."""
        return self.run_tasks(
            tasks,
            run_cell,
            grid_cell_ingredients,
            label_for=lambda t: f"{t.workload} / {t.config}",
            jobs=jobs,
            progress=progress,
        )

    def run_tasks(
        self,
        tasks: Iterable[Any],
        execute: Callable[[Any], Any],
        ingredients_for: Callable[[Any], dict],
        deps_for: Callable[[Any], Iterable[Any]] | None = None,
        label_for: Callable[[Any], str] | None = None,
        jobs: int = 1,
        progress: bool = False,
    ) -> list[Any]:
        """Run arbitrary cells through the store-consulting scheduler.

        ``tasks`` must be hashable picklable descriptors; ``execute`` a
        module-level callable; ``ingredients_for`` maps a task to its
        key ingredients; ``deps_for`` optionally maps a task to the
        *tasks* it depends on (which must appear in ``tasks`` too).
        """
        tasks = list(tasks)
        key_by_task: dict[Any, str] = {}
        ing_by_task: dict[Any, dict] = {}
        for task in tasks:
            if task in key_by_task:
                continue
            ingredients = ingredients_for(task)
            ing_by_task[task] = ingredients
            key_by_task[task] = cell_key(ingredients)
        cells = []
        for task in tasks:
            deps: tuple[str, ...] = ()
            if deps_for is not None:
                try:
                    deps = tuple(key_by_task[d] for d in deps_for(task))
                except KeyError as exc:
                    raise SchedulerError(
                        f"dependency {exc.args[0]!r} of task {task!r} is "
                        f"not part of this sweep"
                    ) from None
            cells.append(
                Cell(
                    key=key_by_task[task],
                    ingredients=ing_by_task[task],
                    task=task,
                    execute=execute,
                    deps=deps,
                    label=label_for(task) if label_for is not None else "",
                )
            )
        scheduler = SweepScheduler(
            self.experiment, self.store, resume=self.resume, fabric=self.fabric
        )
        results = scheduler.run(cells, jobs=jobs, progress=progress)
        assert scheduler.report is not None
        self.reports.append(scheduler.report)
        self.fabric_events.extend(scheduler.fabric_events)
        return [results[key_by_task[task]] for task in tasks]


# ----------------------------------------------------------------------
# Journal plumbing


def _append_line(path: Path, record: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        fh.flush()


def _read_lines(path: Path) -> list[dict]:
    records = []
    try:
        text = path.read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break  # torn tail from a mid-append crash
        if isinstance(record, dict):
            records.append(record)
    return records
