"""Cell graphs: the unit of incremental sweep scheduling.

Every experiment decomposes into **cells** -- the smallest independently
recomputable pieces of work (one (workload, config, seed) simulation,
one figure-13 trial, one resilience run).  A :class:`Cell` carries:

* ``key`` -- the content digest addressing its store entry
  (:func:`repro.store.keys.cell_key`);
* ``ingredients`` -- the key's experiment-level payload, persisted with
  the entry so stores are self-describing;
* ``task`` -- the picklable descriptor the executor consumes;
* ``execute`` -- a module-level callable ``task -> result`` (must be
  importable by worker processes);
* ``deps`` -- keys of cells that must complete first (e.g. a trial's
  fault-free baseline), forming a DAG.

:func:`toposort_waves` layers a cell list into dependency waves; the
scheduler dispatches each wave through the existing serial/parallel
runners and persists results as they land.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulerError


@dataclass(frozen=True)
class Cell:
    """One independently recomputable, store-addressable unit of work."""

    key: str
    ingredients: dict
    task: Any
    execute: Callable[[Any], Any] = field(compare=False)
    deps: tuple[str, ...] = ()
    #: Progress label, e.g. ``"graph500/4K+2M"``.
    label: str = ""


def toposort_waves(cells: Sequence[Cell]) -> list[list[Cell]]:
    """Layer cells into dependency waves (Kahn's algorithm).

    Wave ``i`` contains every cell whose dependencies all live in waves
    ``< i``; cells within one wave are independent and dispatch in input
    order, so serial and parallel execution assemble identical sweeps.
    Raises :class:`SchedulerError` on unknown dependencies or cycles.
    Duplicate keys are allowed only for identical tasks (content
    addressing: same key == same computation), and later duplicates are
    dropped -- the one computation serves every occurrence.
    """
    unique: list[Cell] = []
    by_key: dict[str, Cell] = {}
    for cell in cells:
        existing = by_key.get(cell.key)
        if existing is None:
            by_key[cell.key] = cell
            unique.append(cell)
        elif existing.task != cell.task:
            raise SchedulerError(
                f"key collision: {cell.key[:16]} claimed by two different "
                f"tasks ({existing.task!r} vs {cell.task!r})"
            )
    for cell in unique:
        for dep in cell.deps:
            if dep not in by_key:
                raise SchedulerError(
                    f"cell {cell.key[:16]} depends on unknown cell {dep[:16]}"
                )
    placed: set[str] = set()
    remaining = list(unique)
    waves: list[list[Cell]] = []
    while remaining:
        wave = [
            c for c in remaining if all(d in placed for d in c.deps)
        ]
        if not wave:
            stuck = ", ".join(c.key[:12] for c in remaining[:5])
            raise SchedulerError(f"dependency cycle among cells: {stuck} ...")
        waves.append(wave)
        placed.update(c.key for c in wave)
        remaining = [c for c in remaining if c.key not in placed]
    return waves
