"""repro.sched: incremental sweep scheduling over the result store.

Decomposes every experiment sweep into a DAG of content-addressed cells
(:mod:`repro.sched.cells`), consults :class:`repro.store.ResultStore`
before dispatching anything, runs misses through the existing
serial/parallel runners, and persists + journals each completion the
moment it lands -- so interrupted sweeps resume with ``--resume`` from
the last durable cell, and warm sweeps reproduce cold sweeps
byte-for-byte.
"""

from repro.sched.cells import Cell, toposort_waves
from repro.sched.scheduler import Sweep, SweepReport, SweepScheduler

__all__ = [
    "Cell",
    "Sweep",
    "SweepReport",
    "SweepScheduler",
    "toposort_waves",
]
