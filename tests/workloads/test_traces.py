"""Tests for the workload trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import (
    hot_cold_pages,
    mixture,
    sequential_sweep,
    strided_pages,
    two_scale_hot_cold,
    uniform_pages,
    zipf_pages,
)
from repro.workloads.registry import (
    ALL_WORKLOADS,
    BIG_MEMORY_WORKLOADS,
    COMPUTE_WORKLOADS,
    create_workload,
    workload_names,
)


class TestRegistry:
    def test_all_table5_workloads_present(self):
        names = set(workload_names())
        for expected in (
            "graph500",
            "memcached",
            "npb-cg",
            "gups",
            "mcf",
            "cactusadm",
            "gemsfdtd",
            "omnetpp",
            "canneal",
            "streamcluster",
        ):
            assert expected in names

    def test_categories(self):
        for name in BIG_MEMORY_WORKLOADS:
            if name == "gups":
                assert create_workload(name).spec.category == "micro"
            else:
                assert create_workload(name).spec.category == "big-memory"
        for name in COMPUTE_WORKLOADS:
            assert create_workload(name).spec.category == "compute"

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            create_workload("doom")

    def test_case_insensitive(self):
        assert create_workload("GUPS").spec.name == "gups"


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_trace_in_bounds(self, name):
        w = create_workload(name)
        trace = w.trace(5000, seed=1)
        assert trace.dtype == np.int64
        assert len(trace) == 5000
        assert trace.min() >= 0
        assert trace.max() < w.spec.footprint_pages

    def test_trace_deterministic(self, name):
        w = create_workload(name)
        assert np.array_equal(w.trace(2000, seed=7), w.trace(2000, seed=7))

    def test_trace_seed_sensitivity(self, name):
        w = create_workload(name)
        assert not np.array_equal(w.trace(2000, seed=1), w.trace(2000, seed=2))

    def test_spec_sanity(self, name):
        spec = create_workload(name).spec
        assert spec.footprint_bytes > 0
        assert spec.ideal_cycles_per_ref > 0
        assert spec.refs_per_entry >= 1.0
        assert spec.pt_updates_per_mref >= 0
        assert 0 < spec.pt_update_2m_factor <= 1
        assert spec.footprint_pages == spec.footprint_bytes // 4096


class TestLocalityShapes:
    """The structural properties the simulator depends on."""

    def test_gups_is_effectively_uniform(self):
        w = create_workload("gups")
        trace = w.trace(50_000, seed=0)
        # Nearly all references are distinct pages.
        assert len(np.unique(trace)) > 0.95 * len(trace)

    def test_big_memory_footprints_exceed_tlb_reach(self):
        for name in BIG_MEMORY_WORKLOADS:
            spec = create_workload(name).spec
            # >> L2 reach (2 MB) and beyond four 1 GB L1 entries.
            assert spec.footprint_bytes > 4 * (1 << 30)

    def test_hot_workloads_have_reuse(self):
        for name in ("memcached", "omnetpp", "canneal"):
            trace = create_workload(name).trace(50_000, seed=0)
            # A hot set implies far fewer distinct pages than entries.
            assert len(np.unique(trace)) < 0.8 * len(trace)

    def test_streaming_workloads_touch_fresh_pages(self):
        trace = create_workload("gemsfdtd").trace(50_000, seed=0)
        diffs = np.diff(np.sort(np.unique(trace)))
        # Sweeps produce long runs of consecutive pages.
        assert np.median(diffs) == 1

    def test_cactus_strides_defeat_2m_pages(self):
        trace = create_workload("cactusadm").trace(50_000, seed=0)
        pages_2m = np.unique(trace >> 9)
        # The stride pattern spreads across many distinct 2M regions
        # (more than the 2M L1 TLB and a meaningful share of L2).
        assert len(pages_2m) > 512


class TestToolkit:
    def test_uniform_pages_range(self):
        rng = np.random.default_rng(0)
        pages = uniform_pages(10_000, 100, rng)
        assert pages.min() >= 0 and pages.max() < 100

    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(0)
        draws = zipf_pages(50_000, 10_000, alpha=1.0, rng=rng, scatter=False)
        counts = np.bincount(draws, minlength=10_000)
        # Rank-1 page gets far more than the median page.
        assert counts.max() > 50 * max(1, int(np.median(counts[counts > 0])))

    def test_zipf_zero_alpha_is_uniform(self):
        rng = np.random.default_rng(0)
        draws = zipf_pages(10_000, 100, alpha=0.0, rng=rng)
        assert len(np.unique(draws)) == 100

    def test_sequential_sweep_wraps(self):
        sweep = sequential_sweep(10, 4, start=2)
        assert list(sweep) == [2, 3, 0, 1, 2, 3, 0, 1, 2, 3]

    def test_strided_pages_round_robin(self):
        rng = np.random.default_rng(0)
        trace = strided_pages(8, 1_000_000, stride_pages=100, chains=2, rng=rng)
        # Chain members advance by the stride on alternate entries.
        assert trace[2] - trace[0] == 100
        assert trace[3] - trace[1] == 100

    def test_mixture_weights(self):
        rng = np.random.default_rng(0)
        a = np.zeros(10_000, dtype=np.int64)
        b = np.ones(10_000, dtype=np.int64)
        mixed = mixture(10_000, [(0.7, a), (0.3, b)], rng)
        share = float(np.mean(mixed))
        assert 0.25 < share < 0.35

    def test_hot_cold_respects_bounds(self):
        rng = np.random.default_rng(0)
        trace = hot_cold_pages(10_000, 5_000, 50, 0.9, rng)
        assert trace.max() < 5_000
        assert len(np.unique(trace)) < 2_000

    def test_hot_cold_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            hot_cold_pages(10, 5, 50, 0.5, rng)

    def test_two_scale_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            two_scale_hot_cold(10, 1000, 10, 0.7, 100, 0.5, rng)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=100, max_value=5000),
        st.integers(min_value=10, max_value=100_000),
    )
    def test_toolkit_outputs_always_in_bounds(self, n, pages):
        rng = np.random.default_rng(0)
        for stream in (
            uniform_pages(n, pages, rng),
            zipf_pages(n, pages, 0.8, rng),
            two_scale_hot_cold(n, pages, min(10, pages), 0.5, min(50, pages), 0.3, rng),
        ):
            assert stream.min() >= 0
            assert stream.max() < pages
