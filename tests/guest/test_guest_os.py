"""Tests for the guest OS: demand paging, segments, THP, emulation."""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange, PageSize
from repro.guest.guest_os import GuestOS, GuestOSConfig, SegmentCreationError
from repro.mem.physical_layout import PhysicalLayout


def make_os(memory=2 * GIB, **config) -> GuestOS:
    return GuestOS(PhysicalLayout(memory), GuestOSConfig(**config))


class TestProcesses:
    def test_spawn_creates_table(self):
        os = make_os()
        p1, p2 = os.spawn(), os.spawn()
        assert p1.pid != p2.pid
        assert os.page_table_of(p1) is not os.page_table_of(p2)

    def test_mmap_lays_out_regions(self):
        os = make_os()
        p = os.spawn()
        a = p.mmap(64 * MIB)
        b = p.mmap(32 * MIB)
        assert not a.range.overlaps(b.range)
        assert p.vma_at(a.range.start) is a
        assert p.vma_at(b.range.end - 1) is b
        assert p.vma_at(b.range.end) is None

    def test_primary_region(self):
        os = make_os()
        p = os.spawn()
        assert p.primary_region is None
        vma = p.mmap(128 * MIB, is_primary_region=True)
        assert p.primary_region is vma
        assert p.mapped_bytes == 128 * MIB


class TestDemandPaging:
    def test_fault_installs_mapping(self):
        os = make_os()
        p = os.spawn()
        vma = p.mmap(16 * MIB)
        table = os.page_table_of(p)
        va = vma.range.start + 5 * BASE_PAGE_SIZE
        os.handle_page_fault(p, va)
        assert table.is_mapped(va)
        assert os.minor_faults == 1

    def test_fault_outside_vma_is_segv(self):
        os = make_os()
        p = os.spawn()
        with pytest.raises(MemoryError, match="SEGV"):
            os.handle_page_fault(p, 0x1234)

    def test_page_size_preference(self):
        os = make_os()
        p = os.spawn(page_size=PageSize.SIZE_2M)
        vma = p.mmap(64 * MIB)
        os.handle_page_fault(p, vma.range.start)
        walked = os.page_table_of(p).walk(vma.range.start)
        assert walked.page_size is PageSize.SIZE_2M

    def test_1g_pages(self):
        os = make_os(memory=6 * GIB)
        p = os.spawn(page_size=PageSize.SIZE_1G)
        vma = p.mmap(2 * GIB)
        os.handle_page_fault(p, vma.range.start + 123)
        walked = os.page_table_of(p).walk(vma.range.start)
        assert walked.page_size is PageSize.SIZE_1G

    def test_thp_promotes_to_2m(self):
        os = make_os(thp=True, thp_success_fraction=1.0)
        p = os.spawn()
        vma = p.mmap(16 * MIB)
        os.handle_page_fault(p, vma.range.start)
        assert os.page_table_of(p).walk(vma.range.start).page_size is PageSize.SIZE_2M

    def test_thp_fallback(self):
        os = make_os(thp=True, thp_success_fraction=0.0)
        p = os.spawn()
        vma = p.mmap(16 * MIB)
        os.handle_page_fault(p, vma.range.start)
        assert os.page_table_of(p).walk(vma.range.start).page_size is PageSize.SIZE_4K
        assert os.thp_fallbacks == 1


class TestPopulate:
    def test_populate_vma_maps_everything(self):
        os = make_os()
        p = os.spawn()
        vma = p.mmap(8 * MIB)
        faults = os.populate_vma(p, vma)
        assert faults == 8 * MIB // BASE_PAGE_SIZE
        table = os.page_table_of(p)
        for va in range(vma.range.start, vma.range.end, BASE_PAGE_SIZE):
            assert table.is_mapped(va)

    def test_populate_is_idempotent(self):
        os = make_os()
        p = os.spawn()
        vma = p.mmap(4 * MIB)
        os.populate_vma(p, vma)
        assert os.populate_vma(p, vma) == 0

    def test_populate_skips_hw_segment_range(self):
        os = make_os()
        p = os.spawn()
        vma = p.mmap(64 * MIB, is_primary_region=True)
        os.create_guest_segment(p)
        assert os.populate_vma(p, vma) == 0
        assert os.page_table_of(p).leaf_count() == 0


class TestGuestSegments:
    def test_create_segment_backs_primary_region(self):
        os = make_os()
        p = os.spawn()
        p.mmap(128 * MIB, is_primary_region=True)
        regs = os.create_guest_segment(p)
        assert regs.enabled
        assert regs.size == 128 * MIB
        assert regs.base == p.primary_region.range.start
        # The backing gPA range is a real reservation.
        assert os.allocator.allocated_frames >= 128 * MIB // BASE_PAGE_SIZE

    def test_segment_requires_primary_region(self):
        os = make_os()
        p = os.spawn()
        with pytest.raises(SegmentCreationError, match="primary region"):
            os.create_guest_segment(p)

    def test_partial_segment(self):
        # A primary region may be partially mapped by a segment
        # (Section II.B / Figure 4).
        os = make_os()
        p = os.spawn()
        p.mmap(128 * MIB, is_primary_region=True)
        regs = os.create_guest_segment(p, size=64 * MIB)
        assert regs.size == 64 * MIB

    def test_oversized_segment_rejected(self):
        os = make_os()
        p = os.spawn()
        p.mmap(64 * MIB, is_primary_region=True)
        with pytest.raises(SegmentCreationError, match="larger than"):
            os.create_guest_segment(p, size=128 * MIB)

    def test_fragmentation_blocks_segment(self):
        import random

        os = make_os(memory=1 * GIB)
        p = os.spawn()
        p.mmap(256 * MIB, is_primary_region=True)
        os.allocator.fragment(0.5, rng=random.Random(0), hold_orders=(0, 1))
        with pytest.raises(SegmentCreationError, match="contiguous"):
            os.create_guest_segment(p)

    def test_drop_segment_frees_memory(self):
        os = make_os()
        p = os.spawn()
        p.mmap(64 * MIB, is_primary_region=True)
        before = os.allocator.allocated_frames
        os.create_guest_segment(p)
        os.drop_guest_segment(p)
        assert os.allocator.allocated_frames == before
        assert not p.guest_segment.enabled

    def test_within_constraint(self):
        os = make_os(memory=8 * GIB)
        p = os.spawn()
        p.mmap(64 * MIB, is_primary_region=True)
        above_gap = AddressRange(4 * GIB, 9 * GIB)
        regs = os.create_guest_segment(p, within=above_gap)
        assert regs.physical_range.start >= 4 * GIB


class TestEmulationMode:
    """Section VI.B: segments emulated with computed PTEs."""

    def test_fault_in_segment_installs_computed_pte(self):
        os = make_os(emulate_segments=True)
        p = os.spawn()
        vma = p.mmap(64 * MIB, is_primary_region=True)
        os.create_guest_segment(p)
        va = vma.range.start + 7 * BASE_PAGE_SIZE + 42
        os.handle_page_fault(p, va)
        table = os.page_table_of(p)
        # The computed PTE reproduces the segment translation exactly.
        assert table.translate(va) == p.guest_segment.translate(va)

    def test_emulated_and_hw_translations_agree(self):
        # Functional equivalence between the prototype's emulation and
        # the hardware segment datapath.
        emu = make_os(emulate_segments=True)
        p = emu.spawn()
        vma = p.mmap(32 * MIB, is_primary_region=True)
        emu.create_guest_segment(p)
        table = emu.page_table_of(p)
        for offset in (0, 12345, 31 * MIB):
            va = vma.range.start + offset
            emu.handle_page_fault(p, va)
            assert table.translate(va) == p.guest_segment.translate(va)


class TestContextSwitch:
    def test_returns_per_process_registers(self):
        os = make_os()
        p1 = os.spawn()
        p1.mmap(32 * MIB, is_primary_region=True)
        os.create_guest_segment(p1)
        p2 = os.spawn()
        assert os.context_switch(None, p1) == p1.guest_segment
        assert not os.context_switch(p1, p2).enabled
