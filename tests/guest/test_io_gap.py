"""Tests for the I/O-gap reclaim (Section IV / VI.C)."""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB
from repro.guest.guest_os import GuestOS
from repro.guest.hotplug import HotplugError, reclaim_io_gap
from repro.mem.physical_layout import IO_GAP_START, PhysicalLayout
from repro.vmm.hypervisor import Hypervisor


def _vm_and_guest(guest_bytes=6 * GIB, host_bytes=12 * GIB):
    hypervisor = Hypervisor(host_memory_bytes=host_bytes)
    vm = hypervisor.create_vm("vm0", memory_bytes=guest_bytes)
    guest = GuestOS(vm.guest_layout)
    return hypervisor, vm, guest


class TestReclaimIoGap:
    def test_moves_below_gap_memory_above(self):
        hypervisor, vm, guest = _vm_and_guest()
        total_before = guest.allocator.total_frames
        result = reclaim_io_gap(guest, vm)
        # 3 GB - 256 MB unplugged, same amount added above the gap.
        assert result.removed.size == 3 * GIB - 256 * MIB
        assert result.added.size == result.removed.size
        assert guest.allocator.total_frames == total_before

    def test_slots_track_the_move(self):
        hypervisor, vm, guest = _vm_and_guest()
        reclaim_io_gap(guest, vm)
        assert vm.slots.low_slot.gpa_range.size == 256 * MIB
        # High slot: original above-gap 3 GB + reclaimed 2.75 GB.
        assert vm.slots.high_slot.gpa_range.size == 3 * GIB + (3 * GIB - 256 * MIB)

    def test_single_segment_covers_almost_everything(self):
        # The point of the exercise: after reclaim, one VMM segment maps
        # all guest memory except the kernel's 256 MB.
        hypervisor, vm, guest = _vm_and_guest()
        reclaim_io_gap(guest, vm)
        regs = vm.create_vmm_segment()
        covered = regs.size
        assert covered == 6 * GIB - 256 * MIB

    def test_reclaimed_addresses_never_allocated(self):
        hypervisor, vm, guest = _vm_and_guest()
        reclaim_io_gap(guest, vm)
        removed_frames = range(
            (256 * MIB) // BASE_PAGE_SIZE, IO_GAP_START // BASE_PAGE_SIZE
        )
        # Exhaust guest memory; no allocation may land in the hole.
        seen = set()
        try:
            while True:
                seen.add(guest.allocator.alloc_block(9))
        except Exception:
            pass
        overlap = [f for f in seen if removed_frames.start <= f < removed_frames.stop]
        assert not overlap

    def test_requires_free_below_gap_memory(self):
        hypervisor, vm, guest = _vm_and_guest()
        # Occupy a below-gap frame: reclaim must refuse.
        guest.allocator.alloc_specific((1 * GIB) // BASE_PAGE_SIZE, 0)
        with pytest.raises(HotplugError, match="not entirely free"):
            reclaim_io_gap(guest, vm)

    def test_small_guest_has_nothing_to_reclaim(self):
        hypervisor = Hypervisor(host_memory_bytes=4 * GIB)
        vm = hypervisor.create_vm("small", memory_bytes=128 * MIB)
        guest = GuestOS(vm.guest_layout, pt_pool_hint=None)
        with pytest.raises(HotplugError, match="no removable memory"):
            reclaim_io_gap(guest, vm)

    def test_custom_keep_amount(self):
        hypervisor, vm, guest = _vm_and_guest()
        result = reclaim_io_gap(guest, vm, keep_below_gap=512 * MIB)
        assert result.removed.start == 512 * MIB

    def test_describe(self):
        hypervisor, vm, guest = _vm_and_guest()
        result = reclaim_io_gap(guest, vm)
        text = result.describe()
        assert "unplugged" in text and "extended" in text
