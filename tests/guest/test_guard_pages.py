"""Tests for guest-level escapes: guard pages inside a direct segment.

Section V's second use of the escape filter: "a limited number of pages
with different protection, such as guard pages", escaped at the guest
level so the guest OS controls them.
"""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB
from repro.guest.guest_os import GuestOS
from repro.mem.physical_layout import PhysicalLayout
from repro.sim.config import parse_config
from repro.sim.system import build_system


def segmented_process():
    guest = GuestOS(PhysicalLayout(2 * GIB))
    process = guest.spawn()
    process.mmap(128 * MIB, is_primary_region=True)
    guest.create_guest_segment(process)
    return guest, process


class TestEscapeGuardPage:
    def test_guard_page_enters_the_filter(self):
        guest, process = segmented_process()
        gva = process.primary_region.range.start + 10 * BASE_PAGE_SIZE
        guest.escape_guard_page(process, gva)
        assert process.guest_escape_filter.may_contain(gva // BASE_PAGE_SIZE)

    def test_guard_page_pte_preserves_placement(self):
        # The PTE reproduces the segment's computed gPA, so the page's
        # data is where the segment would have put it -- only the
        # permissions differ.
        guest, process = segmented_process()
        gva = process.primary_region.range.start + 5 * BASE_PAGE_SIZE
        guest.escape_guard_page(process, gva)
        table = guest.page_table_of(process)
        assert table.translate(gva) == process.guest_segment.translate(gva)
        walked = table.walk(gva)
        assert not walked.steps[-1].entry.writable

    def test_outside_segment_rejected(self):
        guest, process = segmented_process()
        other = process.mmap(4 * MIB)
        with pytest.raises(ValueError, match="not inside the guest segment"):
            guest.escape_guard_page(process, other.range.start)

    def test_requires_segment(self):
        guest = GuestOS(PhysicalLayout(1 * GIB))
        process = guest.spawn()
        process.mmap(16 * MIB, is_primary_region=True)
        with pytest.raises(ValueError):
            guest.escape_guard_page(process, process.primary_region.range.start)


class TestGuardPagesEndToEnd:
    def test_guarded_page_still_translates_correctly(self, tiny_workload):
        system = build_system(parse_config("4K+GD"), tiny_workload.spec)
        process = system.process
        guest = system.guest_os
        gva = process.primary_region.range.start + 7 * BASE_PAGE_SIZE

        # Translation before guarding (via the segment fast path).
        before = system.mmu.access(gva)

        guest.escape_guard_page(process, gva)
        system.mmu.flush_tlbs()
        after = system.mmu.access(gva)
        # Escaping must not move the data: same host frame either way.
        assert after == before

    def test_guarded_page_takes_the_paging_path(self, tiny_workload):
        system = build_system(parse_config("4K+GD"), tiny_workload.spec)
        process = system.process
        gva = process.primary_region.range.start + 3 * BASE_PAGE_SIZE
        system.guest_os.escape_guard_page(process, gva)
        system.mmu.flush_tlbs()
        system.mmu.counters.reset()
        system.mmu.access(gva)
        # The walk could not use the guest segment for this page.
        c = system.mmu.counters
        assert c.walks == 1
        assert c.walks_by_case["guest_only"] == 0

    def test_unguarded_neighbours_keep_the_fast_path(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        process = system.process
        base = process.primary_region.range.start
        system.guest_os.escape_guard_page(process, base + 2 * BASE_PAGE_SIZE)
        system.mmu.flush_tlbs()
        system.mmu.counters.reset()
        # A non-escaped, non-false-positive neighbour still resolves by
        # the Dual Direct fast path.
        neighbour = next(
            base + i * BASE_PAGE_SIZE
            for i in range(4, 64)
            if not process.guest_escape_filter.may_contain(
                (base + i * BASE_PAGE_SIZE) // BASE_PAGE_SIZE
            )
        )
        system.mmu.access(neighbour)
        assert system.mmu.counters.dual_direct_hits == 1
