"""Tests for guest process address-space layout."""

import pytest

from repro.core.address import GIB, MIB, PageSize
from repro.guest.process import (
    DEFAULT_PRIMARY_REGION_BASE,
    GuestProcess,
    VirtualMemoryArea,
)


class TestMmapLayout:
    def test_first_region_at_base(self):
        p = GuestProcess(pid=1)
        vma = p.mmap(16 * MIB)
        assert vma.range.start == DEFAULT_PRIMARY_REGION_BASE

    def test_regions_are_disjoint_with_guard_gaps(self):
        p = GuestProcess(pid=1)
        vmas = [p.mmap(8 * MIB) for _ in range(5)]
        for a, b in zip(vmas, vmas[1:]):
            assert a.range.end < b.range.start  # strict gap

    def test_size_rounds_to_page_size(self):
        p = GuestProcess(pid=1)
        vma = p.mmap(3 * MIB, page_size=PageSize.SIZE_2M)
        assert vma.range.size == 4 * MIB

    def test_1g_alignment(self):
        p = GuestProcess(pid=1, page_size=PageSize.SIZE_1G)
        vma = p.mmap(1 * GIB)
        assert vma.range.start % (1 * GIB) == 0

    def test_vma_at_boundaries(self):
        p = GuestProcess(pid=1)
        vma = p.mmap(4 * MIB)
        assert p.vma_at(vma.range.start) is vma
        assert p.vma_at(vma.range.end - 1) is vma
        assert p.vma_at(vma.range.end) is None
        assert p.vma_at(0) is None

    def test_default_page_size_inherited(self):
        p = GuestProcess(pid=1, page_size=PageSize.SIZE_2M)
        assert p.mmap(8 * MIB).page_size is PageSize.SIZE_2M
        assert p.mmap(8 * MIB, page_size=PageSize.SIZE_4K).page_size is PageSize.SIZE_4K


class TestPrimaryRegion:
    def test_only_flagged_region_is_primary(self):
        p = GuestProcess(pid=1)
        p.mmap(4 * MIB)
        primary = p.mmap(64 * MIB, is_primary_region=True)
        p.mmap(4 * MIB)
        assert p.primary_region is primary

    def test_segment_defaults_disabled(self):
        p = GuestProcess(pid=1)
        assert not p.guest_segment.enabled

    def test_mapped_bytes(self):
        p = GuestProcess(pid=1)
        p.mmap(4 * MIB)
        p.mmap(8 * MIB)
        assert p.mapped_bytes == 12 * MIB


class TestVma:
    def test_vma_fields(self):
        from repro.core.address import AddressRange

        vma = VirtualMemoryArea(range=AddressRange(0, 4096))
        assert vma.page_size is PageSize.SIZE_4K
        assert not vma.is_primary_region
        assert vma.writable
