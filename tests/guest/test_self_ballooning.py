"""Tests for self-ballooning (Section IV / VI.C, Figure 9)."""

import random

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange
from repro.guest.balloon import BalloonError, SelfBalloonDriver
from repro.guest.guest_os import GuestOS, SegmentCreationError
from repro.mem.physical_layout import PhysicalLayout
from repro.vmm.hypervisor import Hypervisor


class FakePort:
    """Stand-in VMM for driver-only tests."""

    def __init__(self, reserve_start=8 * GIB):
        self.reclaimed: list[int] = []
        self._cursor = reserve_start

    def reclaim_guest_frames(self, frames):
        self.reclaimed.extend(frames)

    def release_reserved_region(self, num_frames):
        region = AddressRange.of_size(self._cursor, num_frames * BASE_PAGE_SIZE)
        self._cursor = region.end
        return region


class TestDriverWithFakePort:
    def test_make_contiguous_trades_fragmented_for_contiguous(self):
        guest = GuestOS(PhysicalLayout(2 * GIB))
        guest.allocator.fragment(0.5, rng=random.Random(0), hold_orders=(0, 1))
        assert guest.allocator.largest_free_run_frames() < 32768
        port = FakePort()
        driver = SelfBalloonDriver(guest, port)
        released = driver.make_contiguous(128 * MIB)
        assert released.size == 128 * MIB
        # The released region is now allocatable contiguously.
        assert guest.allocator.largest_free_run_frames() >= 32768
        # The pinned pages went to the VMM.
        assert len(port.reclaimed) == 32768
        assert driver.stats.inflations == 1
        assert driver.stats.frames_ballooned == 32768

    def test_balloon_error_when_guest_memory_short(self):
        guest = GuestOS(PhysicalLayout(256 * MIB))
        port = FakePort()
        driver = SelfBalloonDriver(guest, port)
        with pytest.raises(BalloonError):
            driver.make_contiguous(1 * GIB)
        assert not port.reclaimed  # nothing leaked

    def test_total_guest_memory_is_conserved(self):
        # Ballooning out N frames and hot-adding N frames keeps the
        # guest's usable memory constant (Figure 9).
        guest = GuestOS(PhysicalLayout(2 * GIB))
        free_before = guest.allocator.free_frames
        driver = SelfBalloonDriver(guest, FakePort())
        driver.make_contiguous(64 * MIB)
        assert guest.allocator.free_frames == free_before


class TestEndToEndWithKvm:
    """Driver against the real VirtualMachine balloon port."""

    def _setup(self, reserve=512 * MIB):
        hypervisor = Hypervisor(host_memory_bytes=6 * GIB)
        vm = hypervisor.create_vm("vm0", memory_bytes=2 * GIB, reserve_bytes=reserve)
        guest = GuestOS(vm.guest_layout)
        return hypervisor, vm, guest

    def test_segment_creation_after_self_ballooning(self):
        hypervisor, vm, guest = self._setup()
        process = guest.spawn()
        process.mmap(256 * MIB, is_primary_region=True)
        guest.allocator.fragment(0.6, rng=random.Random(1), hold_orders=(0, 1))
        with pytest.raises(SegmentCreationError):
            guest.create_guest_segment(process)
        driver = SelfBalloonDriver(guest, vm)
        driver.make_contiguous(256 * MIB)
        regs = guest.create_guest_segment(process)
        assert regs.enabled
        assert regs.size == 256 * MIB
        # The segment's backing lies in the released reserve range (the
        # region the VMM hot-added above nominal guest memory).
        assert regs.physical_range.start >= 2 * GIB

    def test_reclaimed_host_memory_returns_to_hypervisor(self):
        hypervisor, vm, guest = self._setup()
        # Demand-map some guest pages so the balloon reclaims real
        # host frames.
        for gppn in range(100):
            vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        host_free_before = hypervisor.allocator.free_frames
        frames = [guest.allocator.alloc_frame() for _ in range(100)]
        vm.reclaim_guest_frames(frames)
        # Frames 0..99 were mapped, so the balloon freed host frames.
        assert hypervisor.allocator.free_frames >= host_free_before

    def test_ballooned_pages_cannot_be_touched(self):
        hypervisor, vm, guest = self._setup()
        frames = [guest.allocator.alloc_frame() for _ in range(4)]
        vm.reclaim_guest_frames(frames)
        with pytest.raises(MemoryError, match="ballooned"):
            vm.handle_nested_fault(frames[0] * BASE_PAGE_SIZE)

    def test_reserve_exhaustion(self):
        hypervisor, vm, guest = self._setup(reserve=16 * MIB)
        driver = SelfBalloonDriver(guest, vm)
        driver.make_contiguous(16 * MIB)
        with pytest.raises(ValueError, match="reserve"):
            driver.make_contiguous(16 * MIB)
