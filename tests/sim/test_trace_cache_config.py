"""Configurable trace-cache byte bound: env, CLI setter, eviction."""

import pytest

from repro.errors import ConfigError
from repro.sim import trace_cache
from tests.conftest import TinyWorkload


@pytest.fixture(autouse=True)
def fresh_cache():
    trace_cache.clear()
    trace_cache.stats().reset()
    yield
    trace_cache.clear()
    trace_cache.stats().reset()
    trace_cache.MAX_BYTES = trace_cache.DEFAULT_MAX_BYTES


class TestDefaults:
    def test_default_is_unchanged(self):
        assert trace_cache.DEFAULT_MAX_BYTES == 256 * 1024 * 1024

    def test_env_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(trace_cache.MAX_BYTES_ENV, raising=False)
        assert trace_cache._max_bytes_from_env() == trace_cache.DEFAULT_MAX_BYTES


class TestEnvOverride:
    def test_env_value_parses(self, monkeypatch):
        monkeypatch.setenv(trace_cache.MAX_BYTES_ENV, "1048576")
        assert trace_cache._max_bytes_from_env() == 1048576

    @pytest.mark.parametrize("bad", ["notanumber", "-1", "0", "1.5"])
    def test_bad_env_value_raises(self, monkeypatch, bad):
        monkeypatch.setenv(trace_cache.MAX_BYTES_ENV, bad)
        with pytest.raises(ConfigError):
            trace_cache._max_bytes_from_env()


class TestSetMaxBytes:
    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            trace_cache.set_max_bytes(0)
        with pytest.raises(ConfigError):
            trace_cache.set_max_bytes(-5)

    def test_shrinking_evicts_immediately_with_exact_stats(self):
        workload = TinyWorkload()
        for seed in range(3):
            trace_cache.get_trace(workload, 2000, seed)
        assert trace_cache.cache_size() == 3
        resident = trace_cache.cache_bytes()
        per_entry = resident // 3

        trace_cache.set_max_bytes(per_entry + 1)
        # LRU eviction down to the bound; the most-recent entry is kept
        # even if it alone exceeds it (the caller needs it regardless).
        assert trace_cache.cache_size() == 1
        stats = trace_cache.stats()
        assert stats.evictions == 2
        assert stats.evicted_bytes == resident - trace_cache.cache_bytes()
        # The survivor is the hottest entry (seed 2 was inserted last).
        assert trace_cache.get_trace(workload, 2000, 2) is not None
        assert stats.hits == 1

    def test_growing_the_bound_stops_eviction(self):
        workload = TinyWorkload()
        trace_cache.get_trace(workload, 2000, 0)
        trace_cache.set_max_bytes(trace_cache.DEFAULT_MAX_BYTES)
        trace_cache.get_trace(workload, 2000, 1)
        assert trace_cache.cache_size() == 2
        assert trace_cache.stats().evictions == 0

    def test_monkeypatched_module_attribute_still_honoured(self, monkeypatch):
        """Existing tests patch ``trace_cache.MAX_BYTES`` directly; the
        eviction path must keep reading it live."""
        workload = TinyWorkload()
        trace_cache.get_trace(workload, 2000, 0)
        monkeypatch.setattr(trace_cache, "MAX_BYTES", 1)
        trace_cache.get_trace(workload, 2000, 1)
        assert trace_cache.cache_size() == 1
