"""Trace memoization: identity sharing, key safety, bounded size."""

import numpy as np
import pytest

from repro.sim import trace_cache
from repro.sim.simulator import simulate
from tests.conftest import TinyWorkload


@pytest.fixture(autouse=True)
def fresh_cache():
    trace_cache.clear()
    trace_cache.stats().reset()
    trace_cache.attach_metrics(None)
    yield
    trace_cache.clear()
    trace_cache.stats().reset()
    trace_cache.attach_metrics(None)


def test_same_request_returns_same_arrays():
    workload = TinyWorkload()
    first = trace_cache.get_trace(workload, 1000, seed=5)
    second = trace_cache.get_trace(workload, 1000, seed=5)
    assert first.pages is second.pages
    assert first.unique_pages is second.unique_pages
    assert trace_cache.cache_size() == 1


def test_content_matches_direct_generation():
    workload = TinyWorkload()
    cached = trace_cache.get_trace(workload, 1000, seed=5)
    np.testing.assert_array_equal(cached.pages, workload.trace(1000, seed=5))
    np.testing.assert_array_equal(
        cached.unique_pages, np.unique(workload.trace(1000, seed=5))
    )


def test_distinct_lengths_and_seeds_are_distinct_entries():
    workload = TinyWorkload()
    trace_cache.get_trace(workload, 1000, seed=0)
    trace_cache.get_trace(workload, 1000, seed=1)
    trace_cache.get_trace(workload, 2000, seed=0)
    assert trace_cache.cache_size() == 3


def test_key_includes_footprint():
    """TinyWorkload reuses one name across footprints; keys must not."""
    small = TinyWorkload()
    large = TinyWorkload(footprint_bytes=small.spec.footprint_bytes * 2)
    assert trace_cache.trace_key(small, 1000, 0) != trace_cache.trace_key(
        large, 1000, 0
    )


def test_cached_arrays_are_read_only():
    cached = trace_cache.get_trace(TinyWorkload(), 500, seed=0)
    with pytest.raises(ValueError):
        cached.pages[0] = 1
    with pytest.raises(ValueError):
        cached.unique_pages[0] = 1


def test_eviction_bound():
    workload = TinyWorkload()
    for seed in range(trace_cache.MAX_ENTRIES + 5):
        trace_cache.get_trace(workload, 100, seed=seed)
    assert trace_cache.cache_size() <= trace_cache.MAX_ENTRIES


class TestLRUEviction:
    def test_hit_refreshes_recency(self):
        """A recently-hit entry survives eviction; the cold one goes."""
        workload = TinyWorkload()
        for seed in range(trace_cache.MAX_ENTRIES):
            trace_cache.get_trace(workload, 100, seed=seed)
        # Touch the oldest entry, making seed=1 the LRU victim.
        trace_cache.get_trace(workload, 100, seed=0)
        trace_cache.get_trace(workload, 100, seed=trace_cache.MAX_ENTRIES)
        keys = set(trace_cache._CACHE)
        assert trace_cache.trace_key(workload, 100, 0) in keys
        assert trace_cache.trace_key(workload, 100, 1) not in keys

    def test_byte_bound_evicts_lru(self, monkeypatch):
        """Total resident bytes stay under MAX_BYTES via LRU eviction."""
        workload = TinyWorkload()
        one = trace_cache.get_trace(workload, 400, seed=0).nbytes
        monkeypatch.setattr(trace_cache, "MAX_BYTES", int(one * 2.5))
        for seed in range(1, 6):
            trace_cache.get_trace(workload, 400, seed=seed)
        assert trace_cache.cache_bytes() <= trace_cache.MAX_BYTES
        assert trace_cache.stats().evictions > 0
        assert trace_cache.stats().evicted_bytes > 0
        # Most-recent entry always survives.
        assert trace_cache.trace_key(workload, 400, 5) in trace_cache._CACHE

    def test_single_oversized_entry_is_retained(self, monkeypatch):
        """The entry just generated is never evicted, whatever its size."""
        monkeypatch.setattr(trace_cache, "MAX_BYTES", 1)
        cached = trace_cache.get_trace(TinyWorkload(), 500, seed=0)
        assert trace_cache.cache_size() == 1
        assert cached.nbytes > 1

    def test_eviction_metrics_mirrored(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        trace_cache.attach_metrics(registry)
        workload = TinyWorkload()
        one = trace_cache.get_trace(workload, 400, seed=0).nbytes
        monkeypatch.setattr(trace_cache, "MAX_BYTES", int(one * 1.5))
        trace_cache.get_trace(workload, 400, seed=1)
        assert registry.counter_value("trace_cache.evictions") >= 1
        assert registry.counter_value("trace_cache.evicted_bytes") >= one


def test_simulate_populates_and_reuses_the_cache():
    workload = TinyWorkload()
    first = simulate("4K", workload, trace_length=1500, seed=2)
    assert trace_cache.cache_size() == 1
    second = simulate("DS", workload, trace_length=1500, seed=2)
    assert trace_cache.cache_size() == 1
    assert first.run.trace_length == second.run.trace_length


def test_simulate_can_bypass_the_cache():
    simulate("4K", TinyWorkload(), trace_length=800, seed=2, use_trace_cache=False)
    assert trace_cache.cache_size() == 0


class TestCacheStats:
    def test_counts_hits_misses_and_hit_rate(self):
        workload = TinyWorkload()
        trace_cache.get_trace(workload, 1000, seed=0)
        trace_cache.get_trace(workload, 1000, seed=0)
        trace_cache.get_trace(workload, 1000, seed=1)
        stats = trace_cache.stats()
        assert (stats.hits, stats.misses) == (1, 2)
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.as_dict()["hit_rate"] == pytest.approx(0.3333)

    def test_counts_evictions(self):
        workload = TinyWorkload()
        for seed in range(trace_cache.MAX_ENTRIES + 3):
            trace_cache.get_trace(workload, 100, seed=seed)
        assert trace_cache.stats().evictions == 3

    def test_mirrors_into_attached_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        trace_cache.attach_metrics(registry)
        workload = TinyWorkload()
        trace_cache.get_trace(workload, 1000, seed=0)
        trace_cache.get_trace(workload, 1000, seed=0)
        assert registry.counter_value("trace_cache.misses") == 1
        assert registry.counter_value("trace_cache.hits") == 1

    def test_disabled_registry_is_not_written(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=False)
        trace_cache.attach_metrics(registry)
        trace_cache.get_trace(TinyWorkload(), 500, seed=0)
        assert registry.snapshot() == {}
        # The plain stats object still counts.
        assert trace_cache.stats().misses == 1

    def test_two_config_sweep_reuses_one_generation(self):
        """A sweep of configs over one cell generates the trace once."""
        workload = TinyWorkload()
        for config in ("4K", "DS"):
            simulate(config, workload, trace_length=1500, seed=7)
        stats = trace_cache.stats()
        assert stats.misses == 1, "trace must be generated exactly once"
        assert stats.hits >= 1, "second config must hit the cache"
