"""Tests for configuration and run-parameter validation."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    parse_config,
    validate_geometry,
    validate_run_parameters,
)
from repro.sim.simulator import run_trace, simulate
from repro.sim.system import build_system
from repro.tlb.hierarchy import TLBGeometry


class TestParseConfigErrors:
    def test_empty_label(self):
        with pytest.raises(ConfigError, match="empty"):
            parse_config("   ")

    def test_unknown_guest_level_lists_options(self):
        with pytest.raises(ConfigError, match="4K, 2M, 1G"):
            parse_config("3M")

    def test_unknown_nested_level_lists_options(self):
        with pytest.raises(ConfigError, match="VD, GD"):
            parse_config("4K+8M")

    def test_double_plus_rejected(self):
        with pytest.raises(ConfigError, match="one '\\+'"):
            parse_config("4K+2M+1G")

    def test_config_error_is_a_value_error(self):
        # Existing callers catching ValueError keep working.
        with pytest.raises(ValueError):
            parse_config("bogus")


class TestGeometryValidation:
    def test_default_geometry_is_valid(self):
        validate_geometry(TLBGeometry())

    def test_zero_entry_tlb_rejected(self):
        with pytest.raises(ConfigError, match="at least one entry"):
            validate_geometry(TLBGeometry(l1_4k_entries=0))

    def test_negative_ways_rejected(self):
        with pytest.raises(ConfigError, match="way"):
            validate_geometry(TLBGeometry(l2_ways=-1))

    def test_indivisible_sets_rejected(self):
        with pytest.raises(ConfigError, match="divisible"):
            validate_geometry(TLBGeometry(l2_entries=500, l2_ways=3))

    def test_build_system_validates_geometry(self, tiny_workload):
        with pytest.raises(ConfigError):
            build_system(
                parse_config("4K"),
                tiny_workload.spec,
                geometry=TLBGeometry(l1_2m_entries=0),
            )


class TestRunParameterValidation:
    def test_negative_footprint_rejected(self):
        with pytest.raises(ConfigError, match="footprint"):
            validate_run_parameters(-1)

    def test_zero_trace_length_rejected(self):
        with pytest.raises(ConfigError, match="trace length"):
            validate_run_parameters(4096, trace_length=0)

    def test_warmup_fraction_bounds(self):
        with pytest.raises(ConfigError, match="warmup"):
            validate_run_parameters(4096, warmup_fraction=1.0)
        with pytest.raises(ConfigError, match="warmup"):
            validate_run_parameters(4096, warmup_fraction=-0.1)
        validate_run_parameters(4096, warmup_fraction=0.0)

    def test_run_trace_rejects_bad_warmup(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        with pytest.raises(ConfigError):
            run_trace(system, tiny_workload.trace(100), 5.0, warmup_fraction=2.0)

    def test_simulate_rejects_bad_trace_length(self, tiny_workload):
        with pytest.raises(ConfigError):
            simulate("4K", tiny_workload, trace_length=-5)
