"""Tests for the trace-driven simulator."""

import pytest

from repro.sim.config import parse_config
from repro.sim.simulator import run_trace, simulate
from repro.sim.system import build_system


class TestRunTrace:
    def test_produces_consistent_result(self, tiny_workload):
        result = simulate("4K", tiny_workload, trace_length=3000)
        run = result.run
        assert run.config_name == "4K"
        assert run.workload_name == "tiny"
        c = result.counters
        assert c.accesses == c.l1_hits + c.l1_misses
        assert c.l2_hits + c.l2_misses == c.l1_misses
        assert run.walks == c.l2_misses
        assert result.overhead_percent >= 0

    def test_refs_per_entry_scales_reference_count(self, tiny_workload):
        result = simulate("4K", tiny_workload, trace_length=3000)
        measured_entries = int(3000 * 0.85)  # default 15% warm-up
        assert result.run.trace_length == int(
            measured_entries * tiny_workload.spec.refs_per_entry
        )

    def test_prepopulation_eliminates_measured_faults(self, tiny_workload):
        result = simulate("4K+4K", tiny_workload, trace_length=2000)
        assert result.counters.faults == 0

    def test_demand_paging_mode(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        trace = tiny_workload.trace(1000, seed=0)
        result = run_trace(
            system, trace, 5.0, prepopulate=False, warmup_fraction=0.0
        )
        assert result.counters.faults > 0

    def test_determinism(self, tiny_workload):
        a = simulate("4K+4K", tiny_workload, trace_length=2000, seed=5)
        b = simulate("4K+4K", tiny_workload, trace_length=2000, seed=5)
        assert a.run == b.run

    def test_warmup_fraction_validation(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        with pytest.raises(ValueError):
            run_trace(system, tiny_workload.trace(100), 5.0, warmup_fraction=1.0)


class TestCrossModeProperties:
    """The paper's headline orderings, on the tiny workload."""

    @pytest.fixture(scope="class")
    def results(self):
        from tests.conftest import TinyWorkload

        out = {}
        for label in ("4K", "4K+4K", "DD", "4K+VD", "4K+GD", "DS"):
            out[label] = simulate(label, TinyWorkload(), trace_length=6000)
        return out

    def test_virtualization_multiplies_overhead(self, results):
        assert (
            results["4K+4K"].overhead_percent
            > 1.5 * results["4K"].overhead_percent
        )

    def test_vmm_direct_is_near_native(self, results):
        native = results["4K"].overhead_percent
        vd = results["4K+VD"].overhead_percent
        assert vd < native * 1.4
        assert vd < results["4K+4K"].overhead_percent

    def test_guest_direct_is_near_native(self, results):
        assert results["4K+GD"].overhead_percent < results["4K"].overhead_percent * 1.4

    def test_dual_direct_is_near_zero(self, results):
        assert results["DD"].overhead_percent < 0.5
        assert results["DS"].overhead_percent < 0.5

    def test_dd_eliminates_l2_misses(self, results):
        assert results["DD"].l2_tlb_misses < 0.01 * max(
            1, results["4K+4K"].l2_tlb_misses
        )

    def test_all_modes_translate_same_misses(self, results):
        # Same trace, same L1 behaviour for 4K-grain modes.
        assert (
            abs(
                results["4K"].counters.l1_misses
                - results["DD"].counters.l1_misses
            )
            < 0.2 * results["4K"].counters.l1_misses
        )
