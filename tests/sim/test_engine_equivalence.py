"""The batched engine's contract: bit-identical to the scalar loop.

The fast path is only allowed to exist because it changes nothing
observable: for any trace and any supported configuration, running the
references through :meth:`MMU.access_batch` must leave every counter,
every TLB and page-walk-cache entry -- including LRU order within each
set -- and every stat identical to a scalar ``access`` loop.  These
tests enforce that across all config labels the experiments use.
"""

import numpy as np
import pytest

from repro.sim.config import parse_config
from repro.sim.engine import BatchedTranslationEngine, access_batch
from repro.sim.system import build_system, populate_for_addresses
from tests.conftest import TinyWorkload

#: Every configuration family: native page sizes, THP, the virtualized
#: grid, and all four proposed direct modes.
ALL_CONFIG_LABELS = (
    "4K",
    "2M",
    "1G",
    "THP",
    "4K+4K",
    "4K+2M",
    "4K+1G",
    "2M+2M",
    "2M+1G",
    "1G+1G",
    "THP+2M",
    "DS",
    "DD",
    "4K+VD",
    "4K+GD",
    "THP+VD",
)

TRACE_LENGTH = 3000


def _cache_state(cache):
    """Full observable state of one cache: entries in LRU order + stats."""
    return (
        [list(line.items()) for line in cache._sets],
        (cache.stats.hits, cache.stats.misses),
    )


def _full_state(mmu):
    """Every observable the equivalence contract covers."""
    h = mmu.hierarchy
    state = {"counters": mmu.counters}
    for size, cache in h.l1.items():
        state[f"l1-{size.label}"] = _cache_state(cache)
    state["l2"] = _cache_state(h.l2)
    state["l1_stats"] = (h.l1_stats.hits, h.l1_stats.misses)
    state["l2_stats"] = (h.l2_stats.hits, h.l2_stats.misses)
    state["nested_insertions"] = h.nested_insertions
    walker = mmu.walker
    for attr in ("pwc", "guest_pwc", "nested_pwc"):
        pwc = getattr(walker, attr, None)
        if pwc is not None:
            state[attr] = {
                level: _cache_state(c) for level, c in pwc._caches.items()
            }
    return state


def _build_pair(label, workload):
    """Two freshly-populated identical systems for one config."""
    systems = []
    trace = workload.trace(TRACE_LENGTH, seed=11)
    for _ in range(2):
        system = build_system(parse_config(label), workload.spec)
        rebased = (trace.astype(np.int64) << 12) + system.base_va
        populate_for_addresses(system, np.unique(rebased))
        systems.append((system, rebased))
    return systems


@pytest.mark.parametrize("label", ALL_CONFIG_LABELS)
def test_batched_equals_scalar_everywhere(label):
    """Counters, TLB/PWC contents, LRU order: all identical per config."""
    (sys_scalar, trace_scalar), (sys_batched, trace_batched) = _build_pair(
        label, TinyWorkload()
    )
    for va in trace_scalar.tolist():
        sys_scalar.mmu.access(va)
    sys_batched.mmu.access_batch(trace_batched)

    scalar, batched = _full_state(sys_scalar.mmu), _full_state(sys_batched.mmu)
    assert scalar.keys() == batched.keys()
    for key in scalar:
        assert scalar[key] == batched[key], f"{label}: {key} diverged"
    assert (
        sys_scalar.mmu.counters.l2_misses == sys_batched.mmu.counters.l2_misses
    )


def test_interleaving_scalar_and_batched_is_safe():
    """The engine re-snapshots, so mixing call styles stays exact."""
    (sys_a, trace_a), (sys_b, trace_b) = _build_pair("4K+4K", TinyWorkload())
    for va in trace_a.tolist():
        sys_a.mmu.access(va)

    engine = BatchedTranslationEngine(sys_b.mmu)
    third = len(trace_b) // 3
    engine.run(trace_b[:third])
    for va in trace_b[third : 2 * third].tolist():
        sys_b.mmu.access(va)
    engine.run(trace_b[2 * third :])

    assert _full_state(sys_a.mmu) == _full_state(sys_b.mmu)


def test_small_block_equals_default_block():
    """Chunking must not be observable: block=7 == block=default."""
    (sys_a, trace_a), (sys_b, trace_b) = _build_pair("DS", TinyWorkload())
    access_batch(sys_a.mmu, trace_a)
    access_batch(sys_b.mmu, trace_b, block=7)
    assert _full_state(sys_a.mmu) == _full_state(sys_b.mmu)


def test_empty_and_invalid_blocks():
    (system, trace) = _build_pair("4K", TinyWorkload())[0]
    before = _full_state(system.mmu)
    system.mmu.access_batch(np.empty(0, dtype=np.int64))
    assert _full_state(system.mmu) == before
    with pytest.raises(ValueError):
        BatchedTranslationEngine(system.mmu, block=0)
