"""Tests for the system builder."""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB
from repro.core.modes import TranslationMode
from repro.core.walker import DirectSegmentWalker, NativeWalker, NestedWalker
from repro.mem.physical_layout import IO_GAP_START
from repro.sim.config import parse_config
from repro.sim.system import build_system, populate_for_addresses


class TestNativeBuild:
    def test_4k_native(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        assert system.vm is None
        assert isinstance(system.mmu.walker, NativeWalker)
        assert system.process.primary_region is not None

    def test_ds_native_has_segment(self, tiny_workload):
        system = build_system(parse_config("DS"), tiny_workload.spec)
        walker = system.mmu.walker
        assert isinstance(walker, DirectSegmentWalker)
        assert walker.segment.enabled
        assert walker.segment.size == tiny_workload.spec.footprint_bytes

    def test_access_translates(self, tiny_workload):
        system = build_system(parse_config("4K"), tiny_workload.spec)
        frame = system.mmu.access(system.base_va + 4096 + 17)
        assert frame > 0


class TestVirtualizedBuild:
    @pytest.mark.parametrize("label", ["4K+4K", "4K+2M", "DD", "4K+VD", "4K+GD"])
    def test_builds_and_translates(self, tiny_workload, label):
        system = build_system(parse_config(label), tiny_workload.spec)
        assert system.vm is not None
        assert isinstance(system.mmu.walker, NestedWalker)
        assert system.vm.mode is parse_config(label).mode
        frame = system.mmu.access(system.base_va + 12345)
        assert frame > 0

    def test_vd_has_vmm_segment_only(self, tiny_workload):
        system = build_system(parse_config("4K+VD"), tiny_workload.spec)
        walker = system.mmu.walker
        assert walker.vmm_segment.enabled
        assert not walker.guest_segment.enabled

    def test_gd_has_guest_segment_only(self, tiny_workload):
        system = build_system(parse_config("4K+GD"), tiny_workload.spec)
        walker = system.mmu.walker
        assert walker.guest_segment.enabled
        assert not walker.vmm_segment.enabled

    def test_dd_has_both_segments(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        walker = system.mmu.walker
        assert walker.guest_segment.enabled
        assert walker.vmm_segment.enabled
        # Guest segment's gPA range lies inside the VMM segment.
        assert walker.vmm_segment.virtual_range.contains_range(
            walker.guest_segment.physical_range
        )

    def test_vd_performs_io_gap_reclaim(self, tiny_workload):
        system = build_system(parse_config("4K+VD"), tiny_workload.spec)
        assert system.vm.slots.low_slot.gpa_range.size <= 256 * 1024 * 1024

    def test_base_virtualized_keeps_standard_slots(self, tiny_workload):
        system = build_system(parse_config("4K+4K"), tiny_workload.spec)
        assert system.vm.slots.low_slot.gpa_range.size == min(
            IO_GAP_START, system.vm.memory_bytes
        )

    def test_guest_pt_pool_inside_vmm_segment(self, tiny_workload):
        # Section III.B: guest page tables must resolve via the segment.
        system = build_system(parse_config("4K+VD"), tiny_workload.spec)
        table = system.guest_os.page_table_of(system.process)
        segment = system.vm.vmm_segment
        for frame in table.node_frames:
            assert segment.covers(frame * BASE_PAGE_SIZE)


class TestPopulation:
    def test_populate_prevents_faults(self, tiny_workload):
        system = build_system(parse_config("4K+4K"), tiny_workload.spec)
        trace = tiny_workload.trace(2000, seed=0)
        addresses = [(int(p) << 12) + system.base_va for p in trace]
        populate_for_addresses(system, sorted(set(a & ~0xFFF for a in addresses)))
        for va in addresses:
            system.mmu.access(va)
        assert system.mmu.counters.faults == 0

    def test_populate_with_segments_prevents_faults(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        trace = tiny_workload.trace(1000, seed=1)
        addresses = [(int(p) << 12) + system.base_va for p in trace]
        populate_for_addresses(system, sorted(set(a & ~0xFFF for a in addresses)))
        for va in addresses:
            system.mmu.access(va)
        assert system.mmu.counters.faults == 0


class TestFunctionalEquivalence:
    """Hardware segments vs Section VI.B emulation produce identical
    translations (the prototype's correctness claim)."""

    @pytest.mark.parametrize("label", ["DD", "4K+VD"])
    def test_emulation_matches_hardware(self, tiny_workload, label):
        # For modes with a VMM segment the final hPA is fully determined
        # (hPA = gPA + OFFSET_V), so hardware and emulation must agree
        # bit for bit.
        config = parse_config(label)
        hw = build_system(config, tiny_workload.spec)
        emu = build_system(config, tiny_workload.spec, emulate_segments=True)
        trace = tiny_workload.trace(500, seed=2)
        for page in sorted(set(int(p) for p in trace))[:200]:
            va = (page << 12) + hw.base_va
            assert hw.mmu.access(va) == emu.mmu.access(va), hex(va)

    def test_guest_direct_emulation_matches_first_dimension(self, tiny_workload):
        # Guest Direct's nested dimension demand-allocates host frames,
        # so hPAs depend on allocation order; the architectural contract
        # is the first dimension: gVA -> gPA must match the segment.
        config = parse_config("4K+GD")
        hw = build_system(config, tiny_workload.spec)
        emu = build_system(config, tiny_workload.spec, emulate_segments=True)
        table = emu.guest_os.page_table_of(emu.process)
        segment = hw.mmu.walker.guest_segment
        trace = tiny_workload.trace(300, seed=3)
        for page in sorted(set(int(p) for p in trace))[:100]:
            va = (page << 12) + emu.base_va
            emu.mmu.access(va)
            assert table.translate(va) == segment.translate(va)

    def test_emulation_uses_no_hardware_segments(self, tiny_workload):
        emu = build_system(
            parse_config("DD"), tiny_workload.spec, emulate_segments=True
        )
        walker = emu.mmu.walker
        assert not walker.guest_segment.enabled
        assert not walker.vmm_segment.enabled
        # But the walk still succeeds through computed PTEs.
        frame = emu.mmu.access(emu.base_va + 999)
        assert frame > 0


class TestRefreshSegments:
    def test_refresh_after_mode_change(self, tiny_workload):
        system = build_system(parse_config("4K+GD"), tiny_workload.spec)
        # Upgrade: create a VMM segment and switch to Dual Direct.
        system.vm.create_vmm_segment()
        system.vm.set_mode(TranslationMode.DUAL_DIRECT)
        system.mmu.mode = TranslationMode.DUAL_DIRECT
        system.refresh_segments()
        assert system.mmu.walker.vmm_segment.enabled
