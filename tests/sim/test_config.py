"""Tests for configuration-label parsing."""

import pytest

from repro.core.address import PageSize
from repro.core.modes import TranslationMode
from repro.sim.config import (
    NATIVE_CONFIGS,
    PROPOSED_CONFIGS,
    VIRTUALIZED_BASELINE_CONFIGS,
    SystemConfig,
    parse_config,
)


class TestNativeLabels:
    @pytest.mark.parametrize(
        "label,size",
        [("4K", PageSize.SIZE_4K), ("2M", PageSize.SIZE_2M), ("1G", PageSize.SIZE_1G)],
    )
    def test_page_sizes(self, label, size):
        config = parse_config(label)
        assert config.mode is TranslationMode.NATIVE
        assert config.guest_page is size
        assert config.nested_page is None
        assert not config.virtualized

    def test_thp(self):
        config = parse_config("THP")
        assert config.mode is TranslationMode.NATIVE
        assert config.thp
        assert config.guest_page is PageSize.SIZE_4K

    def test_ds(self):
        config = parse_config("DS")
        assert config.mode is TranslationMode.NATIVE_DIRECT_SEGMENT


class TestVirtualizedLabels:
    def test_page_size_grid(self):
        config = parse_config("2M+1G")
        assert config.mode is TranslationMode.BASE_VIRTUALIZED
        assert config.guest_page is PageSize.SIZE_2M
        assert config.nested_page is PageSize.SIZE_1G

    def test_dd(self):
        config = parse_config("DD")
        assert config.mode is TranslationMode.DUAL_DIRECT
        assert config.virtualized

    def test_vd_and_gd(self):
        vd = parse_config("4K+VD")
        assert vd.mode is TranslationMode.VMM_DIRECT
        assert vd.guest_page is PageSize.SIZE_4K
        gd = parse_config("4K+GD")
        assert gd.mode is TranslationMode.GUEST_DIRECT

    def test_thp_guest_over_vmm(self):
        config = parse_config("THP+2M")
        assert config.thp
        assert config.nested_page is PageSize.SIZE_2M

    def test_thp_with_vd(self):
        config = parse_config("THP+VD")
        assert config.mode is TranslationMode.VMM_DIRECT
        assert config.thp

    def test_case_and_whitespace(self):
        assert parse_config(" 4k+vd ").mode is TranslationMode.VMM_DIRECT

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            parse_config("3M+4K")


class TestValidation:
    def test_virtualized_needs_nested_page(self):
        with pytest.raises(ValueError):
            SystemConfig(
                label="x",
                mode=TranslationMode.BASE_VIRTUALIZED,
                guest_page=PageSize.SIZE_4K,
                nested_page=None,
            )

    def test_native_rejects_nested_page(self):
        with pytest.raises(ValueError):
            SystemConfig(
                label="x",
                mode=TranslationMode.NATIVE,
                guest_page=PageSize.SIZE_4K,
                nested_page=PageSize.SIZE_4K,
            )

    def test_thp_requires_4k_guest(self):
        with pytest.raises(ValueError):
            SystemConfig(
                label="x",
                mode=TranslationMode.NATIVE,
                guest_page=PageSize.SIZE_2M,
                nested_page=None,
                thp=True,
            )


class TestConfigSets:
    def test_all_predefined_labels_parse(self):
        for label in NATIVE_CONFIGS + VIRTUALIZED_BASELINE_CONFIGS + PROPOSED_CONFIGS:
            config = parse_config(label)
            assert config.label == label
