"""Tests for the TLB hierarchy and nested-entry capacity sharing."""

from repro.core.address import PageSize
from repro.tlb.hierarchy import TLBGeometry, TLBHierarchy


class TestGeometryDefaults:
    def test_table6_geometry(self):
        h = TLBHierarchy()
        assert h.l1[PageSize.SIZE_4K].entries == 64
        assert h.l1[PageSize.SIZE_4K].ways == 4
        assert h.l1[PageSize.SIZE_2M].entries == 32
        assert h.l1[PageSize.SIZE_1G].entries == 4
        assert h.l2.entries == 512
        assert h.l2.ways == 4


class TestRegularEntries:
    def test_insert_then_l1_hit(self):
        h = TLBHierarchy()
        h.insert(vpn=100, page_size=PageSize.SIZE_4K, frame=7)
        assert h.lookup_l1(100) == (PageSize.SIZE_4K, 7)
        assert h.l1_stats.hits == 1

    def test_l1_miss_counts(self):
        h = TLBHierarchy()
        assert h.lookup_l1(100) is None
        assert h.l1_stats.misses == 1

    def test_2m_entry_matches_any_contained_4k_vpn(self):
        h = TLBHierarchy()
        # 2M page at vpn base 512 (second 2M region).
        h.insert(vpn=512, page_size=PageSize.SIZE_2M, frame=1000)
        for vpn in (512, 700, 1023):
            size, frame = h.lookup_l1(vpn)
            assert size is PageSize.SIZE_2M
            assert frame == 1000
        assert h.lookup_l1(1024) is None

    def test_l2_holds_only_4k_regular_entries(self):
        h = TLBHierarchy()
        h.insert(vpn=0, page_size=PageSize.SIZE_2M, frame=5)
        # The 2M entry is in L1 but not L2 (Sandy Bridge, Table VI).
        assert h.lookup_l2(0) is None
        h.insert(vpn=3, page_size=PageSize.SIZE_4K, frame=9)
        assert h.lookup_l2(3) == (PageSize.SIZE_4K, 9)

    def test_l2_backs_up_l1(self):
        geometry = TLBGeometry(l1_4k_entries=4, l1_4k_ways=4)
        h = TLBHierarchy(geometry)
        for vpn in range(8):
            h.insert(vpn, PageSize.SIZE_4K, vpn + 100)
        # L1 holds only 4 entries; older ones must still hit in L2.
        evicted = [vpn for vpn in range(8) if h.lookup_l1(vpn) is None]
        assert evicted
        for vpn in evicted:
            assert h.lookup_l2(vpn) == (PageSize.SIZE_4K, vpn + 100)

    def test_insert_l1_only(self):
        h = TLBHierarchy()
        h.insert_l1(42, PageSize.SIZE_4K, 9)
        assert h.lookup_l1(42) is not None
        assert h.lookup_l2(42) is None


class TestNestedSharing:
    def test_nested_round_trip(self):
        h = TLBHierarchy()
        h.insert_nested(gppn=100, page_size=PageSize.SIZE_4K, frame=55)
        assert h.lookup_nested(100, PageSize.SIZE_4K) == 55
        assert h.nested_insertions == 1

    def test_nested_and_regular_do_not_alias(self):
        h = TLBHierarchy()
        h.insert(vpn=100, page_size=PageSize.SIZE_4K, frame=1)
        h.insert_nested(gppn=100, page_size=PageSize.SIZE_4K, frame=2)
        assert h.lookup_l2(100) == (PageSize.SIZE_4K, 1)
        assert h.lookup_nested(100, PageSize.SIZE_4K) == 2

    def test_nested_entries_steal_l2_capacity(self):
        # The Section IX.A mechanism: nested insertions can evict
        # regular entries because they share the 512-entry array.
        h = TLBHierarchy()
        for vpn in range(512):
            h.insert(vpn, PageSize.SIZE_4K, vpn)
        regular_before = sum(
            1 for vpn in range(512) if h.l2.peek((0, PageSize.SIZE_4K, vpn))
        )
        # Hash indexing is not perfectly uniform, but most entries fit.
        assert regular_before > 300
        for gppn in range(512):
            h.insert_nested(gppn, PageSize.SIZE_4K, gppn)
        regular_after = sum(
            1 for vpn in range(512) if h.l2.peek((0, PageSize.SIZE_4K, vpn))
        )
        assert regular_after < regular_before

    def test_nested_2m_granularity(self):
        h = TLBHierarchy()
        h.insert_nested(gppn=512, page_size=PageSize.SIZE_2M, frame=4096)
        assert h.lookup_nested(512, PageSize.SIZE_2M) == 4096
        # Same entry serves any gppn in the 2M page via the shifted tag.
        assert h.lookup_nested(700, PageSize.SIZE_2M) == 4096


class TestMaintenance:
    def test_flush(self):
        h = TLBHierarchy()
        h.insert(1, PageSize.SIZE_4K, 1)
        h.insert_nested(2, PageSize.SIZE_4K, 2)
        h.flush()
        assert h.lookup_l1(1) is None
        assert h.lookup_nested(2, PageSize.SIZE_4K) is None

    def test_invalidate_page(self):
        h = TLBHierarchy()
        h.insert(1, PageSize.SIZE_4K, 1)
        h.invalidate_page(1)
        assert h.lookup_l1(1) is None
        assert h.lookup_l2(1) is None

    def test_reset_stats_keeps_entries(self):
        h = TLBHierarchy()
        h.insert(1, PageSize.SIZE_4K, 1)
        h.lookup_l1(1)
        h.reset_stats()
        assert h.l1_stats.accesses == 0
        assert h.lookup_l1(1) is not None
