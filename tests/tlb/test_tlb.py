"""Tests for the generic set-associative LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.tlb import SetAssociativeCache


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1)
        with pytest.raises(ValueError):
            SetAssociativeCache(10, 4)  # not divisible

    def test_fully_associative(self):
        cache = SetAssociativeCache(4, 4)
        assert cache.num_sets == 1


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(8, 2)
        assert cache.lookup(1) is None
        cache.insert(1, 100)
        assert cache.lookup(1) == 100
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_payload_none_rejected(self):
        cache = SetAssociativeCache(8, 2)
        with pytest.raises(ValueError):
            cache.insert(1, None)

    def test_reinsert_updates_value(self):
        cache = SetAssociativeCache(8, 2)
        cache.insert(1, 100)
        cache.insert(1, 200)
        assert cache.lookup(1) == 200
        assert len(cache) == 1

    def test_peek_does_not_touch_stats(self):
        cache = SetAssociativeCache(8, 2)
        cache.insert(1, 100)
        assert cache.peek(1) == 100
        assert cache.peek(2) is None
        assert cache.stats.accesses == 0


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        cache = SetAssociativeCache(2, 2)  # one set, two ways
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")  # refresh a
        cache.insert("c", 3)  # evicts b
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.peek("c") == 3
        assert cache.stats.evictions == 1

    def test_insertion_refreshes_recency(self):
        cache = SetAssociativeCache(2, 2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.insert("a", 10)  # refresh by reinsert
        cache.insert("c", 3)  # evicts b, not a
        assert cache.peek("a") == 10
        assert cache.peek("b") is None

    def test_capacity_never_exceeded(self):
        cache = SetAssociativeCache(16, 4)
        for i in range(200):
            cache.insert(i, i)
        assert len(cache) <= 16
        assert cache.occupancy() <= 1.0


class TestInvalidateFlush:
    def test_invalidate(self):
        cache = SetAssociativeCache(8, 2)
        cache.insert(1, 100)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.peek(1) is None

    def test_flush_preserves_stats(self):
        cache = SetAssociativeCache(8, 2)
        cache.insert(1, 100)
        cache.lookup(1)
        cache.flush()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_stats_reset(self):
        cache = SetAssociativeCache(8, 2)
        cache.lookup(1)
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.miss_rate == 0.0


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    def test_lookup_after_insert_always_hits_within_way_pressure(self, keys):
        # With a fully-associative cache as large as the key universe,
        # nothing is ever evicted: every insert must remain findable.
        cache = SetAssociativeCache(128, 128)
        inserted = set()
        for key in keys:
            cache.insert(key, key + 1)
            inserted.add(key)
        for key in inserted:
            assert cache.peek(key) == key + 1

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    def test_hits_plus_misses_equals_accesses(self, keys):
        cache = SetAssociativeCache(32, 4)
        for key in keys:
            if cache.lookup(key) is None:
                cache.insert(key, 1)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(keys)
