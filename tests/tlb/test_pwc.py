"""Tests for the page-walk caches and nested TLB."""

from repro.tlb.pwc import NestedTLB, PageWalkCache


class TestPageWalkCache:
    def test_cold_probe_misses(self):
        pwc = PageWalkCache()
        assert pwc.probe(0x1234_5678_9000).deepest_level == -1
        assert pwc.probe(0).skipped_levels == 0

    def test_fill_then_probe_deepest(self):
        pwc = PageWalkCache()
        address = 0x7F00_1234_5000
        pwc.fill(address, upto_level=2)
        probe = pwc.probe(address)
        assert probe.deepest_level == 2
        assert probe.skipped_levels == 3

    def test_partial_fill(self):
        pwc = PageWalkCache()
        address = 0x7F00_1234_5000
        pwc.fill(address, upto_level=0)
        assert pwc.probe(address).deepest_level == 0

    def test_neighbouring_2m_region_misses_pde(self):
        pwc = PageWalkCache()
        address = 0x4000_0000
        pwc.fill(address, upto_level=2)
        # Same 1G region, different 2M region: PDE miss, PDPTE hit.
        sibling = address + (1 << 21)
        assert pwc.probe(sibling).deepest_level == 1

    def test_far_address_misses_everything(self):
        pwc = PageWalkCache()
        pwc.fill(0, upto_level=2)
        assert pwc.probe(1 << 40).deepest_level == -1

    def test_fill_caps_at_pde(self):
        # Leaf entries belong in the TLB, not the PWC: fill(upto=3)
        # must behave as fill(upto=2).
        pwc = PageWalkCache()
        pwc.fill(0, upto_level=3)
        assert pwc.probe(0).deepest_level == 2

    def test_flush(self):
        pwc = PageWalkCache()
        pwc.fill(0, upto_level=2)
        pwc.flush()
        assert pwc.probe(0).deepest_level == -1

    def test_capacity_eviction(self):
        pwc = PageWalkCache(entries=4, ways=4)
        for i in range(16):
            pwc.fill(i << 21, upto_level=2)  # distinct PDE entries
        hits = sum(1 for i in range(16) if pwc.probe(i << 21).deepest_level == 2)
        assert hits <= 8  # bounded by PWC capacity (PDE + PDPTE aliasing)

    def test_stats(self):
        pwc = PageWalkCache()
        pwc.probe(0)
        stats = pwc.stats
        assert set(stats) == {0, 1, 2}


class TestNestedTLB:
    def test_round_trip(self):
        ntlb = NestedTLB()
        assert ntlb.lookup(5) is None
        ntlb.insert(5, 99)
        assert ntlb.lookup(5) == 99

    def test_flush(self):
        ntlb = NestedTLB()
        ntlb.insert(5, 99)
        ntlb.flush()
        assert ntlb.lookup(5) is None

    def test_eviction_bounded(self):
        ntlb = NestedTLB(entries=8, ways=2)
        for gppn in range(100):
            ntlb.insert(gppn, gppn)
        live = sum(1 for gppn in range(100) if ntlb.lookup(gppn) is not None)
        assert live <= 8
