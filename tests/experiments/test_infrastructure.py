"""Tests for the experiment infrastructure and cheap experiments."""

import pytest

from repro.experiments import ablations, sharing
from repro.experiments.common import RunGrid, format_table, run_grid


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["bbbb", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-+-" in lines[2]
        # All rows same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text and "3.1416" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestRunGrid:
    def test_grid_population(self, tiny_workload, monkeypatch):
        # Cells resolve workloads inside the (serial or worker-side)
        # cell runner, so that is where the lookup is patched.
        import repro.experiments.parallel as parallel

        monkeypatch.setattr(
            parallel, "create_workload", lambda name: tiny_workload
        )
        grid = run_grid(["tiny"], ["4K", "DD"], trace_length=2000)
        assert isinstance(grid, RunGrid)
        assert grid.get("tiny", "4K").config.label == "4K"
        assert grid.overhead_percent("tiny", "DD") < grid.overhead_percent("tiny", "4K")

    def test_missing_cell_raises(self):
        grid = RunGrid(workloads=("a",), configs=("4K",))
        with pytest.raises(KeyError):
            grid.get("a", "4K")


class TestSharingExperiment:
    def test_pairs_enumeration(self):
        result = sharing.run(workloads=("graph500", "gups"))
        pairs = {(p.workload_a, p.workload_b) for p in result.pairs}
        assert pairs == {
            ("graph500", "graph500"),
            ("graph500", "gups"),
            ("gups", "gups"),
        }

    def test_format(self):
        result = sharing.run(workloads=("graph500",))
        text = sharing.format_study(result)
        assert "graph500" in text
        assert "%" in text


class TestAblationHelpers:
    def test_filter_geometry_points(self):
        points = ablations.sweep_filter_geometry(
            bits_options=(64, 256), probe_pages=20_000
        )
        assert [p.total_bits for p in points] == [64, 256]
        assert all(0 <= p.false_positive_rate <= 1 for p in points)

    def test_filter_geometry_format(self):
        points = ablations.sweep_filter_geometry(
            bits_options=(256,), probe_pages=5_000
        )
        assert "256" in ablations.format_filter_geometry(points)


class TestCli:
    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_experiment_registry_covers_paper(self):
        from repro.experiments.__main__ import EXPERIMENTS

        for name in (
            "figure1",
            "figure11",
            "figure12",
            "figure13",
            "breakdown",
            "table3",
            "table4",
            "shadow",
            "sharing",
            "energy",
        ):
            assert name in EXPERIMENTS
