"""Parallel sweep runner: determinism, ordering, serial fallback."""

import pytest

from repro.errors import ConfigError
from repro.experiments import figure13, report
from repro.experiments.common import run_grid
from repro.experiments.parallel import CellTask, parallel_map, run_cells

SMOKE_WORKLOADS = ("gups", "graph500")
SMOKE_CONFIGS = ("4K", "DS", "DD")
SMOKE_LENGTH = 2000


def test_jobs4_report_is_byte_identical_to_serial():
    """The satellite criterion: --jobs 4 == --jobs 1, byte for byte."""
    serial = run_grid(
        SMOKE_WORKLOADS, SMOKE_CONFIGS, trace_length=SMOKE_LENGTH, seed=3, jobs=1
    )
    parallel = run_grid(
        SMOKE_WORKLOADS, SMOKE_CONFIGS, trace_length=SMOKE_LENGTH, seed=3, jobs=4
    )
    assert report.dumps(serial) == report.dumps(parallel)


def test_results_come_back_in_task_order():
    tasks = [
        CellTask(workload=w, config=c, trace_length=SMOKE_LENGTH, seed=0)
        for w in SMOKE_WORKLOADS
        for c in ("4K", "DD")
    ]
    results = run_cells(tasks, jobs=2)
    assert [r.workload_name for r in results] == [t.workload for t in tasks]
    assert [r.config.label for r in results] == [t.config for t in tasks]


def test_serial_fallback_never_uses_multiprocessing(monkeypatch):
    """jobs=1 must work even where multiprocessing is unavailable."""
    import multiprocessing

    def broken(*args, **kwargs):
        raise AssertionError("pool created on the serial path")

    monkeypatch.setattr(multiprocessing, "get_context", broken)
    tasks = [
        CellTask(workload="gups", config="4K", trace_length=SMOKE_LENGTH, seed=0)
    ]
    results = run_cells(tasks, jobs=1)
    assert len(results) == 1
    # A single task also short-circuits to inline execution.
    assert len(run_cells(tasks, jobs=8)) == 1


def test_parallel_map_matches_inline_map():
    items = list(range(10))
    assert parallel_map(_square, items, jobs=3) == [i * i for i in items]
    assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
    assert parallel_map(_square, [], jobs=3) == []


def _square(x):
    return x * x


def test_negative_jobs_rejected():
    with pytest.raises(ConfigError):
        parallel_map(_square, [1, 2], jobs=-1)


def test_figure13_parallel_matches_serial():
    """Trial fan-out reproduces the serial figure exactly."""
    kwargs = dict(
        trace_length=SMOKE_LENGTH,
        workloads=("gups",),
        bad_counts=(1, 4),
        trials=2,
    )
    serial = figure13.run(jobs=1, **kwargs)
    parallel = figure13.run(jobs=4, **kwargs)
    assert report.dumps(serial) == report.dumps(parallel)
