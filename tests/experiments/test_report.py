"""Tests for the JSON report serializer."""

import json
from dataclasses import dataclass, field

import pytest

from repro.experiments import report
from repro.core.modes import TranslationMode


@dataclass
class Inner:
    count: int
    label: str

    @property
    def doubled(self) -> int:
        return 2 * self.count


@dataclass
class Outer:
    inner: Inner
    values: list = field(default_factory=lambda: [1, 2.5, "x", None])
    mode: TranslationMode = TranslationMode.DUAL_DIRECT
    mapping: dict = field(default_factory=lambda: {("a", 1): True})
    _private: int = 7


class TestToJsonable:
    def test_dataclass_fields(self):
        out = report.to_jsonable(Outer(Inner(3, "hi")))
        assert out["inner"]["count"] == 3
        assert out["inner"]["label"] == "hi"

    def test_properties_included(self):
        out = report.to_jsonable(Inner(3, "hi"))
        assert out["doubled"] == 6

    def test_enums_become_values(self):
        out = report.to_jsonable(Outer(Inner(1, "a")))
        assert out["mode"] == "dual-direct"

    def test_private_fields_excluded(self):
        out = report.to_jsonable(Outer(Inner(1, "a")))
        assert "_private" not in out

    def test_dict_keys_stringified(self):
        out = report.to_jsonable(Outer(Inner(1, "a")))
        assert list(out["mapping"]) == ["('a', 1)"]

    def test_scalars_pass_through(self):
        for value in (1, 2.5, "x", True, None):
            assert report.to_jsonable(value) == value

    def test_collections(self):
        assert report.to_jsonable((1, 2)) == [1, 2]
        assert sorted(report.to_jsonable({3, 1})) == [1, 3]


class TestDumps:
    def test_round_trips_through_json(self):
        text = report.dumps(Outer(Inner(3, "hi")))
        parsed = json.loads(text)
        assert parsed["inner"]["doubled"] == 6

    def test_real_experiment_result_serializes(self):
        from repro.experiments import sharing

        result = sharing.run(workloads=("gups",))
        parsed = json.loads(report.dumps(result))
        assert parsed["pairs"][0]["workload_a"] == "gups"
        assert 0 <= parsed["max_savings"] < 1
