"""Bench baseline path resolution must be independent of the cwd.

Regression tests for the update-mode bug where ``REPRO_BENCH_UPDATE=1``
runs invoked from outside the repository root wrote a fresh
``BENCH_simulator.json`` relative to the current working directory
instead of refreshing the committed file under ``benchmarks/``.
"""

import json
import os

from repro.experiments import bench


def test_baseline_path_is_absolute():
    assert bench.BASELINE_PATH.is_absolute()
    assert bench.BASELINE_PATH.name == "BENCH_simulator.json"
    assert bench.BASELINE_PATH.parent.name == "benchmarks"


def test_resolve_none_is_committed_path():
    assert bench.resolve_baseline_path(None) == bench.BASELINE_PATH


def test_resolve_relative_anchors_at_benchmarks_dir(tmp_path, monkeypatch):
    """A relative path resolves against benchmarks/, not the cwd."""
    monkeypatch.chdir(tmp_path)
    resolved = bench.resolve_baseline_path("BENCH_simulator.json")
    assert resolved == bench.BASELINE_PATH
    assert not (tmp_path / "BENCH_simulator.json").exists()


def test_resolve_absolute_passes_through(tmp_path):
    target = tmp_path / "elsewhere.json"
    assert bench.resolve_baseline_path(target) == target


def test_write_baseline_lands_at_resolved_path_from_any_cwd(
    tmp_path, monkeypatch
):
    """Update mode writes to the resolved location regardless of cwd."""
    baseline = tmp_path / "repo" / "benchmarks" / "BENCH_simulator.json"
    monkeypatch.setattr(bench, "BASELINE_PATH", baseline)
    cwd = tmp_path / "somewhere" / "else"
    cwd.mkdir(parents=True)
    monkeypatch.chdir(cwd)

    result = bench.BenchResult(trace_length=1000, jobs=1)
    result.metrics = {"batched_speedup": 2.5, "obs_disabled_ratio": 1.0}
    written = bench.write_baseline(result)

    assert written == baseline
    assert baseline.exists(), "parent directories must be created"
    assert not (cwd / "BENCH_simulator.json").exists(), (
        "no cwd-relative copy may appear"
    )
    payload = json.loads(baseline.read_text())
    assert payload["metrics"]["batched_speedup"] == 2.5
    # load_baseline round-trips through the same resolution.
    assert bench.load_baseline()["obs_disabled_ratio"] == 1.0


def test_run_update_mode_refreshes_resolved_baseline(tmp_path, monkeypatch):
    """REPRO_BENCH_UPDATE=1 refreshes the committed file, from any cwd."""
    baseline = tmp_path / "repo" / "benchmarks" / "BENCH_simulator.json"
    monkeypatch.setattr(bench, "BASELINE_PATH", baseline)
    monkeypatch.setattr(bench, "ENGINE_REFS", 4_000)
    monkeypatch.setattr(bench, "ENGINE_REPEATS", 1)
    cwd = tmp_path / "cwd"
    cwd.mkdir()
    monkeypatch.chdir(cwd)
    monkeypatch.setitem(os.environ, "REPRO_BENCH_UPDATE", "1")

    result = bench.run(trace_length=2_000, jobs=1)

    assert baseline.exists()
    assert not (cwd / "BENCH_simulator.json").exists()
    # run() reloads the file it just wrote, so the comparison columns
    # show the refreshed values.
    assert result.baseline
    assert set(result.baseline) == set(result.metrics)
