"""Smoke tests for the figure/table experiment modules (tiny scale).

The benchmarks exercise these at paper scale; here each experiment is
driven at miniature scale so plain `pytest tests/` validates the whole
harness quickly.
"""

import pytest

from repro.experiments import (
    breakdown,
    energy,
    figure01,
    figure11,
    figure12,
    figure13,
    shadow,
    table4_models,
)

TINY = 5_000


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11.run(
            trace_length=TINY,
            workloads=("gups",),
            configs=("4K", "4K+4K", "DD"),
        )

    def test_grid_complete(self, result):
        assert len(result.grid.results) == 3

    def test_series(self, result):
        series = dict(result.series("gups"))
        assert set(series) == {"4K", "4K+4K", "DD"}
        assert series["DD"] < series["4K"] < series["4K+4K"]

    def test_format(self, result):
        text = figure11.format_figure(result)
        assert "gups" in text and "4K+4K" in text

    def test_paper_reference_table_sane(self):
        for (workload, config), value in figure11.PAPER_REFERENCE.items():
            assert workload == "graph500"
            assert value >= 0


class TestFigure12:
    def test_tiny_run(self):
        result = figure12.run(
            trace_length=TINY, workloads=("omnetpp",), configs=("4K", "THP")
        )
        assert figure12.format_figure(result)
        series = dict(result.series("omnetpp"))
        assert series["THP"] <= series["4K"] * 1.5


class TestFigure01:
    def test_preview_is_subset_of_figure11(self):
        assert set(figure01.PREVIEW_CONFIGS) < set(figure11.FIGURE11_CONFIGS)


class TestFigure13:
    def test_tiny_run(self):
        result = figure13.run(
            trace_length=3_000,
            workloads=("gups",),
            bad_counts=(1,),
            trials=2,
        )
        point = result.point("gups", 1)
        assert len(point.samples) == 2
        assert 0.99 < point.mean < 1.05
        assert figure13.format_figure(result)

    def test_point_lookup_missing(self):
        result = figure13.run(
            trace_length=3_000, workloads=("gups",), bad_counts=(1,), trials=1
        )
        with pytest.raises(KeyError):
            result.point("gups", 99)

    def test_ci_of_single_sample_is_zero(self):
        result = figure13.run(
            trace_length=3_000, workloads=("gups",), bad_counts=(1,), trials=1
        )
        assert result.point("gups", 1).ci95 == 0.0


class TestBreakdown:
    def test_tiny_run(self):
        result = breakdown.run(trace_length=TINY, workloads=("gups",))
        row = result.rows[0]
        assert row.workload == "gups"
        assert row.dd_l2_miss_reduction > 0.9
        assert breakdown.format_breakdown(result)


class TestShadow:
    def test_tiny_run(self):
        result = shadow.run(trace_length=TINY, workloads=("memcached", "gups"))
        by_name = {r.workload: r for r in result.rows}
        assert by_name["memcached"].shadow_category == 1
        assert by_name["gups"].shadow_category == 2
        assert shadow.format_comparison(result)


class TestEnergy:
    def test_tiny_run(self):
        result = energy.run(trace_length=TINY, workloads=("gups",))
        row = result.rows[0]
        assert row.dd_dynamic.total < row.base_dynamic.total
        assert energy.format_energy(result)


class TestTable4:
    def test_tiny_run(self):
        result = table4_models.run(trace_length=TINY, workloads=("gups",))
        assert len(result.comparisons) == 4
        assert table4_models.format_comparison(result)
        dd = next(c for c in result.comparisons if c.design == "Dual Direct")
        assert dd.predicted_cycles == pytest.approx(0.0, abs=1.0)
