"""CLI contracts: ``experiments profile`` and ``stats --diff`` exit codes."""

import json

import pytest

from repro.experiments import profiling, stats
from repro.obs.manifest import build_manifest, write_manifest


class TestProfileCommand:
    def test_smoke_run_writes_artifacts(self, tmp_path, capsys):
        folded_path = tmp_path / "walks.folded"
        html_path = tmp_path / "report" / "walks.html"
        rc = profiling.main(
            [
                "--smoke",
                "--config",
                "4K+4K",
                "--folded",
                str(folded_path),
                "--html",
                str(html_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert "conservation:" in out and "(exact)" in out
        for line in folded_path.read_text().splitlines():
            path, cycles = line.rsplit(" ", 1)
            assert path.startswith("walk")
            assert int(cycles) >= 1
        html_text = html_path.read_text()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "</html>" in html_text

    def test_json_output_is_the_snapshot(self, capsys):
        rc = profiling.main(["--smoke", "--json"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["walks"] > 0
        assert snapshot["total_cycles_fp"] == sum(
            axis["cycles_fp"] for axis in snapshot["axes"].values()
        )

    def test_rejects_unknown_config(self, capsys):
        with pytest.raises(SystemExit):
            profiling.main(["--config", "no-such-config"])

    def test_dispatched_from_main_entry(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["profile", "--smoke"]) == 0
        assert "cycle attribution" in capsys.readouterr().out


class TestStatsDiffExitCode:
    def _manifest(self, tmp_path, filename, walks):
        manifest = build_manifest("sweep", [], jobs=1)
        manifest["totals"]["walks"] = walks
        path = tmp_path / f"{filename}.json"
        write_manifest(manifest, path)
        return path

    def test_equivalent_manifests_exit_zero(self, tmp_path, capsys):
        a = self._manifest(tmp_path, "a", walks=10)
        b = self._manifest(tmp_path, "b", walks=10)
        assert stats.main([str(a), "--diff", str(b)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_differing_manifests_exit_nonzero(self, tmp_path, capsys):
        a = self._manifest(tmp_path, "a", walks=10)
        b = self._manifest(tmp_path, "b", walks=11)
        assert stats.main([str(a), "--diff", str(b)]) == 1
        assert "differ beyond wall-clock noise" in capsys.readouterr().out
