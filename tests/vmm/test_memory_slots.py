"""Tests for KVM memory slots (Figure 10)."""

import pytest

from repro.core.address import GIB, MIB
from repro.core.address import AddressRange
from repro.mem.physical_layout import IO_GAP_END, IO_GAP_START, PhysicalLayout
from repro.vmm.memory_slots import MemorySlots


class TestStandardLayout:
    def test_two_slots_for_big_vm(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        assert len(slots.slots) == 2
        assert slots.low_slot.gpa_range == AddressRange(0, IO_GAP_START)
        assert slots.high_slot.gpa_range.start == IO_GAP_END
        assert slots.total_bytes == 8 * GIB

    def test_single_slot_for_small_vm(self):
        slots = MemorySlots(PhysicalLayout(1 * GIB))
        assert len(slots.slots) == 1
        assert slots.total_bytes == 1 * GIB

    def test_slot_for_lookup(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        assert slots.slot_for(1 * GIB) is slots.low_slot
        assert slots.slot_for(5 * GIB) is slots.high_slot
        assert slots.slot_for(int(3.5 * GIB)) is None  # the I/O gap
        assert slots.slot_for(100 * GIB) is None

    def test_describe(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        assert "slot 0" in slots.low_slot.describe()


class TestReserve:
    def test_reserve_extends_high_slot(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB), reserve_bytes=1 * GIB)
        assert slots.total_bytes == 9 * GIB
        assert slots.reserve_remaining == 1 * GIB

    def test_release_advances_through_reserve(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB), reserve_bytes=512 * MIB)
        first = slots.release_reserve(128 * MIB)
        second = slots.release_reserve(128 * MIB)
        assert second.start == first.end
        assert slots.reserve_remaining == 256 * MIB

    def test_release_beyond_reserve_rejected(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB), reserve_bytes=64 * MIB)
        with pytest.raises(ValueError, match="reserve"):
            slots.release_reserve(128 * MIB)

    def test_small_vm_reserve_creates_high_slot(self):
        slots = MemorySlots(PhysicalLayout(1 * GIB), reserve_bytes=256 * MIB)
        assert len(slots.slots) == 2
        assert slots.high_slot.gpa_range.start == IO_GAP_END


class TestSlotSurgery:
    def test_shrink_low_slot(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        removed = AddressRange(256 * MIB, IO_GAP_START)
        slots.shrink_low_slot(removed)
        assert slots.low_slot.gpa_range == AddressRange(0, 256 * MIB)

    def test_shrink_must_be_from_tail(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        with pytest.raises(ValueError, match="tail"):
            slots.shrink_low_slot(AddressRange(0, 1 * GIB))

    def test_extend_high_slot(self):
        slots = MemorySlots(PhysicalLayout(8 * GIB))
        end_before = slots.high_slot.gpa_range.end
        added = slots.extend_high_slot(1 * GIB)
        assert added.start == end_before
        assert slots.high_slot.gpa_range.end == end_before + 1 * GIB
