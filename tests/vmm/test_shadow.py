"""Tests for shadow paging (Section II.A / IX.D)."""

import itertools

from repro.core.address import BASE_PAGE_SIZE, MIB, PageSize
from repro.core.costs import DEFAULT_COSTS
from repro.mem.page_table import PageTable
from repro.vmm.shadow import ShadowPageTable, shadow_slowdown_fraction


def make_tables():
    guest_frames = itertools.count(0x100)
    shadow_frames = itertools.count(0x9000)
    guest = PageTable(lambda: next(guest_frames))
    shadow_alloc = lambda: next(shadow_frames)  # noqa: E731
    return guest, shadow_alloc


def identity_plus(offset):
    return lambda gpa: gpa + offset


class TestShadowSync:
    def test_sync_composes_translations(self):
        guest, shadow_alloc = make_tables()
        guest.map(0x1000, 0x20_0000)
        shadow = ShadowPageTable(guest, identity_plus(0x1_0000_0000), shadow_alloc)
        shadow.sync(0x1000)
        # Shadow translates gVA directly to hPA.
        assert shadow.table.translate(0x1234) == 0x1_0020_0234
        assert shadow.stats.vm_exits == 1

    def test_sync_2m_guest_page_shadows_at_4k(self):
        guest, shadow_alloc = make_tables()
        guest.map(2 * MIB, 8 * MIB, PageSize.SIZE_2M)
        shadow = ShadowPageTable(guest, identity_plus(0), shadow_alloc)
        va = 2 * MIB + 5 * BASE_PAGE_SIZE + 7
        shadow.sync(va)
        walked = shadow.table.walk(va)
        assert walked.page_size is PageSize.SIZE_4K
        assert shadow.table.translate(va) == 8 * MIB + 5 * BASE_PAGE_SIZE + 7

    def test_observe_guest_updates_charges_exits(self):
        guest, shadow_alloc = make_tables()
        shadow = ShadowPageTable(guest, identity_plus(0), shadow_alloc)
        guest.map(0x1000, 0x5000)  # several PTE writes
        updates = shadow.observe_guest_updates()
        assert updates == 4  # 3 pointers + 1 leaf
        assert shadow.stats.vm_exits == 4
        # Nothing new: no further exits.
        assert shadow.observe_guest_updates() == 0
        assert shadow.stats.vm_exits == 4

    def test_invalidate_clears_shadow(self):
        guest, shadow_alloc = make_tables()
        guest.map(0x1000, 0x5000)
        shadow = ShadowPageTable(guest, identity_plus(0), shadow_alloc)
        shadow.sync(0x1000)
        shadow.invalidate()
        assert shadow.table.leaf_count() == 0
        assert shadow.stats.full_rebuilds == 1

    def test_resync_after_guest_remap(self):
        guest, shadow_alloc = make_tables()
        guest.map(0x1000, 0x5000)
        shadow = ShadowPageTable(guest, identity_plus(0), shadow_alloc)
        shadow.sync(0x1000)
        guest.unmap(0x1000)
        guest.map(0x1000, 0x9000)
        shadow.sync(0x1000)
        assert shadow.table.translate(0x1000) == 0x9000

    def test_exit_cycles(self):
        guest, shadow_alloc = make_tables()
        shadow = ShadowPageTable(guest, identity_plus(0), shadow_alloc)
        guest.map(0x1000, 0x5000)
        shadow.observe_guest_updates()
        assert shadow.stats.exit_cycles(DEFAULT_COSTS) == 4 * DEFAULT_COSTS.vm_exit_cycles


class TestSlowdownModel:
    def test_zero_updates_zero_slowdown(self):
        assert shadow_slowdown_fraction(0.0, 10.0, DEFAULT_COSTS) == 0.0

    def test_slowdown_scales_linearly(self):
        a = shadow_slowdown_fraction(100.0, 10.0, DEFAULT_COSTS)
        b = shadow_slowdown_fraction(200.0, 10.0, DEFAULT_COSTS)
        assert abs(b - 2 * a) < 1e-12

    def test_paper_category_boundary(self):
        # memcached-like update rates cross the 5% category boundary;
        # graph500-like rates stay below it.
        from repro.workloads.registry import create_workload

        memcached = create_workload("memcached").spec
        graph500 = create_workload("graph500").spec
        high = shadow_slowdown_fraction(
            memcached.pt_updates_per_mref, memcached.ideal_cycles_per_ref, DEFAULT_COSTS
        )
        low = shadow_slowdown_fraction(
            graph500.pt_updates_per_mref, graph500.ideal_cycles_per_ref, DEFAULT_COSTS
        )
        assert high > 0.05
        assert low < 0.05
