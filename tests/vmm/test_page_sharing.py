"""Tests for content-based page sharing (Section IX.E)."""

from repro.vmm.page_sharing import (
    ContentProfile,
    ksm_scan,
    sharing_study,
)


class TestContentProfile:
    def test_fingerprint_counts(self):
        profile = ContentProfile(zero_fraction=0.0, os_pages=10)
        prints = profile.fingerprints(100, vm_id=1)
        assert len(prints) == 100
        assert sum(1 for p in prints if p[0] == "os") == 10
        assert sum(1 for p in prints if p[0] == "data") == 90

    def test_zero_pages_share_one_fingerprint(self):
        profile = ContentProfile(zero_fraction=1.0, os_pages=0)
        prints = profile.fingerprints(50, vm_id=1)
        assert len(set(prints)) == 1

    def test_data_pages_unique_across_vms(self):
        profile = ContentProfile(zero_fraction=0.0, os_pages=0)
        a = set(profile.fingerprints(100, vm_id=1))
        b = set(profile.fingerprints(100, vm_id=2))
        assert not a & b

    def test_os_pages_identical_across_vms(self):
        profile = ContentProfile(zero_fraction=0.0, os_pages=100)
        a = profile.fingerprints(100, vm_id=1)
        b = profile.fingerprints(100, vm_id=2)
        assert a == b  # all OS pages, same image

    def test_deterministic_per_seed(self):
        profile = ContentProfile(zero_fraction=0.5, os_pages=5)
        assert profile.fingerprints(100, 1, seed=3) == profile.fingerprints(100, 1, seed=3)


class TestKsmScan:
    def test_disjoint_vms_share_nothing(self):
        profile = ContentProfile(zero_fraction=0.0, os_pages=0)
        result = ksm_scan(
            [profile.fingerprints(100, 1), profile.fingerprints(100, 2)]
        )
        assert result.pages_saved == 0
        assert result.savings_fraction == 0.0

    def test_identical_vms_share_everything(self):
        profile = ContentProfile(zero_fraction=0.0, os_pages=50)
        prints = profile.fingerprints(50, 1)
        result = ksm_scan([prints, list(prints)])
        assert result.pages_saved == 50
        assert result.savings_fraction == 0.5

    def test_empty_scan(self):
        result = ksm_scan([])
        assert result.total_pages == 0
        assert result.savings_fraction == 0.0


class TestSharingStudy:
    def test_big_memory_savings_stay_small(self):
        # The paper's bound: <= ~3% for big-memory workload pairs.
        profile = ContentProfile(zero_fraction=0.02, os_pages=2000)
        result = sharing_study(profile, profile, vm_pages=100_000)
        assert result.savings_fraction < 0.05

    def test_savings_scale_with_os_footprint(self):
        small_os = ContentProfile(zero_fraction=0.0, os_pages=100)
        big_os = ContentProfile(zero_fraction=0.0, os_pages=10_000)
        small = sharing_study(small_os, small_os, vm_pages=50_000)
        big = sharing_study(big_os, big_os, vm_pages=50_000)
        assert big.savings_fraction > small.savings_fraction
