"""Tests for Table II's memory-management restrictions, operationalized.

The matrix rows "page sharing / ballooning / guest swapping / VMM
swapping" are not just documentation: the capability checks on the VM
and guest OS enforce them, keyed off the live segment state.
"""

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB
from repro.guest.guest_os import GuestOS, GuestOSConfig
from repro.mem.physical_layout import PhysicalLayout
from repro.vmm.hypervisor import Hypervisor


def vm_with_segment():
    hypervisor = Hypervisor(host_memory_bytes=8 * GIB)
    vm = hypervisor.create_vm("a", memory_bytes=5 * GIB)
    vm.create_vmm_segment()
    return vm


class TestVmmSideRestrictions:
    def test_segment_covered_pages_not_shareable(self):
        vm = vm_with_segment()
        covered_gppn = vm.vmm_segment.base // BASE_PAGE_SIZE + 10
        uncovered_gppn = 16  # below-gap kernel memory, paged
        assert not vm.can_share_page(covered_gppn)
        assert vm.can_share_page(uncovered_gppn)

    def test_everything_shareable_without_segment(self):
        hypervisor = Hypervisor(host_memory_bytes=4 * GIB)
        vm = hypervisor.create_vm("a", memory_bytes=2 * GIB)
        for gppn in (0, 1000, 100_000):
            assert vm.can_share_page(gppn)
            assert vm.can_vmm_swap_page(gppn)
            assert vm.can_balloon_page(gppn)

    def test_escaped_pages_regain_shareability(self):
        vm = vm_with_segment()
        gppn = vm.vmm_segment.base // BASE_PAGE_SIZE + 99
        assert not vm.can_share_page(gppn)
        vm.escape_filter.insert(gppn)
        assert vm.can_share_page(gppn)

    def test_swap_and_balloon_track_sharing(self):
        vm = vm_with_segment()
        covered = vm.vmm_segment.base // BASE_PAGE_SIZE + 5
        assert not vm.can_vmm_swap_page(covered)
        assert not vm.can_balloon_page(covered)


class TestGuestSideRestrictions:
    def _guest_with_segment(self, emulate=False):
        guest = GuestOS(
            PhysicalLayout(2 * GIB), GuestOSConfig(emulate_segments=emulate)
        )
        process = guest.spawn()
        process.mmap(128 * MIB, is_primary_region=True)
        guest.create_guest_segment(process)
        return guest, process

    def test_segment_covered_addresses_not_swappable(self):
        guest, process = self._guest_with_segment()
        inside = process.primary_region.range.start + 4096
        outside = process.mmap(4 * MIB).range.start
        assert not guest.can_swap_out(process, inside)
        assert guest.can_swap_out(process, outside)

    def test_emulation_mode_keeps_swapping(self):
        # Section VI.B's computed PTEs are real PTEs: the OS can still
        # invalidate them, so nothing is restricted.
        guest, process = self._guest_with_segment(emulate=True)
        inside = process.primary_region.range.start + 4096
        assert guest.can_swap_out(process, inside)

    def test_no_segment_no_restriction(self):
        guest = GuestOS(PhysicalLayout(1 * GIB))
        process = guest.spawn()
        vma = process.mmap(16 * MIB)
        assert guest.can_swap_out(process, vma.range.start)
