"""Tests for the Table III mode policy."""

import pytest

from repro.core.modes import TranslationMode
from repro.vmm.policy import (
    FragmentationState,
    ModePlan,
    WorkloadClass,
    plan_modes,
)


class TestPlanModes:
    """The six Table III rows plus the unfragmented defaults."""

    def test_big_memory_host_fragmented(self):
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY, FragmentationState(host_fragmented=True)
        )
        assert plan.initial_mode is TranslationMode.GUEST_DIRECT
        assert plan.final_mode is TranslationMode.DUAL_DIRECT
        assert plan.uses_compaction
        assert not plan.uses_self_ballooning
        assert plan.upgrades

    def test_big_memory_guest_fragmented(self):
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY, FragmentationState(guest_fragmented=True)
        )
        assert plan.initial_mode is TranslationMode.DUAL_DIRECT
        assert plan.final_mode is TranslationMode.DUAL_DIRECT
        assert plan.uses_self_ballooning
        assert not plan.uses_compaction
        assert not plan.upgrades

    def test_big_memory_both_fragmented(self):
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY,
            FragmentationState(host_fragmented=True, guest_fragmented=True),
        )
        assert plan.initial_mode is TranslationMode.GUEST_DIRECT
        assert plan.final_mode is TranslationMode.DUAL_DIRECT
        assert plan.uses_self_ballooning
        assert plan.uses_compaction

    def test_compute_host_fragmented(self):
        plan = plan_modes(
            WorkloadClass.COMPUTE, FragmentationState(host_fragmented=True)
        )
        assert plan.initial_mode is TranslationMode.BASE_VIRTUALIZED
        assert plan.final_mode is TranslationMode.VMM_DIRECT
        assert plan.uses_compaction

    def test_compute_guest_fragmented(self):
        # Guest fragmentation does not matter for VMM Direct.
        plan = plan_modes(
            WorkloadClass.COMPUTE, FragmentationState(guest_fragmented=True)
        )
        assert plan.initial_mode is TranslationMode.VMM_DIRECT
        assert not plan.upgrades

    def test_compute_both_fragmented(self):
        plan = plan_modes(
            WorkloadClass.COMPUTE,
            FragmentationState(host_fragmented=True, guest_fragmented=True),
        )
        assert plan.initial_mode is TranslationMode.BASE_VIRTUALIZED
        assert plan.final_mode is TranslationMode.VMM_DIRECT

    def test_unfragmented_defaults(self):
        big = plan_modes(WorkloadClass.BIG_MEMORY, FragmentationState())
        assert big.initial_mode is TranslationMode.DUAL_DIRECT
        compute = plan_modes(WorkloadClass.COMPUTE, FragmentationState())
        assert compute.initial_mode is TranslationMode.VMM_DIRECT

    def test_compute_never_uses_guest_segments(self):
        for state in (
            FragmentationState(),
            FragmentationState(host_fragmented=True),
            FragmentationState(guest_fragmented=True),
            FragmentationState(host_fragmented=True, guest_fragmented=True),
        ):
            plan = plan_modes(WorkloadClass.COMPUTE, state)
            assert not plan.uses_self_ballooning
            for mode in (plan.initial_mode, plan.final_mode):
                assert not mode.uses_guest_segment


class TestModePlan:
    def test_upgrades_property(self):
        plan = ModePlan(
            TranslationMode.GUEST_DIRECT,
            TranslationMode.DUAL_DIRECT,
            uses_self_ballooning=False,
            uses_compaction=True,
        )
        assert plan.upgrades
        stable = ModePlan(
            TranslationMode.DUAL_DIRECT,
            TranslationMode.DUAL_DIRECT,
            uses_self_ballooning=False,
            uses_compaction=False,
        )
        assert not stable.upgrades
