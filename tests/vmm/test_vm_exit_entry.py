"""Tests for VM exit/entry state management across multiple VMs.

Section III.A: on VM-exit/entry, hardware must save/restore BASE_V,
LIMIT_V and OFFSET_V along with other VM state; the escape filter is
part of that context (Section V).  These tests interleave two VMs on
one hypervisor and verify each gets its own segment state back.
"""

from repro.core.address import GIB, MIB
from repro.core.segments import SegmentRegisters
from repro.vmm.hypervisor import Hypervisor


def two_vms():
    hypervisor = Hypervisor(host_memory_bytes=8 * GIB)
    a = hypervisor.create_vm("a", memory_bytes=2 * GIB)
    b = hypervisor.create_vm("b", memory_bytes=1 * GIB)
    return hypervisor, a, b


class TestInterleavedVms:
    def test_segments_are_per_vm(self):
        hypervisor, a, b = two_vms()
        regs_a = a.create_vmm_segment()
        regs_b = b.create_vmm_segment()
        assert regs_a != regs_b
        # The host reservations are disjoint.
        assert not regs_a.physical_range.overlaps(regs_b.physical_range)

    def test_exit_entry_round_trip_under_interleaving(self):
        hypervisor, a, b = two_vms()
        regs_a = a.create_vmm_segment()
        regs_b = b.create_vmm_segment()

        # Schedule a, then b, then a again.
        a.vm_entry()
        a.vm_exit()
        b.vm_entry()
        # While b runs, a's live registers may be clobbered by the
        # world switch; the saved state must restore them.
        a.vmm_segment = SegmentRegisters.disabled()
        b.vm_exit()
        a.vm_entry()
        assert a.vmm_segment == regs_a
        assert b.vmm_segment == regs_b

    def test_escape_filter_travels_with_the_vm(self):
        hypervisor, a, b = two_vms()
        a.create_vmm_segment()
        a.escape_filter.insert(12345)
        a.vm_exit()
        a.escape_filter.clear()  # clobbered while another VM runs
        a.vm_entry()
        assert a.escape_filter.may_contain(12345)

    def test_exit_statistics(self):
        hypervisor, a, b = two_vms()
        for _ in range(3):
            a.vm_exit()
            a.vm_entry()
        assert a.exit_stats.exits == 3
        assert a.exit_stats.entries == 3
        assert b.exit_stats.exits == 0

    def test_entry_without_prior_exit_is_noop(self):
        hypervisor, a, b = two_vms()
        regs = a.create_vmm_segment()
        a.vm_entry()  # no saved state yet
        assert a.vmm_segment == regs

    def test_both_vms_demand_page_from_shared_host(self):
        hypervisor, a, b = two_vms()
        for gppn in range(32):
            a.handle_nested_fault(gppn * 4096)
            b.handle_nested_fault(gppn * 4096)
        # Same gPAs, different host frames: VMs are isolated.
        for gppn in range(32):
            ha = a.nested_table.translate(gppn * 4096)
            hb = b.nested_table.translate(gppn * 4096)
            assert ha != hb

    def test_destroying_one_vm_leaves_the_other_intact(self):
        hypervisor, a, b = two_vms()
        for gppn in range(16):
            a.handle_nested_fault(gppn * 4096)
            b.handle_nested_fault(gppn * 4096)
        translations = {
            gppn: b.nested_table.translate(gppn * 4096) for gppn in range(16)
        }
        hypervisor.destroy_vm("a")
        for gppn, hpa in translations.items():
            assert b.nested_table.translate(gppn * 4096) == hpa
