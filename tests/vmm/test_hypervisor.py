"""Tests for the hypervisor: nested paging, VMM segments, escapes."""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange, PageSize
from repro.core.modes import TranslationMode
from repro.mem.badpages import BadPageList
from repro.vmm.hypervisor import Hypervisor, VmmSegmentError


def make_hypervisor(host=8 * GIB, **kwargs) -> Hypervisor:
    return Hypervisor(host_memory_bytes=host, **kwargs)


class TestVmLifecycle:
    def test_create_vm(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        assert vm.name == "a"
        assert vm.mode is TranslationMode.BASE_VIRTUALIZED
        assert "a" in hv.vms

    def test_duplicate_name_rejected(self):
        hv = make_hypervisor()
        hv.create_vm("a", memory_bytes=1 * GIB)
        with pytest.raises(ValueError, match="already exists"):
            hv.create_vm("a", memory_bytes=1 * GIB)

    def test_destroy_vm_returns_memory(self):
        hv = make_hypervisor()
        free_before = hv.allocator.free_frames
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        for gppn in range(64):
            vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        hv.destroy_vm("a")
        assert hv.allocator.free_frames == free_before
        assert "a" not in hv.vms


class TestNestedPaging:
    def test_demand_fault_maps_page(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        gpa = 17 * MIB
        vm.handle_nested_fault(gpa)
        hpa = vm.nested_table.translate(gpa)
        assert hpa % BASE_PAGE_SIZE == gpa % BASE_PAGE_SIZE

    def test_nested_page_size_preference(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB, nested_page_size=PageSize.SIZE_2M)
        vm.handle_nested_fault(100 * MIB)
        assert vm.nested_table.walk(100 * MIB).page_size is PageSize.SIZE_2M

    def test_large_page_never_straddles_slot_boundary(self):
        hv = make_hypervisor(host=12 * GIB)
        # 2.5 GB guest: the low slot ends at 2.5 GB, so a 1G page at
        # [2G, 3G) would spill past the slot (into the I/O gap region).
        vm = hv.create_vm(
            "a", memory_bytes=int(2.5 * GIB), nested_page_size=PageSize.SIZE_1G
        )
        gpa = int(2.2 * GIB)
        vm.handle_nested_fault(gpa)
        assert vm.nested_table.walk(gpa).page_size is not PageSize.SIZE_1G
        # An aligned page fully inside the slot still maps at 1G.
        vm.handle_nested_fault(1 * GIB + 5)
        assert vm.nested_table.walk(1 * GIB).page_size is PageSize.SIZE_1G

    def test_fault_outside_slots_rejected(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        with pytest.raises(MemoryError, match="outside all memory slots"):
            vm.handle_nested_fault(64 * GIB)


class TestVmmSegment:
    def test_create_covers_high_slot(self):
        hv = make_hypervisor(host=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        regs = vm.create_vmm_segment()
        assert regs.enabled
        assert regs.virtual_range == vm.slots.high_slot.gpa_range

    def test_segment_translation_is_linear(self):
        hv = make_hypervisor(host=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        regs = vm.create_vmm_segment()
        gpa = regs.base + 12345
        assert regs.translate(gpa) == regs.base + regs.offset + 12345

    def test_fragmented_host_blocks_segment(self):
        import random

        hv = make_hypervisor(host=8 * GIB)
        hv.allocator.fragment(0.5, rng=random.Random(0), hold_orders=(0, 1))
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        with pytest.raises(VmmSegmentError):
            vm.create_vmm_segment()

    def test_drop_segment_frees_host_memory(self):
        hv = make_hypervisor(host=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        free_before = hv.allocator.free_frames
        vm.create_vmm_segment()
        vm.drop_vmm_segment()
        assert hv.allocator.free_frames == free_before
        assert not vm.vmm_segment.enabled

    def test_set_mode_requires_segment(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        with pytest.raises(VmmSegmentError):
            vm.set_mode(TranslationMode.VMM_DIRECT)
        vm.create_vmm_segment()
        vm.set_mode(TranslationMode.VMM_DIRECT)
        assert vm.mode is TranslationMode.VMM_DIRECT

    def test_set_mode_rejects_native(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        with pytest.raises(ValueError):
            vm.set_mode(TranslationMode.NATIVE)


class TestBadPagesAndEscapes:
    def _vm_with_bad_page(self):
        hv = make_hypervisor(host=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        # Plant a bad frame inside the region the segment will occupy
        # (deterministic: the lowest free run).
        probe = hv.allocator.reserve_contiguous(
            vm.slots.high_slot.gpa_range.size // BASE_PAGE_SIZE
        )
        hv.allocator.free_contiguous(
            probe, vm.slots.high_slot.gpa_range.size // BASE_PAGE_SIZE
        )
        # Several bad frames so the 256-bit filter exhibits false
        # positives within the segment's page range.
        bad_frames = [probe + 1000 + 64 * i for i in range(8)]
        for frame in bad_frames:
            hv.bad_pages.mark_bad(frame)
        regs = vm.create_vmm_segment()
        return hv, vm, regs, bad_frames[0]

    def test_bad_frame_is_escaped(self):
        hv, vm, regs, bad_frame = self._vm_with_bad_page()
        gppn = bad_frame - regs.offset // BASE_PAGE_SIZE
        assert vm.escape_filter.may_contain(gppn)
        assert gppn in vm.escape_filter.inserted_pages

    def test_escaped_page_remapped_to_healthy_frame(self):
        hv, vm, regs, bad_frame = self._vm_with_bad_page()
        gppn = bad_frame - regs.offset // BASE_PAGE_SIZE
        hpa = vm.nested_table.translate(gppn * BASE_PAGE_SIZE)
        assert hpa // BASE_PAGE_SIZE != bad_frame
        assert hpa // BASE_PAGE_SIZE not in hv.bad_pages

    def test_false_positive_gets_computed_mapping(self):
        hv, vm, regs, bad_frame = self._vm_with_bad_page()
        offset_frames = regs.offset // BASE_PAGE_SIZE
        # Find a false positive within the segment's gPA range.
        fp_gppn = next(
            gppn
            for gppn in regs.virtual_range.pages()
            if vm.escape_filter.is_false_positive(gppn)
        )
        vm.handle_nested_fault(fp_gppn * BASE_PAGE_SIZE)
        # The mapping reproduces the segment's computed translation.
        hpa = vm.nested_table.translate(fp_gppn * BASE_PAGE_SIZE)
        assert hpa // BASE_PAGE_SIZE == fp_gppn + offset_frames

    def test_demand_allocation_avoids_bad_frames(self):
        hv = make_hypervisor(host=1 * GIB)
        for frame in range(0, 2048, 64):
            hv.bad_pages.mark_bad(frame)
        vm = hv.create_vm("a", memory_bytes=256 * MIB)
        for gppn in range(128):
            vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        for gppn in range(128):
            hpa = vm.nested_table.translate(gppn * BASE_PAGE_SIZE)
            assert hpa // BASE_PAGE_SIZE not in hv.bad_pages


class TestVmExitEntry:
    def test_segment_state_save_restore(self):
        hv = make_hypervisor()
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        vm.create_vmm_segment()
        saved_regs = vm.vmm_segment
        vm.vm_exit()
        # Host runs; clobber the live registers (another VM's state).
        from repro.core.segments import SegmentRegisters

        vm.vmm_segment = SegmentRegisters.disabled()
        vm.vm_entry()
        assert vm.vmm_segment == saved_regs
        assert vm.exit_stats.exits == 1
        assert vm.exit_stats.entries == 1
