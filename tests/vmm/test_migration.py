"""Tests for dirty-page tracking and pre-copy migration."""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.migration import (
    DirtyLog,
    MigrationUnsupportedError,
    precopy_migrate,
)


def paged_vm(num_pages=64):
    hypervisor = Hypervisor(host_memory_bytes=4 * GIB)
    vm = hypervisor.create_vm("a", memory_bytes=1 * GIB)
    for gppn in range(num_pages):
        vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
    return vm


class TestDirtyLog:
    def test_start_write_protects(self):
        vm = paged_vm()
        log = DirtyLog(vm)
        log.start()
        assert log.armed
        for _, entry in vm.nested_table.leaves():
            assert not entry.writable

    def test_writes_are_logged(self):
        vm = paged_vm()
        log = DirtyLog(vm)
        log.start()
        log.record_write(5 * BASE_PAGE_SIZE)
        log.record_write(9 * BASE_PAGE_SIZE + 123)
        assert log.collect() == {5, 9}

    def test_collect_rearms(self):
        vm = paged_vm()
        log = DirtyLog(vm)
        log.start()
        log.record_write(5 * BASE_PAGE_SIZE)
        log.collect()
        # Page 5 is protected again; a new write is logged afresh.
        log.record_write(5 * BASE_PAGE_SIZE)
        assert log.collect() == {5}

    def test_stop_restores_permissions(self):
        vm = paged_vm()
        log = DirtyLog(vm)
        log.start()
        log.stop()
        for _, entry in vm.nested_table.leaves():
            assert entry.writable
        log.record_write(3 * BASE_PAGE_SIZE)
        assert log.collect() == set()

    def test_vmm_segment_precludes_tracking(self):
        # The Table II restriction, executable: Dual/VMM Direct memory
        # has no nested entries to write-protect.
        hypervisor = Hypervisor(host_memory_bytes=8 * GIB)
        vm = hypervisor.create_vm("a", memory_bytes=5 * GIB)
        vm.create_vmm_segment()
        log = DirtyLog(vm)
        with pytest.raises(MigrationUnsupportedError, match="VMM segment"):
            log.start()

    def test_guest_direct_vm_supports_tracking(self):
        # Guest Direct keeps nested paging, so migration works -- the
        # paper's reason for the mode's existence.
        vm = paged_vm()
        log = DirtyLog(vm)
        log.start()  # no exception
        log.stop()


class TestPreCopy:
    def test_quiet_guest_converges_in_one_round(self):
        vm = paged_vm(num_pages=128)
        rounds = precopy_migrate(vm, write_rounds=[[]])
        assert len(rounds) == 1
        assert rounds[0].pages_sent == 128
        assert rounds[0].pages_dirtied_during == 0

    def test_dirtying_guest_needs_more_rounds(self):
        vm = paged_vm(num_pages=256)
        writes = [
            [gppn * BASE_PAGE_SIZE for gppn in range(200)],
            [gppn * BASE_PAGE_SIZE for gppn in range(100)],
            [gppn * BASE_PAGE_SIZE for gppn in range(10)],
        ]
        rounds = precopy_migrate(vm, write_rounds=writes)
        assert len(rounds) == 3
        assert rounds[1].pages_sent == 200  # resends what round 0 dirtied
        assert rounds[2].pages_dirtied_during == 10

    def test_never_converging_guest_hits_round_cap(self):
        vm = paged_vm(num_pages=128)
        writes = [[gppn * BASE_PAGE_SIZE for gppn in range(128)]] * 50
        rounds = precopy_migrate(vm, write_rounds=writes, max_rounds=5)
        assert len(rounds) == 5

    def test_permissions_restored_after_migration(self):
        vm = paged_vm()
        precopy_migrate(vm, write_rounds=[[]])
        for _, entry in vm.nested_table.leaves():
            assert entry.writable
