"""Tests for the graceful-degradation ladder in the hypervisor.

Covers the satellite edge cases: hard faults at the segment base/limit
with the escape filter full (shrink), mid-segment with the filter full
(full fall-back), every frame bad, and the non-segment reactions
(quarantine, paged-frame migration, lazy remap of degraded ranges).
"""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB
from repro.core.modes import TranslationMode
from repro.faults.degradation import DegradationAction
from repro.vmm.hypervisor import FALLBACK_MODES, Hypervisor
from repro.vmm.policy import DegradationPolicy, choose_degradation


def make_vm(host=8 * GIB, guest=5 * GIB, mode=TranslationMode.VMM_DIRECT):
    hv = Hypervisor(host_memory_bytes=host)
    vm = hv.create_vm("a", memory_bytes=guest)
    vm.create_vmm_segment()
    vm.set_mode(mode)
    return hv, vm


def segment_frames(vm):
    seg = vm.vmm_segment
    start = (seg.base + seg.offset) // BASE_PAGE_SIZE
    return start, (seg.base + seg.offset + seg.size) // BASE_PAGE_SIZE


def fill_filter(vm):
    vm.escape_filter.capacity = len(vm.escape_filter)
    assert vm.escape_filter.is_full


class TestPolicy:
    def test_escape_preferred_while_filter_has_room(self):
        _, vm = make_vm()
        start, _ = segment_frames(vm)
        gppn = start - vm.vmm_segment.offset // BASE_PAGE_SIZE
        action = choose_degradation(vm.vmm_segment, vm.escape_filter, gppn)
        assert action is DegradationAction.ESCAPE

    def test_edge_fraction_validated(self):
        with pytest.raises(ValueError):
            DegradationPolicy(edge_fraction=0.6)


class TestSegmentFaults:
    def test_fault_with_filter_room_escapes(self):
        hv, vm = make_vm()
        start, _ = segment_frames(vm)
        event = hv.inject_hard_fault(start + 100)
        assert event.action is DegradationAction.ESCAPE
        assert not event.is_mode_transition
        gppn = start + 100 - vm.vmm_segment.offset // BASE_PAGE_SIZE
        assert vm.escape_filter.may_contain(gppn)
        # The escaped page got a healthy conventional mapping.
        hpa = vm.nested_table.translate(gppn * BASE_PAGE_SIZE)
        assert hpa // BASE_PAGE_SIZE != start + 100

    def test_fault_at_segment_base_shrinks(self):
        hv, vm = make_vm()
        fill_filter(vm)
        start, end = segment_frames(vm)
        old_base = vm.vmm_segment.base
        event = hv.inject_hard_fault(start)  # the very first frame
        assert event.action is DegradationAction.SHRINK
        assert vm.vmm_segment.enabled
        assert vm.vmm_segment.base == old_base + BASE_PAGE_SIZE
        assert vm.mode is TranslationMode.VMM_DIRECT  # mode survives

    def test_fault_at_segment_limit_shrinks(self):
        hv, vm = make_vm()
        fill_filter(vm)
        start, end = segment_frames(vm)
        old_limit = vm.vmm_segment.limit
        event = hv.inject_hard_fault(end - 1)  # the very last frame
        assert event.action is DegradationAction.SHRINK
        assert vm.vmm_segment.limit == old_limit - BASE_PAGE_SIZE

    def test_mid_segment_fault_with_full_filter_falls_back(self):
        hv, vm = make_vm(mode=TranslationMode.VMM_DIRECT)
        fill_filter(vm)
        start, end = segment_frames(vm)
        event = hv.inject_hard_fault((start + end) // 2)
        assert event.action is DegradationAction.FALLBACK
        assert event.is_mode_transition
        assert vm.mode is TranslationMode.BASE_VIRTUALIZED
        assert not vm.vmm_segment.enabled

    def test_dual_direct_falls_back_to_guest_direct(self):
        # DD's fallback keeps the guest segment and only drops the VMM one.
        assert (
            FALLBACK_MODES[TranslationMode.DUAL_DIRECT]
            is TranslationMode.GUEST_DIRECT
        )

    def test_trimmed_range_keeps_identical_translation(self):
        hv, vm = make_vm()
        fill_filter(vm)
        start, end = segment_frames(vm)
        offset_frames = vm.vmm_segment.offset // BASE_PAGE_SIZE
        probe_gppn = start + 2 - offset_frames  # healthy page near base
        before = vm.vmm_segment.translate_unchecked(
            probe_gppn * BASE_PAGE_SIZE
        )
        hv.inject_hard_fault(start)  # shrink trims the base edge...
        # ...but wherever the page ended up, its host address is unchanged.
        if vm.vmm_segment.covers(probe_gppn * BASE_PAGE_SIZE):
            after = vm.vmm_segment.translate_unchecked(
                probe_gppn * BASE_PAGE_SIZE
            )
        else:
            vm.handle_nested_fault(probe_gppn * BASE_PAGE_SIZE)
            after = vm.nested_table.translate(probe_gppn * BASE_PAGE_SIZE)
        assert after == before

    def test_every_frame_bad_degrades_without_crashing(self):
        hv, vm = make_vm()
        vm.escape_filter.capacity = 2  # escape twice, then harsher rungs
        start, end = segment_frames(vm)
        for frame in range(start, min(start + 64, end)):
            hv.inject_hard_fault(frame)
        log = hv.degradation_log
        assert len(log) >= 64
        # The ladder ran through escapes into shrinks/fallback/remaps.
        assert log.count(DegradationAction.ESCAPE) == 2
        assert log.count(DegradationAction.SHRINK) >= 1

    def test_shrink_rejects_uncovered_page(self):
        _, vm = make_vm()
        with pytest.raises(ValueError):
            vm.shrink_vmm_segment_past(1)  # gPA page below the segment


class TestNonSegmentFaults:
    def test_free_frame_is_quarantined(self):
        hv, vm = make_vm()
        free_frame = hv.allocator.alloc_block(0)
        hv.allocator.free_block(free_frame)
        event = hv.inject_hard_fault(free_frame)
        assert event.action is DegradationAction.QUARANTINE
        assert event.vm_name == ""  # host-level event, no VM

    def test_paged_frame_is_migrated(self):
        hv = Hypervisor(host_memory_bytes=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        gpa = 64 * BASE_PAGE_SIZE
        vm.handle_nested_fault(gpa)
        old_frame = vm.nested_table.translate(gpa) // BASE_PAGE_SIZE
        event = hv.inject_hard_fault(old_frame)
        assert event.action is DegradationAction.REMAP
        new_frame = vm.nested_table.translate(gpa) // BASE_PAGE_SIZE
        assert new_frame != old_frame
        assert old_frame in hv.bad_pages

    def test_page_table_node_fault_is_tolerated(self):
        hv = Hypervisor(host_memory_bytes=8 * GIB)
        vm = hv.create_vm("a", memory_bytes=2 * GIB)
        vm.handle_nested_fault(0)
        node = next(iter(vm.nested_table.node_frames))
        event = hv.inject_hard_fault(node)
        assert event.action is DegradationAction.TOLERATE

    def test_degraded_range_lazy_remap(self):
        hv, vm = make_vm()
        vm.degrade_to_paging()  # whole segment becomes a degraded range
        start, _end = vm.reserved_frame_range
        frame = start + 10
        event = hv.inject_hard_fault(frame)
        assert event.action is DegradationAction.REMAP
        # First touch of the degraded page lands on a healthy frame.
        gppn = frame - vm._degraded_ranges[0][2]
        vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        mapped = vm.nested_table.translate(gppn * BASE_PAGE_SIZE)
        assert mapped // BASE_PAGE_SIZE != frame


class TestLadderMetrics:
    """E2E: one fault sequence walks the full ladder and every rung is
    mirrored into the attached :class:`MetricsRegistry` -- the emitted
    counters must match the degradation log exactly."""

    def _ladder_run(self):
        from repro.obs.metrics import MetricsRegistry

        hv, vm = make_vm(mode=TranslationMode.VMM_DIRECT)
        hv.degradation_log.metrics = MetricsRegistry()
        start, end = segment_frames(vm)

        hv.inject_hard_fault(start + 100)      # filter has room -> escape
        fill_filter(vm)
        hv.inject_hard_fault(start)            # edge, filter full -> shrink
        hv.inject_hard_fault((start + end) // 2)  # mid, full -> fallback
        return hv, vm

    def test_ladder_actions_in_order(self):
        hv, vm = self._ladder_run()
        actions = [e.action for e in hv.degradation_log.sorted_events()]
        assert actions == [
            DegradationAction.ESCAPE,
            DegradationAction.SHRINK,
            DegradationAction.FALLBACK,
        ]
        assert vm.mode is TranslationMode.BASE_VIRTUALIZED
        assert not vm.vmm_segment.enabled

    def test_counters_match_log_counts(self):
        hv, _ = self._ladder_run()
        log = hv.degradation_log
        m = log.metrics
        for action in (
            DegradationAction.ESCAPE,
            DegradationAction.SHRINK,
            DegradationAction.FALLBACK,
        ):
            assert m.counter_value(
                f"degradation.events.{action.value}"
            ) == log.count(action), action
        # Only the fallback changed the translation mode.
        assert m.counter_value("degradation.mode_transitions") == len(
            log.mode_transitions
        )

    def test_cycle_cost_histogram_matches_log_totals(self):
        hv, _ = self._ladder_run()
        log = hv.degradation_log
        hist = log.metrics.histogram("degradation.cycle_cost")
        assert hist.count == len(log)
        assert hist.total == pytest.approx(log.total_cycle_cost)
        # Each rung charged a real (positive) reaction cost.
        assert all(e.cycle_cost > 0 for e in log.events)

    def test_events_are_totally_ordered(self):
        hv, _ = self._ladder_run()
        keys = [e.order_key for e in hv.degradation_log.sorted_events()]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys), "order keys must be unique"


class TestBalloonArming:
    def test_negative_count_rejected(self):
        _, vm = make_vm()
        with pytest.raises(ValueError):
            vm.arm_balloon_failures(-1)

    def test_armed_failures_accumulate(self):
        _, vm = make_vm()
        vm.arm_balloon_failures()
        vm.arm_balloon_failures(2)
        assert vm.balloon_failures_armed == 3


class TestTeardownAfterDegradation:
    def test_destroy_vm_returns_memory_after_shrink_and_fallback(self):
        hv = Hypervisor(host_memory_bytes=8 * GIB)
        free_before = hv.allocator.free_frames
        vm = hv.create_vm("a", memory_bytes=5 * GIB)
        vm.create_vmm_segment()
        vm.set_mode(TranslationMode.VMM_DIRECT)
        fill_filter(vm)
        start, end = segment_frames(vm)
        hv.inject_hard_fault(start)              # shrink
        hv.inject_hard_fault((start + end) // 2)  # fallback
        # Touch degraded pages so lazy computed PTEs get installed.
        offset_frames = vm._degraded_ranges[0][2]
        for gppn in range(start - offset_frames, start - offset_frames + 8):
            vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        hv.destroy_vm("a")
        assert hv.allocator.free_frames == free_before
