"""The fabric's acceptance bar: distributed == serial, byte for byte,
even when a worker is SIGKILLed mid-wave.

`tests/sched/test_warm_equivalence.py` proves warm == cold for local
sweeps (and extends to an in-process fabric); this module covers the
deployment-shaped cases: real subprocess workers, a kill -9 mid-lease,
and the HTTP front end serving a completed sweep straight from the
store.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.fabric.coordinator import CoordinatorThread, FabricCoordinator
from repro.fabric.service import FabricHTTPService
from repro.fabric.worker import FabricWorker
from repro.sched import Sweep
from repro.store.store import ResultStore

from tests.fabric._slowcell import execute_slow, slow_ingredients

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_worker_process(port, store_root, extra_env=None):
    """A real `fabric work` subprocess (killable with SIGKILL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "fabric",
            "work",
            "--connect",
            f"127.0.0.1:{port}",
            "--store",
            str(store_root),
            "--max-cells",
            "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _coordinator(store, lease_timeout=5.0):
    return CoordinatorThread(
        FabricCoordinator(
            store=store, lease_timeout=lease_timeout, poll_interval=0.05
        )
    ).start()


def _sweep_in_thread(sweep, tasks):
    box = {}

    def go():
        try:
            box["results"] = sweep.run_tasks(
                tasks,
                execute_slow,
                slow_ingredients,
                label_for=lambda t: f"slow-{t[1]}",
            )
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    runner = threading.Thread(target=go, daemon=True)
    runner.start()
    return runner, box


def _poll_status(thread, predicate, timeout=30):
    async def probe():
        return thread.coordinator.status()

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = thread.call(probe())
        if predicate(status):
            return status
        time.sleep(0.02)
    raise AssertionError("coordinator never reached the expected state")


class TestSubprocessWorkers:
    def test_distributed_equals_local_with_two_worker_processes(
        self, tmp_path
    ):
        tasks = [(0.0, value) for value in range(6)]
        local_store = ResultStore(tmp_path / "local-store")
        local = Sweep("slow", local_store).run_tasks(
            tasks, execute_slow, slow_ingredients
        )

        store = ResultStore(tmp_path / "fabric-store")
        thread = _coordinator(store)
        workers = [
            _spawn_worker_process(thread.port, store.root) for _ in range(2)
        ]
        try:
            sweep = Sweep("slow", store, fabric=f"127.0.0.1:{thread.port}")
            distributed = sweep.run_tasks(
                tasks, execute_slow, slow_ingredients
            )
        finally:
            for worker in workers:
                worker.kill()
                worker.wait(timeout=10)
            thread.stop()
        assert distributed == local == [value * 3 for value in range(6)]
        assert sweep.report.computed == len(tasks)
        assert sweep.fabric_events, "lease lifecycle events must be reported"
        assert store.verify().clean

    def test_sweep_survives_worker_sigkilled_mid_lease(self, tmp_path):
        """kill -9 a worker holding a lease: the disconnect requeues its
        cell, a healthy worker finishes the wave, nothing is lost and
        nothing double-counts."""
        tasks = [(0.8, value) for value in range(4)]
        store = ResultStore(tmp_path / "store")
        thread = _coordinator(store, lease_timeout=3.0)
        doomed = _spawn_worker_process(thread.port, store.root)
        survivor = None
        try:
            sweep = Sweep("slow", store, fabric=f"127.0.0.1:{thread.port}")
            runner, box = _sweep_in_thread(sweep, tasks)
            _poll_status(thread, lambda s: s["jobs"]["leased"] >= 1)
            doomed.send_signal(signal.SIGKILL)
            doomed.wait(timeout=10)
            survivor = FabricWorker(f"127.0.0.1:{thread.port}", store)
            threading.Thread(target=survivor.run, daemon=True).start()
            runner.join(timeout=120)
            assert not runner.is_alive(), "sweep never finished after kill"
            assert "error" not in box, box.get("error")
            assert box["results"] == [value * 3 for value in range(4)]
            # Exactly one journalled completion per cell -- the killed
            # attempt never double-counts.
            assert sweep.report.computed == len(tasks)
            assert sweep.report.hits == 0

            async def probe():
                return thread.coordinator.metrics.snapshot()

            snapshot = thread.call(probe())
            assert snapshot["fabric.leases_expired"]["value"] >= 1
            expiries = [
                event
                for event in sweep.fabric_events
                if event["event"] == "lease-expire"
            ]
            assert expiries, "manifest events must include the lost lease"
        finally:
            if doomed.poll() is None:  # pragma: no cover - defensive
                doomed.kill()
            thread.stop()
        assert store.verify().clean

    def test_warm_rerun_is_all_hits_without_workers(self, tmp_path):
        """Once a fabric sweep populated the store, re-running needs no
        coordinator and no workers at all."""
        tasks = [(0.0, value) for value in range(3)]
        store = ResultStore(tmp_path / "store")
        thread = _coordinator(store)
        worker = _spawn_worker_process(thread.port, store.root)
        try:
            cold = Sweep("slow", store, fabric=f"127.0.0.1:{thread.port}")
            cold_results = cold.run_tasks(
                tasks, execute_slow, slow_ingredients
            )
        finally:
            worker.kill()
            worker.wait(timeout=10)
            thread.stop()
        warm = Sweep("slow", ResultStore(tmp_path / "store"))
        warm_results = warm.run_tasks(tasks, execute_slow, slow_ingredients)
        assert warm_results == cold_results
        assert warm.report.all_hits


class TestHTTPWarmServing:
    def test_every_completed_cell_is_served_by_the_front_end(self, tmp_path):
        """A warm re-run over HTTP: every key the sweep committed comes
        back 200 with the exact stored envelope bytes."""
        tasks = [(0.0, value) for value in range(4)]
        store = ResultStore(tmp_path / "store")
        Sweep("slow", store).run_tasks(tasks, execute_slow, slow_ingredients)
        keys = store.keys()
        assert len(keys) == 4
        service = FabricHTTPService(store).start()
        try:
            for key in keys:
                with urllib.request.urlopen(
                    f"{service.url}/cells/{key}", timeout=10
                ) as response:
                    assert response.status == 200
                    body = response.read()
                assert body == store.object_path(key).read_bytes()
                assert json.loads(body)["key"] == key
        finally:
            service.stop()
