"""Tiny importable executors for fabric subprocess-worker tests.

Subprocess workers unpickle ``(execute, task)`` blobs by reference, so
the executors must live in a module a bare ``python -m
repro.experiments fabric work`` process can import without dragging in
the whole test suite.
"""

import time


def execute_slow(task):
    """Sleep long enough for a test to SIGKILL the worker mid-cell."""
    delay, value = task
    time.sleep(delay)
    return value * 3


def slow_ingredients(task):
    delay, value = task
    return {"kind": "slowcell", "delay": delay, "value": value}
