"""Coordinator correctness: leases, expiry, requeue, bounded retry.

Every test stands up a real coordinator (its own event loop in a
daemon thread), talks to it over real sockets, and runs real workers --
the same code paths a multi-host deployment exercises, just on
loopback.
"""

import hashlib
import socket
import threading
import time

import pytest

from repro.errors import FabricJobError
from repro.fabric.client import FabricClient
from repro.fabric.coordinator import CoordinatorThread, FabricCoordinator
from repro.fabric.protocol import PROTOCOL_VERSION, recv_msg, send_msg
from repro.fabric.worker import FabricWorker
from repro.sched.cells import Cell
from repro.store.store import ResultStore


def _key(label):
    return hashlib.sha256(label.encode()).hexdigest()


def _cell(label, execute, task):
    return Cell(
        key=_key(label),
        ingredients={"label": label},
        task=task,
        execute=execute,
        label=label,
    )


def execute_double(task):
    return task * 2


def execute_boom(task):
    raise RuntimeError(f"boom on {task!r}")


@pytest.fixture
def fabric(tmp_path):
    """(coordinator thread, store) with fast test timings; torn down."""
    store = ResultStore(tmp_path / "store")
    coordinator = FabricCoordinator(
        store=store, lease_timeout=0.5, max_attempts=2, poll_interval=0.02
    )
    thread = CoordinatorThread(coordinator).start()
    yield thread, store
    thread.stop()


def _run_worker(thread, store, max_leases=None, **kwargs):
    worker = FabricWorker(f"127.0.0.1:{thread.port}", store, **kwargs)
    runner = threading.Thread(
        target=worker.run, kwargs={"max_leases": max_leases}, daemon=True
    )
    runner.start()
    return worker, runner


def _submit(thread, cells, done):
    """run_wave in a background thread; returns (client, thread, box)."""
    client = FabricClient(f"127.0.0.1:{thread.port}").connect()
    box = {}

    def go():
        try:
            box["reply"] = client.run_wave(cells, done.append)
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    runner = threading.Thread(target=go, daemon=True)
    runner.start()
    return client, runner, box


class TestHappyPath:
    def test_wave_executes_and_commits_to_store(self, fabric):
        thread, store = fabric
        cells = [_cell(f"c{i}", execute_double, i) for i in range(4)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        _run_worker(thread, store, max_leases=10, max_cells=2)
        runner.join(timeout=20)
        assert "error" not in box
        assert sorted(done) == sorted(c.key for c in cells)
        for cell in cells:
            assert store.get(cell.key) == cell.task * 2
        assert box["reply"]["completed"] == 4
        events = {e["event"] for e in box["reply"]["events"]}
        assert "lease-grant" in events
        assert "cell-done" in events
        client.close()

    def test_resubmitted_wave_is_served_without_work(self, fabric):
        """Done jobs (and store-resident keys) dedup: no worker needed."""
        thread, store = fabric
        cells = [_cell(f"d{i}", execute_double, i) for i in range(2)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        _run_worker(thread, store, max_leases=5)
        runner.join(timeout=20)
        assert "error" not in box

        again = []
        reply = client.run_wave(cells, again.append)
        assert sorted(again) == sorted(c.key for c in cells)
        assert reply["completed"] == 2
        client.close()

    def test_store_resident_key_is_done_on_arrival(self, fabric):
        thread, store = fabric
        cell = _cell("warm", execute_double, 21)
        store.put(cell.key, 42, cell.ingredients)
        done = []
        with FabricClient(f"127.0.0.1:{thread.port}") as client:
            reply = client.run_wave([cell], done.append)
        assert done == [cell.key]
        assert reply["completed"] == 1

        async def probe():
            return thread.coordinator.metrics.snapshot()

        snapshot = thread.call(probe())
        assert snapshot["fabric.cells_deduped"]["value"] >= 1


class TestFailure:
    def test_poisoned_cell_fails_after_bounded_retries(self, fabric):
        thread, store = fabric
        cells = [_cell("bad", execute_boom, 7)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        _run_worker(thread, store, max_leases=8)
        runner.join(timeout=20)
        assert done == []
        assert isinstance(box.get("error"), FabricJobError)
        assert "boom" in str(box["error"])

        async def probe():
            c = thread.coordinator
            return c.jobs[cells[0].key].attempts, c.metrics.snapshot()

        attempts, snapshot = thread.call(probe())
        assert attempts == 2  # max_attempts, not infinite cycling
        assert snapshot["fabric.cells_failed"]["value"] == 1
        client.close()

    def test_mixed_wave_completes_good_cells_and_reports_bad(self, fabric):
        thread, store = fabric
        good = _cell("good", execute_double, 5)
        bad = _cell("alsobad", execute_boom, 5)
        done = []
        client, runner, box = _submit(thread, [good, bad], done)
        _run_worker(thread, store, max_leases=8)
        runner.join(timeout=20)
        assert done == [good.key]
        assert store.get(good.key) == 10
        assert isinstance(box.get("error"), FabricJobError)
        client.close()


class TestLeaseRecovery:
    def _dead_worker_takes_lease(self, thread):
        """Hello as a worker, grab one lease, then vanish (SIGKILL-like:
        no cell-done, no lease-complete, TCP close is all the
        coordinator observes)."""
        sock = socket.create_connection(("127.0.0.1", thread.port))
        send_msg(sock, {"op": "hello", "role": "worker",
                        "version": PROTOCOL_VERSION, "worker": "doomed",
                        "host": "ghost", "pid": 1})
        assert recv_msg(sock)["op"] == "hello-ok"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            send_msg(sock, {"op": "lease-request", "worker": "doomed",
                            "max_cells": 1})
            reply = recv_msg(sock)
            if reply["op"] == "lease":
                sock.close()
                return reply
            time.sleep(0.02)
        raise AssertionError("dead worker never got a lease")

    def test_worker_death_requeues_and_another_worker_finishes(self, fabric):
        thread, store = fabric
        cells = [_cell("survivor", execute_double, 9)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        lease = self._dead_worker_takes_lease(thread)
        assert lease["jobs"][0]["key"] == cells[0].key
        # The job is not lost: the disconnect requeues it and a healthy
        # worker completes it.
        _run_worker(thread, store, max_leases=5)
        runner.join(timeout=20)
        assert "error" not in box, box.get("error")
        assert done == [cells[0].key]
        assert store.get(cells[0].key) == 18

        async def probe():
            return thread.coordinator.metrics.snapshot()

        snapshot = thread.call(probe())
        assert snapshot["fabric.leases_expired"]["value"] >= 1
        assert snapshot["fabric.cells_requeued"]["value"] >= 1
        client.close()

    def test_unheartbeated_lease_expires_by_deadline(self, fabric):
        """A worker that stays connected but never heartbeats loses its
        lease to the reaper once the deadline passes."""
        thread, store = fabric
        cells = [_cell("stalled", execute_double, 3)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        sock = socket.create_connection(("127.0.0.1", thread.port))
        send_msg(sock, {"op": "hello", "role": "worker",
                        "version": PROTOCOL_VERSION, "worker": "stuck",
                        "host": "ghost", "pid": 2})
        assert recv_msg(sock)["op"] == "hello-ok"
        deadline = time.monotonic() + 10
        lease = None
        while lease is None and time.monotonic() < deadline:
            send_msg(sock, {"op": "lease-request", "worker": "stuck",
                            "max_cells": 1})
            reply = recv_msg(sock)
            if reply["op"] == "lease":
                lease = reply
            else:
                time.sleep(0.02)
        assert lease is not None
        # Keep the socket open (no disconnect fast path) but go silent;
        # the 0.5 s lease deadline hands the cell to a live worker.
        _run_worker(thread, store, max_leases=20)
        runner.join(timeout=20)
        assert "error" not in box, box.get("error")
        assert done == [cells[0].key]
        sock.close()
        client.close()

    def test_committed_result_is_adopted_on_expiry(self, fabric):
        """A worker that commits to the store and *then* dies does not
        cause recomputation: expiry probes the store first."""
        thread, store = fabric
        cells = [_cell("halfdead", execute_double, 50)]
        done = []
        client, runner, box = _submit(thread, cells, done)
        sock = socket.create_connection(("127.0.0.1", thread.port))
        send_msg(sock, {"op": "hello", "role": "worker",
                        "version": PROTOCOL_VERSION, "worker": "halfway",
                        "host": "ghost", "pid": 3})
        assert recv_msg(sock)["op"] == "hello-ok"
        deadline = time.monotonic() + 10
        lease = None
        while lease is None and time.monotonic() < deadline:
            send_msg(sock, {"op": "lease-request", "worker": "halfway",
                            "max_cells": 1})
            reply = recv_msg(sock)
            if reply["op"] == "lease":
                lease = reply
            else:
                time.sleep(0.02)
        assert lease is not None
        # The worker's final act before dying: the store commit landed,
        # the cell-done report never did.
        store.put(cells[0].key, 100, cells[0].ingredients)
        sock.close()
        runner.join(timeout=20)
        assert "error" not in box, box.get("error")
        assert done == [cells[0].key]

        async def probe():
            return thread.coordinator.jobs[cells[0].key].attempts

        # Adopted, not re-leased: one grant was enough.
        assert thread.call(probe()) == 1
        client.close()


class TestProtocolPolicing:
    def test_version_mismatch_is_rejected(self, fabric):
        thread, _ = fabric
        sock = socket.create_connection(("127.0.0.1", thread.port))
        send_msg(sock, {"op": "hello", "role": "worker", "version": 999})
        reply = recv_msg(sock)
        assert reply["op"] == "error"
        assert "version" in reply["error"]
        assert recv_msg(sock) is None  # coordinator hung up
        sock.close()

    def test_status_document(self, fabric):
        thread, store = fabric
        worker, _ = _run_worker(thread, store)
        deadline = time.monotonic() + 5
        status = {}
        with FabricClient(f"127.0.0.1:{thread.port}") as client:
            while time.monotonic() < deadline:
                status = client.status()
                if status["workers"]:
                    break
                time.sleep(0.02)
        assert status["op"] == "status-reply"
        assert status["lease_timeout"] == 0.5
        assert status["max_attempts"] == 2
        assert any(w["worker"] == worker.worker_id for w in status["workers"])
