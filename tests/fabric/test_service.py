"""HTTP front end: instant cache hits, miss enqueueing, status."""

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.fabric.coordinator import CoordinatorThread, FabricCoordinator
from repro.fabric.protocol import pack_obj
from repro.fabric.service import FabricHTTPService
from repro.fabric.worker import FabricWorker
from repro.store.store import ResultStore

from tests.fabric.test_coordinator import execute_double


def _key(label):
    return hashlib.sha256(label.encode()).hexdigest()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(url, doc):
    request = urllib.request.Request(
        url,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture
def service(store):
    svc = FabricHTTPService(store).start()
    yield svc
    svc.stop()


@pytest.fixture
def full_stack(store):
    """Coordinator + HTTP front end + one background worker."""
    thread = CoordinatorThread(
        FabricCoordinator(store=store, lease_timeout=1.0, poll_interval=0.02)
    ).start()
    svc = FabricHTTPService(store, coordinator=thread).start()
    worker = FabricWorker(f"127.0.0.1:{thread.port}", store)
    runner = threading.Thread(target=worker.run, daemon=True)
    runner.start()
    yield svc, store
    svc.stop()
    thread.stop()


class TestStoreOnly:
    def test_healthz(self, service):
        status, body = _get(service.url + "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_cached_cell_served_as_raw_envelope(self, service, store):
        key = _key("served")
        store.put(key, {"answer": 42}, {"label": "served"})
        status, body = _get(f"{service.url}/cells/{key}")
        assert status == 200
        envelope = json.loads(body)
        assert envelope["key"] == key
        assert envelope["payload_sha256"]
        # Byte-for-byte what the store holds: clients verify the
        # checksum themselves.
        assert body == store.object_path(key).read_bytes()

    def test_unknown_cell_404(self, service):
        status, body = _get(f"{service.url}/cells/{_key('nope')}")
        assert status == 404
        assert json.loads(body)["status"] == "unknown"

    def test_malformed_key_400(self, service):
        status, _ = _get(service.url + "/cells/NOT-A-KEY")
        assert status == 400

    def test_unknown_route_404(self, service):
        status, _ = _get(service.url + "/nothing/here")
        assert status == 404

    def test_post_without_coordinator_503_on_miss(self, service):
        status, body = _post(
            service.url + "/cells", {"key": _key("uncached")}
        )
        assert status == 503
        assert body["status"] == "miss"

    def test_post_hit_needs_no_coordinator(self, service, store):
        key = _key("already")
        store.put(key, 1, {})
        status, body = _post(service.url + "/cells", {"key": key})
        assert status == 200
        assert body["status"] == "hit"

    def test_status_and_metrics(self, service, store):
        store.put(_key("one"), 1, {})
        status, body = _get(service.url + "/status")
        assert status == 200
        assert json.loads(body)["entries"] == 1
        status, body = _get(service.url + "/metrics")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["http"]["http.requests"]["value"] >= 1


class TestFullStack:
    def test_miss_is_enqueued_and_becomes_a_hit(self, full_stack):
        svc, store = full_stack
        key = _key("computed-via-http")
        doc = {
            "key": key,
            "task": pack_obj((execute_double, 33)),
            "ingredients": {"label": "via-http"},
            "label": "via-http",
        }
        status, body = _post(svc.url + "/cells", doc)
        assert status == 202
        assert body["status"] == "queued"
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            status, payload = _get(f"{svc.url}/cells/{key}")
            if status == 200:
                break
            assert status == 202, payload
            time.sleep(0.05)
        assert status == 200
        assert store.get(key) == 66

    def test_status_includes_coordinator(self, full_stack):
        svc, _ = full_stack
        status, body = _get(svc.url + "/status")
        assert status == 200
        doc = json.loads(body)
        assert doc["coordinator"]["op"] == "status-reply"

    def test_metrics_include_fabric(self, full_stack):
        svc, _ = full_stack
        status, body = _get(svc.url + "/metrics")
        assert status == 200
        assert "fabric" in json.loads(body)
