"""Wire framing: blocking + asyncio paths, caps, task blobs."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.errors import FabricError, FabricProtocolError
from repro.fabric.client import parse_address
from repro.fabric.protocol import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    pack_obj,
    read_msg,
    recv_msg,
    send_msg,
    unpack_obj,
    write_msg,
)


class TestFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "hello", "nested": {"x": [1, 2, 3]}, "s": "ü"}
            send_msg(a, message)
            assert recv_msg(b) == message
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = socket.socketpair()
        try:
            for i in range(20):
                send_msg(a, {"op": "n", "i": i})
            for i in range(20):
                assert recv_msg(b) == {"op": "n", "i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"op": "x"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(FabricProtocolError, match="mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FabricProtocolError, match="exceeds cap"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_body_must_be_object_with_op(self):
        with pytest.raises(FabricProtocolError):
            decode_body(b"[1,2]")
        with pytest.raises(FabricProtocolError):
            decode_body(b'{"no_op": 1}')
        with pytest.raises(FabricProtocolError):
            decode_body(b"\xff\xfe")

    def test_asyncio_framing_matches_blocking(self):
        """A frame written by the blocking side parses on the asyncio
        side and vice versa (the coordinator talks to both)."""

        async def scenario():
            server_got = []

            async def handle(reader, writer):
                server_got.append(await read_msg(reader))
                await write_msg(writer, {"op": "pong"})
                assert await read_msg(reader) is None  # clean EOF
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reply = {}

            def client():
                sock = socket.create_connection(("127.0.0.1", port))
                send_msg(sock, {"op": "ping", "payload": pack_obj((1, "a"))})
                reply.update(recv_msg(sock))
                sock.close()

            thread = threading.Thread(target=client)
            thread.start()
            while not reply:
                await asyncio.sleep(0.01)
            thread.join()
            server.close()
            await server.wait_closed()
            return server_got, reply

        got, reply = asyncio.run(scenario())
        assert reply == {"op": "pong"}
        assert got[0]["op"] == "ping"
        assert unpack_obj(got[0]["payload"]) == (1, "a")


class TestTaskBlobs:
    def test_round_trip(self):
        value = {"tuple": (1, 2), "fn": len}
        assert unpack_obj(pack_obj(value)) == value

    def test_garbage_blob_raises(self):
        with pytest.raises(FabricProtocolError, match="task blob"):
            unpack_obj("not base64!!")


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example:7463") == ("example", 7463)

    def test_bare_port_implies_localhost(self):
        assert parse_address("7463") == ("127.0.0.1", 7463)

    def test_malformed(self):
        with pytest.raises(FabricError, match="malformed"):
            parse_address("example:notaport")
