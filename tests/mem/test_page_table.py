"""Tests for the 4-level radix page table."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, PageSize
from repro.mem.page_table import PTE_SIZE, PageFault, PageTable


def make_table() -> PageTable:
    counter = itertools.count(1000)
    return PageTable(lambda: next(counter))


class TestMapping:
    def test_map_and_translate_4k(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        assert table.translate(0x1000) == 0x5000
        assert table.translate(0x1FFF) == 0x5FFF

    def test_map_and_translate_2m(self):
        table = make_table()
        table.map(2 * MIB, 8 * MIB, PageSize.SIZE_2M)
        assert table.translate(2 * MIB + 12345) == 8 * MIB + 12345

    def test_map_and_translate_1g(self):
        table = make_table()
        table.map(1 * GIB, 3 * GIB, PageSize.SIZE_1G)
        assert table.translate(1 * GIB + 7) == 3 * GIB + 7

    def test_unmapped_faults(self):
        table = make_table()
        with pytest.raises(PageFault):
            table.walk(0x1000)

    def test_fault_carries_level(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        # Sibling in the same PT node: fault at the leaf level.
        with pytest.raises(PageFault) as info:
            table.walk(0x3000)
        assert info.value.level == 3
        # Far-away address: fault at the root.
        with pytest.raises(PageFault) as info:
            table.walk(1 << 40)
        assert info.value.level == 0

    def test_misaligned_map_rejected(self):
        table = make_table()
        with pytest.raises(ValueError, match="aligned"):
            table.map(0x1001, 0x5000)
        with pytest.raises(ValueError, match="aligned"):
            table.map(2 * MIB + 4096, 0, PageSize.SIZE_2M)

    def test_remap_overwrites(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        table.map(0x1000, 0x9000)
        assert table.translate(0x1000) == 0x9000

    def test_large_leaf_over_subtree_rejected(self):
        table = make_table()
        table.map(0x1000, 0x5000)  # creates a PT subtree under one PD slot
        with pytest.raises(ValueError, match="finer-grained subtree"):
            table.map(0, 0, PageSize.SIZE_2M)

    def test_small_map_under_large_leaf_rejected(self):
        table = make_table()
        table.map(0, 0, PageSize.SIZE_1G)
        with pytest.raises(ValueError, match="larger leaf"):
            table.map(0x1000, 0x5000)


class TestWalkSteps:
    def test_4k_walk_has_4_steps(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        result = table.walk(0x1000)
        assert [s.level for s in result.steps] == [0, 1, 2, 3]
        assert result.page_size is PageSize.SIZE_4K

    def test_2m_walk_has_3_steps(self):
        table = make_table()
        table.map(0, 0, PageSize.SIZE_2M)
        assert len(table.walk(0).steps) == 3

    def test_1g_walk_has_2_steps(self):
        table = make_table()
        table.map(0, 0, PageSize.SIZE_1G)
        assert len(table.walk(0).steps) == 2

    def test_pte_addresses_live_in_node_frames(self):
        # The 2D walk depends on PTE addresses being real physical
        # addresses inside the table's node frames.
        table = make_table()
        table.map(0x1000, 0x5000)
        result = table.walk(0x1000)
        for step in result.steps:
            frame = step.pte_address // BASE_PAGE_SIZE
            assert frame in table.node_frames
            assert step.pte_address % PTE_SIZE == 0

    def test_update_count_tracks_writes(self):
        table = make_table()
        before = table.update_count
        table.map(0x1000, 0x5000)
        # 3 pointer entries + 1 leaf.
        assert table.update_count == before + 4
        table.map(0x2000, 0x6000)  # shares all nodes: 1 leaf write
        assert table.update_count == before + 5

    def test_unmap(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        entry = table.unmap(0x1000)
        assert entry.frame == 0x5
        with pytest.raises(PageFault):
            table.walk(0x1000)

    def test_unmap_missing_faults(self):
        table = make_table()
        with pytest.raises(PageFault):
            table.unmap(0x1000)


class TestEnumeration:
    def test_leaves(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        table.map(4 * MIB, 6 * MIB, PageSize.SIZE_2M)
        leaves = dict(table.leaves())
        assert leaves[0x1000].frame == 0x5
        assert leaves[4 * MIB].page_size is PageSize.SIZE_2M
        assert table.leaf_count() == 2

    def test_clear(self):
        table = make_table()
        table.map(0x1000, 0x5000)
        freed: list[int] = []
        table.clear(free_frame=freed.append)
        assert table.leaf_count() == 0
        assert table.node_count == 1  # fresh root retained
        assert len(freed) == 3  # PDPT, PD, PT nodes returned

    def test_is_mapped_and_lookup(self):
        table = make_table()
        assert not table.is_mapped(0)
        table.map(0, 0x10000)
        assert table.is_mapped(0)
        assert table.lookup(0x5000) is None


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=(1 << 30) - 1),
            st.integers(min_value=0, max_value=(1 << 30) - 1),
            min_size=1,
            max_size=40,
        )
    )
    def test_many_mappings_translate_independently(self, pairs):
        table = make_table()
        mapping = {
            (v >> 12) << 12: (p >> 12) << 12 for v, p in pairs.items()
        }
        for virt, phys in mapping.items():
            table.map(virt, phys)
        for virt, phys in mapping.items():
            assert table.translate(virt) == phys
        assert table.leaf_count() == len(mapping)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=30))
    def test_unmap_removes_only_target(self, vpns):
        table = make_table()
        for vpn in vpns:
            table.map(vpn * 4096, vpn * 4096)
        victim = next(iter(vpns))
        table.unmap(victim * 4096)
        for vpn in vpns:
            if vpn == victim:
                assert not table.is_mapped(vpn * 4096)
            else:
                assert table.translate(vpn * 4096) == vpn * 4096
