"""Tests for the compaction daemon."""

import random

import pytest

from repro.core.address import MIB
from repro.mem.compaction import CompactionDaemon
from repro.mem.frame_allocator import FrameAllocator


def fragmented_allocator(mib: int = 64, fraction: float = 0.4, seed: int = 0):
    alloc = FrameAllocator.of_size(mib * MIB)
    held = alloc.fragment(fraction, rng=random.Random(seed), hold_orders=(0, 1))
    return alloc, held


class TestCompactionBasics:
    def test_request_validation(self):
        daemon = CompactionDaemon(FrameAllocator.of_size(1 * MIB))
        with pytest.raises(ValueError):
            daemon.request(0)

    def test_not_complete_without_goal(self):
        daemon = CompactionDaemon(FrameAllocator.of_size(1 * MIB))
        assert not daemon.complete
        assert daemon.step(100) == 0

    def test_trivially_complete(self):
        alloc = FrameAllocator.of_size(4 * MIB)
        daemon = CompactionDaemon(alloc)
        daemon.request(16)
        assert daemon.complete
        assert daemon.step(100) == 0

    def test_impossible_goal(self):
        alloc = FrameAllocator.of_size(1 * MIB)
        daemon = CompactionDaemon(alloc)
        daemon.request(alloc.total_frames * 2)
        assert not daemon.run_to_completion(max_steps=10)


class TestCompactionProgress:
    def test_creates_requested_run(self):
        alloc, _ = fragmented_allocator()
        goal = 4096  # 16 MiB run out of a shattered 64 MiB
        assert alloc.largest_free_run_frames() < goal
        daemon = CompactionDaemon(alloc)
        daemon.request(goal)
        assert daemon.run_to_completion(step_pages=2048)
        assert alloc.largest_free_run_frames() >= goal
        # The run is genuinely reservable.
        start = alloc.reserve_contiguous(goal)
        alloc.free_contiguous(start, goal)

    def test_preserves_allocation_count(self):
        alloc, held = fragmented_allocator()
        before = alloc.allocated_frames
        daemon = CompactionDaemon(alloc)
        daemon.request(4096)
        daemon.run_to_completion(step_pages=2048)
        assert alloc.allocated_frames == before

    def test_on_move_callback_invoked(self):
        alloc, _ = fragmented_allocator(mib=16)
        moves: list[tuple[int, int, int]] = []
        daemon = CompactionDaemon(
            alloc, on_move=lambda old, new, order: moves.append((old, new, order))
        )
        daemon.request(1024)
        daemon.run_to_completion(step_pages=512)
        assert moves, "compaction converged without moving anything?"
        assert daemon.stats.blocks_moved == len(moves)
        assert daemon.stats.pages_moved == sum(1 << o for _, _, o in moves)
        for old, new, order in moves:
            assert old != new
            assert new % (1 << order) == 0

    def test_step_respects_budget(self):
        alloc, _ = fragmented_allocator(mib=32)
        daemon = CompactionDaemon(alloc)
        daemon.request(2048)
        moved = daemon.step(page_budget=64)
        # Budget is a cap measured before each block moves; the final
        # block may overshoot by at most one block (order <= 1 here).
        assert 0 < moved <= 64 + 2

    def test_incremental_steps_eventually_converge(self):
        alloc, _ = fragmented_allocator(mib=32)
        daemon = CompactionDaemon(alloc)
        daemon.request(2048)
        steps = 0
        while not daemon.complete and steps < 10_000:
            if daemon.step(128) == 0:
                break
            steps += 1
        assert daemon.complete


class TestUnmovableBlocks:
    def test_unmovable_blocks_are_skipped(self):
        alloc = FrameAllocator.of_size(16 * MIB)
        pinned = {alloc.alloc_specific(512 * i, 0) for i in range(1, 5)}
        daemon = CompactionDaemon(
            alloc, is_movable=lambda frame: frame not in pinned
        )
        daemon.request(256)
        daemon.run_to_completion(step_pages=512)
        # Pinned frames never moved.
        for frame in pinned:
            assert alloc.allocation_order(frame) == 0

    def test_all_unmovable_cannot_converge(self):
        alloc = FrameAllocator.of_size(4 * MIB)
        # Pin every 64th frame so no 64-frame run exists or can be made.
        for base in range(0, 1024, 32):
            alloc.alloc_specific(base, 0)
        daemon = CompactionDaemon(alloc, is_movable=lambda frame: False)
        daemon.request(64)
        assert not daemon.run_to_completion(max_steps=50)
