"""Tests for the physical layout and the I/O gap."""

import pytest

from repro.core.address import GIB, MIB
from repro.mem.physical_layout import (
    IO_GAP,
    IO_GAP_END,
    IO_GAP_START,
    KERNEL_RESERVED_BELOW_GAP,
    PhysicalLayout,
)


class TestIoGapConstants:
    def test_gap_is_3_to_4_gb(self):
        assert IO_GAP_START == 3 * GIB
        assert IO_GAP_END == 4 * GIB
        assert IO_GAP.size == 1 * GIB

    def test_kernel_reservation_matches_prototype(self):
        # Section VI.C: 256 MB is enough to boot Linux.
        assert KERNEL_RESERVED_BELOW_GAP == 256 * MIB


class TestPhysicalLayout:
    def test_large_memory_splits_at_gap(self):
        layout = PhysicalLayout(8 * GIB)
        below, above = layout.regions
        assert below.start == 0 and below.end == 3 * GIB
        assert above.start == 4 * GIB
        # DRAM after the gap holds the remapped remainder.
        assert above.size == 5 * GIB
        assert layout.highest_address == 9 * GIB

    def test_small_memory_has_no_split(self):
        layout = PhysicalLayout(2 * GIB)
        assert layout.regions == (layout.regions[0],)
        assert layout.regions[0].size == 2 * GIB

    def test_total_dram_preserved(self):
        for size in (1 * GIB, 3 * GIB, 4 * GIB, 96 * GIB):
            layout = PhysicalLayout(size)
            assert sum(r.size for r in layout.regions) == size

    def test_largest_region(self):
        layout = PhysicalLayout(8 * GIB)
        assert layout.largest_region.start == 4 * GIB
        small = PhysicalLayout(4 * GIB)
        assert small.largest_region.start == 0  # 3 GB below beats 1 GB above

    def test_is_dram(self):
        layout = PhysicalLayout(8 * GIB)
        assert layout.is_dram(0)
        assert layout.is_dram(3 * GIB - 1)
        assert not layout.is_dram(3 * GIB)  # inside the I/O gap
        assert not layout.is_dram(4 * GIB - 1)
        assert layout.is_dram(4 * GIB)
        assert not layout.is_dram(9 * GIB)

    def test_gapless_layout(self):
        layout = PhysicalLayout(8 * GIB, include_io_gap=False)
        assert len(layout.regions) == 1
        assert layout.regions[0].size == 8 * GIB

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PhysicalLayout(0)
