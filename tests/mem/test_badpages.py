"""Tests for bad-page tracking."""

import pytest

from repro.mem.badpages import BadPageList


class TestBadPageList:
    def test_empty(self):
        bad = BadPageList()
        assert len(bad) == 0
        assert 7 not in bad

    def test_membership(self):
        bad = BadPageList([1, 2, 3])
        assert 2 in bad
        assert 4 not in bad
        assert bad.frames == frozenset({1, 2, 3})

    def test_mark_bad(self):
        bad = BadPageList()
        bad.mark_bad(42)
        assert 42 in bad

    def test_random_draw_is_deterministic(self):
        a = BadPageList.random(16, range(1_000_000), seed=7)
        b = BadPageList.random(16, range(1_000_000), seed=7)
        assert a.frames == b.frames
        assert len(a) == 16

    def test_random_draws_distinct_frames(self):
        bad = BadPageList.random(100, range(200), seed=0)
        assert len(bad) == 100
        assert all(f in range(200) for f in bad.frames)

    def test_random_rejects_oversized_request(self):
        with pytest.raises(ValueError):
            BadPageList.random(10, range(5), seed=0)

    def test_random_requires_explicit_seed(self):
        with pytest.raises(TypeError):
            BadPageList.random(2, range(100))

    def test_bad_frames_in_window(self):
        bad = BadPageList([5, 100, 250, 999])
        assert bad.bad_frames_in(100, 151) == [100, 250]
        assert bad.bad_frames_in(0, 10) == [5]
        assert bad.bad_frames_in(1000, 50) == []
