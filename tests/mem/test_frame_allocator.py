"""Tests for the buddy frame allocator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import GIB, MIB, AddressRange
from repro.mem.frame_allocator import (
    MAX_ORDER,
    FrameAllocator,
    OutOfMemoryError,
)


def make_allocator(mib: int = 64) -> FrameAllocator:
    return FrameAllocator.of_size(mib * MIB)


class TestBasicAllocation:
    def test_total_frames(self):
        alloc = make_allocator(64)
        assert alloc.total_frames == 64 * 256  # 256 frames per MiB
        assert alloc.free_frames == alloc.total_frames

    def test_alloc_free_round_trip(self):
        alloc = make_allocator()
        frame = alloc.alloc_frame()
        assert alloc.allocated_frames == 1
        alloc.free_block(frame)
        assert alloc.allocated_frames == 0

    def test_alloc_block_alignment(self):
        alloc = make_allocator()
        for order in (0, 3, 9):
            frame = alloc.alloc_block(order)
            assert frame % (1 << order) == 0
            alloc.free_block(frame)

    def test_alloc_is_lowest_first(self):
        alloc = make_allocator()
        assert alloc.alloc_frame() == 0
        assert alloc.alloc_frame() == 1

    def test_rejects_bad_order(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.alloc_block(-1)
        with pytest.raises(ValueError):
            alloc.alloc_block(MAX_ORDER + 1)

    def test_out_of_memory(self):
        alloc = FrameAllocator.of_size(4 * 4096)
        for _ in range(4):
            alloc.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_frame()

    def test_free_unknown_frame_rejected(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.free_block(5)

    def test_double_free_rejected(self):
        alloc = make_allocator()
        frame = alloc.alloc_frame()
        alloc.free_block(frame)
        with pytest.raises(ValueError):
            alloc.free_block(frame)


class TestBuddyCoalescing:
    def test_coalesce_restores_large_blocks(self):
        alloc = FrameAllocator.of_size(1 * MIB)  # 256 frames, order 8
        frames = [alloc.alloc_frame() for _ in range(256)]
        assert alloc.largest_free_order() == -1
        for frame in frames:
            alloc.free_block(frame)
        assert alloc.largest_free_order() == 8
        assert alloc.largest_free_run_frames() == 256

    def test_partial_free_no_overcoalesce(self):
        alloc = FrameAllocator.of_size(1 * MIB)
        a = alloc.alloc_frame()
        b = alloc.alloc_frame()
        alloc.free_block(a)
        # b still allocated: the order-0 buddy of a cannot coalesce.
        assert alloc.is_free_block(a, 0)
        alloc.free_block(b)
        assert not alloc.is_free_block(a, 0)  # merged upward


class TestSpecificAllocation:
    def test_alloc_specific(self):
        alloc = make_allocator()
        frame = alloc.alloc_specific(512, 2)
        assert frame == 512
        assert alloc.allocation_order(512) == 2

    def test_alloc_specific_requires_alignment(self):
        alloc = make_allocator()
        with pytest.raises(ValueError, match="aligned"):
            alloc.alloc_specific(3, 2)

    def test_alloc_specific_requires_free(self):
        alloc = make_allocator()
        alloc.alloc_specific(0, 0)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_specific(0, 0)

    def test_alloc_specific_mid_block(self):
        # Carving from the middle of a larger free block splits it.
        alloc = FrameAllocator.of_size(1 * MIB)
        alloc.alloc_specific(100, 0)
        assert alloc.allocated_frames == 1
        assert alloc.free_frames == 255
        # Neighbours are still allocatable.
        assert alloc.alloc_specific(99, 0) == 99
        assert alloc.alloc_specific(101, 0) == 101


class TestContiguousReservation:
    def test_reserve_and_free(self):
        alloc = make_allocator(64)
        start = alloc.reserve_contiguous(1000)
        assert alloc.allocated_frames == 1000
        alloc.free_contiguous(start, 1000)
        assert alloc.allocated_frames == 0

    def test_reserve_non_power_of_two(self):
        alloc = make_allocator(64)
        start = alloc.reserve_contiguous(777)
        assert alloc.allocated_frames == 777
        alloc.free_contiguous(start, 777)

    def test_reserve_within(self):
        alloc = make_allocator(64)
        window = AddressRange(4096, 8192)
        start = alloc.reserve_contiguous(100, within=window)
        assert 4096 <= start and start + 100 <= 8192

    def test_reserve_fails_when_fragmented(self):
        alloc = FrameAllocator.of_size(1 * MIB)
        # Pin every other 16-frame block.
        for base in range(0, 256, 32):
            alloc.alloc_specific(base, 4)
        with pytest.raises(OutOfMemoryError):
            alloc.reserve_contiguous(64)

    def test_free_contiguous_rejects_bad_range(self):
        alloc = make_allocator()
        start = alloc.reserve_contiguous(64)
        with pytest.raises(ValueError):
            alloc.free_contiguous(start + 1, 63)
        alloc.free_contiguous(start, 64)


class TestRegions:
    def test_multiple_regions(self):
        alloc = FrameAllocator(
            [AddressRange(0, 1 * MIB), AddressRange(4 * MIB, 5 * MIB)]
        )
        assert alloc.total_frames == 512
        # The gap is never allocated from.
        frames = [alloc.alloc_frame() for _ in range(512)]
        for frame in frames:
            assert frame < 256 or 1024 <= frame < 1280

    def test_add_region(self):
        alloc = FrameAllocator.of_size(1 * MIB)
        alloc.add_region(AddressRange(8 * MIB, 9 * MIB))
        assert alloc.total_frames == 512

    def test_unplug_range(self):
        alloc = FrameAllocator.of_size(2 * MIB)
        alloc.unplug_range(AddressRange(1 * MIB, 2 * MIB))
        assert alloc.total_frames == 256
        # Unplugged frames can never be allocated again.
        frames = [alloc.alloc_frame() for _ in range(256)]
        assert all(f < 256 for f in frames)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_frame()

    def test_unplug_requires_free(self):
        alloc = FrameAllocator.of_size(2 * MIB)
        alloc.alloc_specific(300, 0)
        with pytest.raises(OutOfMemoryError):
            alloc.unplug_range(AddressRange(1 * MIB, 2 * MIB))


class TestFragmentation:
    def test_fragment_holds_requested_fraction(self):
        alloc = FrameAllocator.of_size(64 * MIB)
        held = alloc.fragment(0.3, rng=random.Random(0))
        held_frames = alloc.allocated_frames
        assert abs(held_frames / alloc.total_frames - 0.3) < 0.01
        alloc.free_many(held)
        assert alloc.allocated_frames == 0

    def test_fragment_destroys_contiguity(self):
        alloc = FrameAllocator.of_size(64 * MIB)
        before = alloc.largest_free_run_frames()
        alloc.fragment(0.4, rng=random.Random(1), hold_orders=(0,))
        after = alloc.largest_free_run_frames()
        assert after < before / 50

    def test_fragment_rejects_bad_fraction(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.fragment(1.0)


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), max_size=60))
    def test_alloc_free_conservation(self, orders):
        alloc = FrameAllocator.of_size(16 * MIB)
        total = alloc.total_frames
        live: list[int] = []
        for i, order in enumerate(orders):
            if live and i % 3 == 2:
                alloc.free_block(live.pop())
            else:
                try:
                    live.append(alloc.alloc_block(order))
                except OutOfMemoryError:
                    continue
        assert alloc.free_frames + alloc.allocated_frames == total
        for frame in live:
            alloc.free_block(frame)
        assert alloc.free_frames == total
        assert alloc.largest_free_run_frames() == total

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
    def test_no_overlapping_allocations(self, orders):
        alloc = FrameAllocator.of_size(8 * MIB)
        owned: set[int] = set()
        for order in orders:
            try:
                frame = alloc.alloc_block(order)
            except OutOfMemoryError:
                break
            block = set(range(frame, frame + (1 << order)))
            assert not block & owned, "allocator handed out overlapping frames"
            owned |= block
