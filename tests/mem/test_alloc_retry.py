"""Tests for transient allocation failures and the retry/backoff loop."""

import pytest

from repro.errors import OutOfMemoryError, TransientAllocationError
from repro.mem.frame_allocator import (
    BACKOFF_BASE_CYCLES,
    MAX_ALLOC_RETRIES,
    FrameAllocator,
)


def make_allocator(frames=1024) -> FrameAllocator:
    return FrameAllocator.of_size(frames * 4096)


class TestTransientFailures:
    def test_nothing_armed_is_the_fast_path(self):
        alloc = make_allocator()
        frame = alloc.alloc_block(0)
        assert frame >= 0
        assert alloc.retry_stats.attempts == 1
        assert alloc.retry_stats.transient_failures == 0
        assert alloc.retry_stats.backoff_cycles == 0

    def test_armed_failures_are_absorbed_by_retries(self):
        alloc = make_allocator()
        alloc.inject_transient_failures(3)
        frame = alloc.alloc_block(0)
        assert frame >= 0
        assert alloc.transient_failures_armed == 0
        assert alloc.retry_stats.transient_failures == 3
        # 4 attempts total: 3 failures + the success.
        assert alloc.retry_stats.attempts == 4

    def test_backoff_doubles_per_attempt(self):
        alloc = make_allocator()
        alloc.inject_transient_failures(3)
        alloc.alloc_block(0)
        expected = (
            BACKOFF_BASE_CYCLES
            + (BACKOFF_BASE_CYCLES << 1)
            + (BACKOFF_BASE_CYCLES << 2)
        )
        assert alloc.retry_stats.backoff_cycles == expected

    def test_budget_exhaustion_raises_transient_error(self):
        alloc = make_allocator()
        alloc.inject_transient_failures(MAX_ALLOC_RETRIES + 5)
        with pytest.raises(TransientAllocationError):
            alloc.alloc_block(0)
        # The failed call consumed its whole retry budget.
        assert alloc.retry_stats.transient_failures == MAX_ALLOC_RETRIES

    def test_transient_error_is_an_oom_subclass(self):
        # Callers that catch OutOfMemoryError keep working unchanged.
        assert issubclass(TransientAllocationError, OutOfMemoryError)

    def test_negative_injection_rejected(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.inject_transient_failures(-1)

    def test_genuine_exhaustion_still_immediate(self):
        alloc = make_allocator(frames=1)
        alloc.alloc_block(0)
        with pytest.raises(OutOfMemoryError) as excinfo:
            alloc.alloc_block(0)
        # Real exhaustion is not retried as if it were transient.
        assert not isinstance(excinfo.value, TransientAllocationError)


class TestFragmentValidation:
    def test_fragment_requires_explicit_rng(self):
        alloc = make_allocator()
        with pytest.raises(ValueError, match="rng"):
            alloc.fragment(0.5)
