"""End-to-end resilience: the ISSUE's acceptance scenario.

A Dual Direct run with mid-trace injected faults (new bad frames at the
segment edge and middle, a balloon-inflation failure, escape-filter
exhaustion) must complete without crashing, the DegradationLog must show
at least one segment shrink and one fall-back-to-paging mode transition,
and the TranslationOracle must report zero mismatches.
"""

from repro.faults.degradation import DegradationAction
from repro.faults.injector import (
    BalloonInflationFailure,
    DramHardFault,
    EscapeFilterExhaustion,
    FaultInjector,
)
from repro.faults.oracle import TranslationOracle
from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system

TRACE_LENGTH = 4000
WARMUP = 0.15


def chaos_run(tiny_workload, sample_every=16):
    system = build_system(parse_config("DD"), tiny_workload.spec)
    trace = tiny_workload.trace(TRACE_LENGTH, seed=11)
    measured = TRACE_LENGTH - int(TRACE_LENGTH * WARMUP)
    injector = FaultInjector(
        [
            BalloonInflationFailure(at_ref=measured // 8),
            EscapeFilterExhaustion(at_ref=measured // 4),
            DramHardFault(at_ref=measured // 2, placement="segment-edge"),
            DramHardFault(
                at_ref=measured * 3 // 4, placement="segment-middle"
            ),
        ],
        seed=5,
    )
    oracle = TranslationOracle(system, sample_every=sample_every)
    result = run_trace(
        system,
        trace,
        tiny_workload.spec.ideal_cycles_per_ref,
        warmup_fraction=WARMUP,
        fault_injector=injector,
        oracle=oracle,
    )
    return system, injector, result


class TestAcceptanceScenario:
    def test_chaos_run_completes_with_all_events_delivered(
        self, tiny_workload
    ):
        _, injector, result = chaos_run(tiny_workload)
        assert injector.pending == 0
        assert len(injector.delivered) == 4
        assert result.run.trace_length > 0

    def test_degradation_log_records_shrink_and_fallback(self, tiny_workload):
        _, _, result = chaos_run(tiny_workload)
        log = result.degradation_log
        assert log is not None
        assert log.count(DegradationAction.SHRINK) >= 1
        assert log.count(DegradationAction.FALLBACK) >= 1
        transitions = log.mode_transitions
        assert len(transitions) >= 1
        assert any(
            t.action is DegradationAction.FALLBACK for t in transitions
        )

    def test_oracle_reports_zero_mismatches(self, tiny_workload):
        _, _, result = chaos_run(tiny_workload)
        report = result.oracle_report
        assert report is not None
        assert report.checks > 0
        assert report.mismatches == 0
        assert report.clean

    def test_mmu_mode_follows_the_fallback(self, tiny_workload):
        system, _, _ = chaos_run(tiny_workload)
        # After the mid-segment fault the VM fell back and the MMU
        # (re-synced by the injector) runs the degraded mode.
        assert system.vm.mode is system.mmu.mode
        assert not system.vm.vmm_segment.enabled

    def test_faulty_run_costs_more_than_clean_run(self, tiny_workload):
        clean_system = build_system(parse_config("DD"), tiny_workload.spec)
        trace = tiny_workload.trace(TRACE_LENGTH, seed=11)
        clean = run_trace(
            clean_system,
            trace,
            tiny_workload.spec.ideal_cycles_per_ref,
            warmup_fraction=WARMUP,
        )
        _, _, faulty = chaos_run(tiny_workload)
        assert (
            faulty.overhead.execution_cycles > clean.overhead.execution_cycles
        )


class TestResilienceExperiment:
    def test_smoke_sweep_is_consistent(self, tiny_workload):
        # The experiment module end-to-end on real (small) workloads is
        # exercised by CI's nightly `resilience --smoke`; here we drive
        # its core loop shape cheaply via run()'s helpers.
        from repro.experiments import resilience

        result = resilience.run(
            trace_length=3000,
            workloads=("gups",),
            extra_fault_counts=(0,),
            sample_every=32,
        )
        assert result.all_consistent
        point = result.points[0]
        assert point.normalized_time >= 1.0
        assert point.mode_transitions >= 1

    def test_format_mentions_verdict(self):
        from repro.experiments.resilience import (
            ResiliencePoint,
            ResilienceResult,
            format_resilience,
        )

        result = ResilienceResult(
            config="DD",
            trace_length=100,
            points=[
                ResiliencePoint(
                    workload="w",
                    extra_hard_faults=0,
                    normalized_time=1.01,
                    actions={"escape": 1},
                    oracle_checks=10,
                )
            ],
        )
        text = format_resilience(result)
        assert "escape:1" in text
        assert "10 checks OK" in text
        assert "consistency" in text
