"""Server consolidation: several VMs time-sliced on one host.

The paper's motivation is cloud consolidation; this integration scenario
runs multiple VMs with different translation modes on one hypervisor,
world-switching between them (VM exit/entry saving segment state), and
checks that isolation, per-VM mode behaviour and host accounting all
hold simultaneously.
"""

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange
from repro.core.costs import DEFAULT_COSTS
from repro.core.modes import TranslationMode
from repro.core.mmu import MMU
from repro.core.walker import NestedWalker
from repro.guest.guest_os import GuestOS
from repro.tlb.hierarchy import TLBHierarchy
from repro.vmm.hypervisor import Hypervisor


class ConsolidatedHost:
    """One host running several VMs, one hardware context time-sliced."""

    def __init__(self, num_vms=3, vm_memory=2 * GIB):
        self.hypervisor = Hypervisor(host_memory_bytes=num_vms * vm_memory + 8 * GIB)
        self.machines = []
        for i in range(num_vms):
            vm = self.hypervisor.create_vm(f"vm{i}", memory_bytes=vm_memory)
            guest = GuestOS(vm.guest_layout)
            process = guest.spawn()
            process.mmap(64 * MIB, is_primary_region=True)
            hierarchy = TLBHierarchy()
            table = guest.page_table_of(process)
            walker = NestedWalker(
                table, vm.nested_table, DEFAULT_COSTS, hierarchy,
                vmm_escape_filter=vm.escape_filter,
            )
            mmu = MMU(
                TranslationMode.BASE_VIRTUALIZED,
                hierarchy,
                walker,
                on_guest_fault=lambda va, g=guest, p=process: g.handle_page_fault(p, va),
                on_nested_fault=vm.handle_nested_fault,
            )
            self.machines.append((vm, guest, process, mmu))
        self.running = None

    def schedule(self, index):
        """World switch: exit the running VM, enter another."""
        if self.running is not None:
            self.machines[self.running][0].vm_exit()
        self.machines[index][0].vm_entry()
        self.running = index
        return self.machines[index]


class TestConsolidation:
    def test_vms_translate_to_disjoint_host_memory(self):
        host = ConsolidatedHost()
        frames = {}
        for i in range(3):
            vm, guest, process, mmu = host.schedule(i)
            base = process.primary_region.range.start
            frames[i] = {
                mmu.access(base + j * BASE_PAGE_SIZE) for j in range(16)
            }
        assert not (frames[0] & frames[1])
        assert not (frames[1] & frames[2])
        assert not (frames[0] & frames[2])

    def test_round_robin_preserves_translations(self):
        host = ConsolidatedHost()
        expected = {}
        for i in range(3):
            vm, guest, process, mmu = host.schedule(i)
            va = process.primary_region.range.start + 7 * BASE_PAGE_SIZE
            expected[i] = mmu.access(va)
        for _ in range(2):  # two more full rounds
            for i in range(3):
                vm, guest, process, mmu = host.schedule(i)
                va = process.primary_region.range.start + 7 * BASE_PAGE_SIZE
                assert mmu.access(va) == expected[i]

    def test_mixed_modes_coexist(self):
        # One VM upgrades to VMM Direct; its neighbours stay paged.
        host = ConsolidatedHost()
        vm0, guest0, process0, mmu0 = host.schedule(0)
        vm0.create_vmm_segment()
        vm0.set_mode(TranslationMode.VMM_DIRECT)
        mmu0.walker.vmm_segment = vm0.vmm_segment
        mmu0.mode = TranslationMode.VMM_DIRECT

        base0 = process0.primary_region.range.start
        mmu0.access(base0)
        # Data may sit below the I/O gap (outside the segment); what
        # matters is isolation and mode bookkeeping, checked below.

        vm1, guest1, process1, mmu1 = host.schedule(1)
        mmu1.access(process1.primary_region.range.start)
        assert vm1.mode is TranslationMode.BASE_VIRTUALIZED
        assert vm0.mode is TranslationMode.VMM_DIRECT

        # Host accounting: both VMs' frames come from one allocator and
        # never overlap the segment reservation.
        segment_frames = AddressRange(
            vm0.vmm_segment.base + vm0.vmm_segment.offset,
            vm0.vmm_segment.limit + vm0.vmm_segment.offset,
        )
        for _, entry in vm1.nested_table.leaves():
            assert not segment_frames.overlaps(
                AddressRange.of_size(entry.frame * BASE_PAGE_SIZE, BASE_PAGE_SIZE)
            )

    def test_exit_entry_counts_accumulate(self):
        host = ConsolidatedHost(num_vms=2)
        for _ in range(5):
            host.schedule(0)
            host.schedule(1)
        vm0 = host.machines[0][0]
        vm1 = host.machines[1][0]
        assert vm0.exit_stats.entries == 5
        assert vm0.exit_stats.exits == 5
        assert vm1.exit_stats.entries == 5
        assert vm1.exit_stats.exits == 4  # still running at the end

    def test_destroying_a_vm_frees_memory_for_others(self):
        host = ConsolidatedHost()
        vm2, guest2, process2, mmu2 = host.schedule(2)
        for j in range(64):
            mmu2.access(process2.primary_region.range.start + j * BASE_PAGE_SIZE)
        host.schedule(0)  # vm2 exits
        free_before = host.hypervisor.allocator.free_frames
        host.hypervisor.destroy_vm("vm2")
        assert host.hypervisor.allocator.free_frames > free_before
