"""Cross-check the MMU's miss classification against a recount.

Section VII classifies every DTLB miss by segment membership
(BadgerTrap).  The MMU does this inline; here an independent oracle
recomputes the classification for every trace address from the raw
segment registers, and the aggregate fractions must agree.
"""

import numpy as np

from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system
from tests.conftest import TinyWorkload


def oracle_classify(system, va: int) -> str:
    """Recompute Table I's case for one address, from first principles."""
    walker = system.mmu.walker
    guest_seg = walker.guest_segment
    vmm_seg = walker.vmm_segment
    in_guest = guest_seg.enabled and guest_seg.covers(va)
    if in_guest and walker.guest_escape_filter is not None:
        in_guest = not walker.guest_escape_filter.may_contain(va >> 12)
    if in_guest:
        gpa = guest_seg.translate(va)
    else:
        table = system.guest_os.page_table_of(system.process)
        gpa = table.translate(va)
    in_vmm = vmm_seg.enabled and vmm_seg.covers(gpa)
    if in_vmm and walker.vmm_escape_filter is not None:
        in_vmm = not walker.vmm_escape_filter.may_contain(gpa >> 12)
    if in_guest and in_vmm:
        return "both"
    if in_vmm:
        return "vmm_only"
    if in_guest:
        return "guest_only"
    return "neither"


class TestClassificationAgreesWithOracle:
    def _check(self, label, expect_case):
        workload = TinyWorkload()
        system = build_system(parse_config(label), workload.spec)
        trace = workload.trace(4000, seed=0)
        result = run_trace(
            system, trace, workload.spec.ideal_cycles_per_ref, warmup_fraction=0.0
        )
        # Oracle: classify each distinct address; the arena is fully
        # covered in these modes, so every trace address is one case.
        for page in np.unique(trace)[:100]:
            va = (int(page) << 12) + system.base_va
            assert oracle_classify(system, va) == expect_case
        # The MMU agrees in aggregate.
        fraction = getattr(result.run, f"fraction_{expect_case}")
        assert fraction > 0.999, result.run
        return result

    def test_dual_direct_is_all_both(self):
        self._check("DD", "both")

    def test_vmm_direct_is_all_vmm_only(self):
        self._check("4K+VD", "vmm_only")

    def test_guest_direct_is_all_guest_only(self):
        self._check("4K+GD", "guest_only")

    def test_base_virtualized_is_all_neither(self):
        self._check("4K+4K", "neither")

    def test_fractions_sum_to_one(self):
        workload = TinyWorkload()
        for label in ("DD", "4K+VD", "4K+GD", "4K+4K"):
            system = build_system(parse_config(label), workload.spec)
            result = run_trace(
                system,
                workload.trace(3000, seed=1),
                workload.spec.ideal_cycles_per_ref,
            )
            run = result.run
            total = (
                run.fraction_both
                + run.fraction_vmm_only
                + run.fraction_guest_only
                + run.fraction_neither
            )
            if system.mmu.counters.classified_events:
                assert abs(total - 1.0) < 1e-9
