"""End-to-end swapping under each mode: Table II's swap rows, live.

Guest swapping evicts guest PTEs; VMM swapping evicts nested entries.
Each works exactly where Table II says it does, and a swapped page
transparently refaults on the next access through the full MMU path.
"""

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB
from repro.guest.guest_os import GuestOS, SwapError
from repro.mem.physical_layout import PhysicalLayout
from repro.sim.config import parse_config
from repro.sim.system import build_system
from repro.vmm.hypervisor import Hypervisor, VmmSwapError


class TestGuestSwapUnit:
    def _resident_process(self):
        guest = GuestOS(PhysicalLayout(1 * GIB))
        process = guest.spawn()
        vma = process.mmap(16 * MIB)
        guest.populate_vma(process, vma)
        return guest, process, vma

    def test_swap_out_frees_the_frame(self):
        guest, process, vma = self._resident_process()
        free_before = guest.allocator.free_frames
        guest.swap_out(process, vma.range.start)
        assert guest.allocator.free_frames == free_before + 1
        assert guest.is_swapped(process, vma.range.start)
        assert guest.swap_outs == 1

    def test_refault_restores_residency(self):
        guest, process, vma = self._resident_process()
        va = vma.range.start + 5 * BASE_PAGE_SIZE
        guest.swap_out(process, va)
        guest.handle_page_fault(process, va)
        assert not guest.is_swapped(process, va)
        assert guest.major_faults == 1
        assert guest.page_table_of(process).is_mapped(va)

    def test_swap_nonresident_rejected(self):
        guest, process, vma = self._resident_process()
        other = process.mmap(4 * MIB)  # never touched
        with pytest.raises(SwapError, match="not resident"):
            guest.swap_out(process, other.range.start)

    def test_huge_page_split_on_swap(self):
        from repro.core.address import PageSize

        guest = GuestOS(PhysicalLayout(1 * GIB))
        process = guest.spawn(page_size=PageSize.SIZE_2M)
        vma = process.mmap(8 * MIB)
        guest.populate_vma(process, vma)
        va = vma.range.start + 17 * BASE_PAGE_SIZE
        guest.swap_out(process, va)
        table = guest.page_table_of(process)
        # The victim is gone; its 511 siblings were remapped at 4K.
        assert not table.is_mapped(va)
        sibling = vma.range.start + 18 * BASE_PAGE_SIZE
        assert table.walk(sibling).page_size is PageSize.SIZE_4K

    def test_segment_pages_not_swappable(self):
        guest = GuestOS(PhysicalLayout(1 * GIB))
        process = guest.spawn()
        process.mmap(64 * MIB, is_primary_region=True)
        guest.create_guest_segment(process)
        with pytest.raises(SwapError, match="segment-covered"):
            guest.swap_out(process, process.primary_region.range.start)


class TestVmmSwapUnit:
    def _resident_vm(self):
        hypervisor = Hypervisor(host_memory_bytes=4 * GIB)
        vm = hypervisor.create_vm("a", memory_bytes=1 * GIB)
        for gppn in range(32):
            vm.handle_nested_fault(gppn * BASE_PAGE_SIZE)
        return hypervisor, vm

    def test_swap_out_and_refault(self):
        hypervisor, vm = self._resident_vm()
        free_before = hypervisor.allocator.free_frames
        vm.vmm_swap_out(5)
        assert hypervisor.allocator.free_frames == free_before + 1
        assert vm.nested_table.lookup(5 * BASE_PAGE_SIZE) is None
        vm.handle_nested_fault(5 * BASE_PAGE_SIZE)
        assert vm.nested_table.is_mapped(5 * BASE_PAGE_SIZE)
        assert vm.vmm_swap_ins == 1

    def test_segment_covered_pages_rejected(self):
        hypervisor = Hypervisor(host_memory_bytes=8 * GIB)
        vm = hypervisor.create_vm("a", memory_bytes=5 * GIB)
        regs = vm.create_vmm_segment()
        covered = regs.base // BASE_PAGE_SIZE + 3
        with pytest.raises(VmmSwapError, match="segment-covered"):
            vm.vmm_swap_out(covered)

    def test_nonresident_rejected(self):
        hypervisor, vm = self._resident_vm()
        with pytest.raises(VmmSwapError, match="not resident"):
            vm.vmm_swap_out(100_000)


class TestSwapThroughTheMmu:
    """Table II end-to-end: which modes survive which swaps."""

    def test_vmm_direct_supports_guest_swapping(self, tiny_workload):
        # Table II: guest swapping 'unrestricted' under VMM Direct.
        system = build_system(parse_config("4K+VD"), tiny_workload.spec)
        va = system.base_va + 9 * BASE_PAGE_SIZE
        system.mmu.access(va)
        system.guest_os.swap_out(system.process, va)
        assert not system.guest_os.page_table_of(system.process).is_mapped(va)
        system.mmu.flush_tlbs()
        after = system.mmu.access(va)  # transparently refaults
        assert system.guest_os.major_faults == 1
        # The translation is consistent with the freshly-installed PTE
        # composed through the VMM segment.
        gpa = system.guest_os.page_table_of(system.process).translate(va)
        assert after == system.vm.vmm_segment.translate(gpa) // BASE_PAGE_SIZE

    def test_guest_direct_supports_vmm_swapping(self, tiny_workload):
        # Table II: VMM swapping 'unrestricted' under Guest Direct.
        system = build_system(parse_config("4K+GD"), tiny_workload.spec)
        va = system.base_va + 4 * BASE_PAGE_SIZE
        system.mmu.access(va)
        gpa = system.process.guest_segment.translate(va)
        system.vm.vmm_swap_out(gpa // BASE_PAGE_SIZE)
        system.mmu.flush_tlbs()
        frame = system.mmu.access(va)  # refaults through nested handler
        assert frame >= 0
        assert system.vm.vmm_swap_ins == 1

    def test_dual_direct_blocks_both_for_covered_memory(self, tiny_workload):
        system = build_system(parse_config("DD"), tiny_workload.spec)
        va = system.base_va + 2 * BASE_PAGE_SIZE
        with pytest.raises(SwapError):
            system.guest_os.swap_out(system.process, va)
        gpa = system.process.guest_segment.translate(va)
        with pytest.raises(VmmSwapError):
            system.vm.vmm_swap_out(gpa // BASE_PAGE_SIZE)
