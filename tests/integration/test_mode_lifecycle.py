"""End-to-end integration: fragmentation repair and mode upgrades.

Small-scale executions of the Table III life cycles: a VM starts in a
degraded mode, self-ballooning and/or compaction repair contiguity, and
the VM upgrades -- with translations staying correct throughout.
"""

import random

import pytest

from repro.core.address import BASE_PAGE_SIZE, GIB, MIB, AddressRange
from repro.core.modes import TranslationMode
from repro.mem.physical_layout import IO_GAP_END
from repro.guest.guest_os import GuestOS, GuestOSConfig
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.policy import (
    FragmentationManager,
    FragmentationState,
    WorkloadClass,
    plan_modes,
)


def build_vm(host_fragmented=False, guest_fragmented=False, reserve=0):
    hypervisor = Hypervisor(host_memory_bytes=4 * GIB)
    if host_fragmented:
        hypervisor.allocator.fragment(
            0.4, rng=random.Random(0), hold_orders=(2, 3)
        )
    vm = hypervisor.create_vm(
        "vm0", memory_bytes=int(3.5 * GIB), reserve_bytes=reserve
    )
    guest = GuestOS(
        vm.guest_layout,
        GuestOSConfig(pt_pool_bytes=8 * MIB),
        pt_pool_hint=AddressRange(IO_GAP_END, IO_GAP_END + 4 * GIB),
    )
    process = guest.spawn()
    process.mmap(128 * MIB, is_primary_region=True)
    if guest_fragmented:
        guest.allocator.fragment(0.5, rng=random.Random(1), hold_orders=(2, 3))
    return hypervisor, vm, guest, process


class TestBigMemoryHostFragmented:
    def test_guest_direct_upgrades_to_dual_direct(self):
        hypervisor, vm, guest, process = build_vm(host_fragmented=True)
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY, FragmentationState(host_fragmented=True)
        )
        manager = FragmentationManager(vm, guest, process, plan)
        manager.prepare_guest()
        assert vm.mode is TranslationMode.GUEST_DIRECT
        assert process.guest_segment.enabled
        ticks = 0
        while not manager.at_final_mode and ticks < 500:
            manager.tick(page_budget=16384)
            ticks += 1
        assert vm.mode is TranslationMode.DUAL_DIRECT
        assert vm.vmm_segment.enabled

    def test_translations_stable_across_upgrade(self):
        hypervisor, vm, guest, process = build_vm(host_fragmented=True)
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY, FragmentationState(host_fragmented=True)
        )
        manager = FragmentationManager(vm, guest, process, plan)
        manager.prepare_guest()
        # Touch some guest-physical pages through nested paging before
        # the upgrade.
        segment = process.guest_segment
        gpas = [segment.translate(segment.base + i * BASE_PAGE_SIZE) for i in range(8)]
        for gpa in gpas:
            vm.handle_nested_fault(gpa)
        before = {gpa: vm.nested_table.translate(gpa) for gpa in gpas}
        while not manager.at_final_mode:
            if manager.tick(page_budget=16384) is None:  # pragma: no cover
                break
        # Pinned (mapped) pages were not moved by compaction.
        for gpa, hpa in before.items():
            assert vm.nested_table.translate(gpa) == hpa


class TestBigMemoryGuestFragmented:
    def test_self_ballooning_enables_dual_direct(self):
        hypervisor, vm, guest, process = build_vm(
            guest_fragmented=True, reserve=256 * MIB
        )
        plan = plan_modes(
            WorkloadClass.BIG_MEMORY, FragmentationState(guest_fragmented=True)
        )
        manager = FragmentationManager(vm, guest, process, plan)
        manager.prepare_guest()
        assert vm.mode is TranslationMode.DUAL_DIRECT
        assert process.guest_segment.enabled
        # The segment landed in the hot-added reserve range.
        assert process.guest_segment.physical_range.start >= int(3.5 * GIB)


class TestComputeWorkloads:
    def test_compute_base_to_vmm_direct(self):
        hypervisor, vm, guest, process = build_vm(host_fragmented=True)
        plan = plan_modes(
            WorkloadClass.COMPUTE, FragmentationState(host_fragmented=True)
        )
        manager = FragmentationManager(vm, guest, process, plan)
        manager.prepare_guest()
        assert vm.mode is TranslationMode.BASE_VIRTUALIZED
        assert not process.guest_segment.enabled
        ticks = 0
        while not manager.at_final_mode and ticks < 500:
            manager.tick(page_budget=16384)
            ticks += 1
        assert vm.mode is TranslationMode.VMM_DIRECT

    def test_compute_unfragmented_goes_straight_to_vmm_direct(self):
        hypervisor, vm, guest, process = build_vm()
        plan = plan_modes(WorkloadClass.COMPUTE, FragmentationState())
        manager = FragmentationManager(vm, guest, process, plan)
        manager.prepare_guest()
        assert vm.mode is TranslationMode.VMM_DIRECT
        assert manager.at_final_mode
