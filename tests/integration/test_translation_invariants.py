"""Property-based invariants of the full translation stack.

Hypothesis drives randomized page-visit sequences through complete
systems and checks the properties any MMU must uphold: determinism,
path-independence (TLB state never changes the *result*), injectivity
within an address space, and counter conservation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.config import parse_config
from repro.sim.system import build_system
from tests.conftest import TinyWorkload

#: Page-visit sequences over a small arena (keeps runs fast).
visits = st.lists(
    st.integers(min_value=0, max_value=2000), min_size=1, max_size=60
)

_SLOW = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _fresh(label):
    return build_system(parse_config(label), TinyWorkload().spec)


class TestDeterminism:
    @settings(**_SLOW)
    @given(pages=visits)
    def test_same_sequence_same_frames(self, pages):
        a = _fresh("4K+4K")
        b = _fresh("4K+4K")
        for page in pages:
            va = (page << 12) + a.base_va
            assert a.mmu.access(va) == b.mmu.access(va)

    @settings(**_SLOW)
    @given(pages=visits)
    def test_tlb_state_never_changes_results(self, pages):
        system = _fresh("DD")
        first = {}
        for page in set(pages):
            va = (page << 12) + system.base_va
            first[page] = system.mmu.access(va)
        system.mmu.flush_tlbs()
        for page, frame in first.items():
            va = (page << 12) + system.base_va
            assert system.mmu.access(va) == frame


class TestInjectivity:
    @settings(**_SLOW)
    @given(pages=st.sets(st.integers(min_value=0, max_value=2000), min_size=2, max_size=40))
    def test_distinct_pages_distinct_frames(self, pages):
        system = _fresh("4K+VD")
        frames = {}
        for page in pages:
            va = (page << 12) + system.base_va
            frames[page] = system.mmu.access(va)
        assert len(set(frames.values())) == len(frames), (
            "two virtual pages translated to the same host frame"
        )


class TestCounterConservation:
    @settings(**_SLOW)
    @given(pages=visits)
    def test_hits_plus_misses_equals_accesses(self, pages):
        system = _fresh("4K+4K")
        for page in pages:
            system.mmu.access((page << 12) + system.base_va)
        c = system.mmu.counters
        assert c.l1_hits + c.l1_misses == c.accesses == len(pages)
        assert c.l2_hits + c.l2_misses == c.l1_misses
        assert c.walks <= c.l2_misses  # walks can only come from L2 misses

    @settings(**_SLOW)
    @given(pages=visits)
    def test_dd_misses_split_between_fastpath_and_walks(self, pages):
        system = _fresh("DD")
        for page in pages:
            system.mmu.access((page << 12) + system.base_va)
        c = system.mmu.counters
        assert c.dual_direct_hits + c.l2_hits + c.l2_misses == c.l1_misses
        # In-arena addresses are fully covered: never a walk.
        assert c.walks == 0


class TestCrossModeAgreement:
    @settings(**_SLOW)
    @given(pages=visits)
    def test_all_modes_translate_all_addresses(self, pages):
        # Whatever the mode, every in-arena address must translate.
        for label in ("4K", "DS", "4K+4K", "4K+VD", "4K+GD", "DD"):
            system = _fresh(label)
            for page in pages[:20]:
                frame = system.mmu.access((page << 12) + system.base_va)
                assert frame >= 0

    @settings(**_SLOW)
    @given(pages=visits)
    def test_vd_and_dd_agree_on_host_frames(self, pages):
        # Both modes fix hPA = f(gPA) via the same VMM segment layout,
        # and the guest side allocates identically (same seed/order) --
        # so the actual host frames must agree.
        trace = np.array(sorted(set(pages)), dtype=np.int64)
        vd = _fresh("DD")
        dd = _fresh("DD")
        for page in trace:
            va = (int(page) << 12) + vd.base_va
            assert vd.mmu.access(va) == dd.mmu.access(va)
