"""End-to-end escape filter: bad pages inside a Dual Direct system.

Drives a full trace through a DD system whose VMM segment contains
hard-faulted host frames, and verifies both the performance claim (the
overhead stays near zero, Section IX.C) and the correctness claim (no
access is ever served from a bad frame).
"""

from repro.core.address import BASE_PAGE_SIZE
from repro.mem.badpages import BadPageList
from repro.sim.config import parse_config
from repro.sim.simulator import run_trace
from repro.sim.system import build_system


def _segment_frames(spec):
    system = build_system(parse_config("DD"), spec)
    segment = system.vm.vmm_segment
    start = (segment.base + segment.offset) // BASE_PAGE_SIZE
    return range(start, start + segment.size // BASE_PAGE_SIZE)


class TestEscapeFilterEndToEnd:
    def test_no_access_touches_a_bad_frame(self, tiny_workload):
        frames = _segment_frames(tiny_workload.spec)
        bad = BadPageList.random(16, frames, seed=11)
        system = build_system(
            parse_config("DD"), tiny_workload.spec, bad_pages=bad
        )
        trace = tiny_workload.trace(4000, seed=0)
        for page in set(int(p) for p in trace):
            frame = system.mmu.access((page << 12) + system.base_va)
            assert frame not in bad, f"bad frame {frame:#x} served a request"

    def test_escaped_pages_still_translate_consistently(self, tiny_workload):
        frames = _segment_frames(tiny_workload.spec)
        bad = BadPageList.random(8, frames, seed=3)
        system = build_system(
            parse_config("DD"), tiny_workload.spec, bad_pages=bad
        )
        # Every touched page translates to the same frame on every path
        # (fast path, L2, walk).
        for page in range(64):
            va = (page << 12) + system.base_va
            first = system.mmu.access(va)
            system.mmu.flush_tlbs()
            assert system.mmu.access(va) == first

    def test_overhead_stays_near_zero_with_16_bad_pages(self, tiny_workload):
        frames = _segment_frames(tiny_workload.spec)
        spec = tiny_workload.spec
        clean = build_system(parse_config("DD"), spec)
        dirty = build_system(
            parse_config("DD"),
            spec,
            bad_pages=BadPageList.random(16, frames, seed=5),
        )
        trace = tiny_workload.trace(6000, seed=0)
        clean_result = run_trace(clean, trace, spec.ideal_cycles_per_ref)
        dirty_result = run_trace(dirty, trace, spec.ideal_cycles_per_ref)
        ratio = (
            dirty_result.overhead.execution_cycles
            / clean_result.overhead.execution_cycles
        )
        # Paper: < 0.06% typical, 0.5% worst case (GUPS); our tiny
        # workload has a denser trace over fewer pages, so allow 2%.
        assert ratio < 1.02

    def test_filter_contains_exactly_the_bad_pages_in_segment(self, tiny_workload):
        frames = _segment_frames(tiny_workload.spec)
        bad = BadPageList.random(16, frames, seed=9)
        system = build_system(
            parse_config("DD"), tiny_workload.spec, bad_pages=bad
        )
        vm = system.vm
        offset_frames = vm.vmm_segment.offset // BASE_PAGE_SIZE
        expected = {frame - offset_frames for frame in bad.frames}
        assert vm.escape_filter.inserted_pages == expected
