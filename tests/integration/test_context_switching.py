"""Integration: multiple guest processes sharing one machine.

Section III.C: guest segment registers are per-process state, saved and
restored by the guest OS on context switches.  These tests run two
processes with different segment configurations on the same simulated
machine and verify isolation and register swapping.
"""

from repro.core.address import BASE_PAGE_SIZE, MIB
from repro.sim.config import parse_config
from repro.sim.system import build_system


def two_process_system(tiny_workload, label):
    system = build_system(parse_config(label), tiny_workload.spec)
    other = system.guest_os.spawn()
    other.mmap(32 * MIB, is_primary_region=True)
    return system, other


class TestGuestDirectSwitching:
    def test_segments_swap_with_processes(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "4K+GD")
        first = system.process
        assert first.guest_segment.enabled
        # Give the second process its own (smaller) guest segment.
        system.guest_os.create_guest_segment(other)

        system.context_switch(other)
        assert system.mmu.walker.guest_segment == other.guest_segment
        system.context_switch(first)
        assert system.mmu.walker.guest_segment == first.guest_segment

    def test_processes_translate_to_disjoint_memory(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "4K+GD")
        first = system.process
        system.guest_os.create_guest_segment(other)

        va1 = first.primary_region.range.start
        frame1 = system.mmu.access(va1)

        system.context_switch(other)
        va2 = other.primary_region.range.start
        frame2 = system.mmu.access(va2)
        assert frame1 != frame2

        # Switching back reproduces the original translation.
        system.context_switch(first)
        assert system.mmu.access(va1) == frame1

    def test_switch_flushes_tlbs(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "4K+GD")
        first = system.process
        va = first.primary_region.range.start
        system.mmu.access(va)
        walks_before = (
            system.mmu.counters.walks + system.mmu.counters.dual_direct_hits
        )
        system.context_switch(other)
        system.context_switch(first)
        system.mmu.access(va)
        # Not an L1 hit: the switch dropped the entry.
        after = system.mmu.counters.walks + system.mmu.counters.dual_direct_hits
        assert (
            after > walks_before
            or system.mmu.counters.segment_l2_parallel_hits > 0
        )


class TestBaseVirtualizedSwitching:
    def test_paged_processes_are_isolated(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "4K+4K")
        first = system.process
        va = first.primary_region.range.start + 3 * BASE_PAGE_SIZE
        frame1 = system.mmu.access(va)

        system.context_switch(other)
        va2 = other.primary_region.range.start + 3 * BASE_PAGE_SIZE
        frame2 = system.mmu.access(va2)
        assert frame1 != frame2

        # The first process's table was untouched by the second's run.
        table1 = system.guest_os.page_table_of(first)
        gpa = table1.translate(va)
        hpa = system.vm.nested_table.translate(gpa)
        assert hpa // BASE_PAGE_SIZE == frame1


class TestNativeSwitching:
    def test_native_processes_swap_tables(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "4K")
        first = system.process
        va = first.primary_region.range.start
        frame1 = system.mmu.access(va)
        system.context_switch(other)
        frame2 = system.mmu.access(other.primary_region.range.start)
        assert frame1 != frame2

    def test_ds_mode_switches_segment(self, tiny_workload):
        system, other = two_process_system(tiny_workload, "DS")
        first = system.process
        system.guest_os.create_guest_segment(other)
        system.context_switch(other)
        assert system.mmu.walker.segment == other.guest_segment
        va = other.primary_region.range.start + 7 * BASE_PAGE_SIZE
        frame = system.mmu.access(va)
        assert frame == other.guest_segment.translate(va) // BASE_PAGE_SIZE