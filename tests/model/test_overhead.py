"""Tests for the overhead metric and summaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.overhead import (
    OverheadResult,
    geometric_mean,
    overhead_from_trace,
    speedup,
)


class TestOverheadResult:
    def test_basic_decomposition(self):
        r = OverheadResult(ideal_cycles=1000.0, translation_cycles=280.0)
        assert r.execution_cycles == 1280.0
        assert r.overhead == pytest.approx(0.28)
        assert r.overhead_percent == pytest.approx(28.0)

    def test_zero_translation(self):
        r = OverheadResult(ideal_cycles=1000.0, translation_cycles=0.0)
        assert r.overhead == 0.0

    def test_from_trace(self):
        r = overhead_from_trace(100, 5.0, 50.0)
        assert r.ideal_cycles == 500.0
        assert r.overhead == pytest.approx(0.1)

    def test_from_trace_validation(self):
        with pytest.raises(ValueError):
            overhead_from_trace(0, 5.0, 1.0)
        with pytest.raises(ValueError):
            overhead_from_trace(10, 0.0, 1.0)

    def test_speedup(self):
        base = OverheadResult(1000.0, 1000.0)
        improved = OverheadResult(1000.0, 0.0)
        assert speedup(base, improved) == pytest.approx(2.0)

    @given(
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=0.0, max_value=1e9),
    )
    def test_overhead_nonnegative(self, ideal, translation):
        r = OverheadResult(ideal, translation)
        assert r.overhead >= 0.0
        assert r.execution_cycles >= r.ideal_cycles


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == 7.0

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
