"""Tests for the Section IX.B energy accounting."""

import pytest

from repro.model.energy import (
    EnergyParameters,
    dynamic_energy,
    static_energy_saving,
)


class TestStaticEnergy:
    def test_saving_matches_runtime_reduction(self):
        # "Reduces execution time by X% -> static energy by about X%."
        assert static_energy_saving(100.0, 89.0) == pytest.approx(0.11)
        assert static_energy_saving(100.0, 11.0) == pytest.approx(0.89)

    def test_no_saving_when_slower(self):
        assert static_energy_saving(100.0, 120.0) == 0.0

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            static_energy_saving(0.0, 10.0)


class TestDynamicEnergy:
    def test_terms_decompose(self):
        params = EnergyParameters(
            l1_probe=1.0, l2_probe=4.0, segment_check=0.05, walk_reference=20.0
        )
        breakdown = dynamic_energy(
            accesses=1000,
            l1_misses=100,
            segment_checked_misses=100,
            l2_probes=100,
            walk_refs=50,
            params=params,
        )
        assert breakdown.l1_energy == 1000.0
        assert breakdown.l2_energy == pytest.approx(400.0 + 5.0)
        assert breakdown.walker_energy == 1000.0
        assert breakdown.total == pytest.approx(2405.0)

    def test_walker_reduction_dominates_comparator_cost(self):
        # The paper's argument: adding the tiny segment comparators to
        # every L1 miss costs far less than the walker references the
        # new design removes.
        base = dynamic_energy(
            accesses=10_000, l1_misses=1000, segment_checked_misses=0,
            l2_probes=1000, walk_refs=5000,
        )
        dual_direct = dynamic_energy(
            accesses=10_000, l1_misses=1000, segment_checked_misses=1000,
            l2_probes=0, walk_refs=0,
        )
        assert dual_direct.total < base.total

    def test_zero_events(self):
        b = dynamic_energy(0, 0, 0, 0, 0)
        assert b.total == 0.0
