"""Tests for the Table IV linear models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.linear_model import (
    DELTA_GD,
    DELTA_VD,
    MeasuredInputs,
    base_virtualized_cycles,
    direct_segment_cycles,
    dual_direct_cycles,
    guest_direct_cycles,
    native_cycles,
    vmm_direct_cycles,
)


def inputs(**kwargs) -> MeasuredInputs:
    defaults = dict(
        native_misses=1_000_000,
        native_cycles_per_miss=40.0,
        virtualized_cycles_per_miss=100.0,
    )
    defaults.update(kwargs)
    return MeasuredInputs(**defaults)


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            inputs(f_vd=1.5)
        with pytest.raises(ValueError):
            inputs(f_gd=-0.1)

    def test_dual_direct_fractions_sum(self):
        with pytest.raises(ValueError):
            inputs(f_vd=0.5, f_gd=0.4, f_dd=0.3)


class TestPaperFormulas:
    """Each model, checked against hand computation."""

    def test_native_and_base(self):
        m = inputs()
        assert native_cycles(m) == 40.0 * 1_000_000
        assert base_virtualized_cycles(m) == 100.0 * 1_000_000

    def test_direct_segment(self):
        # Cn * (1 - F_DS) * Mn.
        m = inputs(f_ds=0.99)
        assert direct_segment_cycles(m) == pytest.approx(40.0 * 0.01 * 1e6)

    def test_vmm_direct(self):
        # [(Cn + 5)*F_VD + Cv*(1 - F_VD)] * Mn.
        m = inputs(f_vd=0.9)
        expected = ((40 + 5) * 0.9 + 100 * 0.1) * 1e6
        assert vmm_direct_cycles(m) == pytest.approx(expected)

    def test_guest_direct(self):
        m = inputs(f_gd=0.95)
        expected = ((40 + 1) * 0.95 + 100 * 0.05) * 1e6
        assert guest_direct_cycles(m) == pytest.approx(expected)

    def test_dual_direct(self):
        m = inputs(f_dd=0.9, f_vd=0.05, f_gd=0.03)
        expected = ((40 + 5) * 0.05 + (40 + 1) * 0.03 + 100 * 0.02) * 1e6
        assert dual_direct_cycles(m) == pytest.approx(expected)

    def test_dual_direct_full_coverage_is_free(self):
        m = inputs(f_dd=1.0)
        assert dual_direct_cycles(m) == 0.0

    def test_deltas_match_paper(self):
        assert DELTA_VD == 5.0
        assert DELTA_GD == 1.0


class TestOrderings:
    """Relationships the paper's design space implies."""

    @given(
        st.floats(min_value=20, max_value=100),  # Cn
        st.floats(min_value=2.0, max_value=4.0),  # Cv/Cn: Cv > Cn + 5
        st.floats(min_value=0.5, max_value=1.0),  # coverage
    )
    def test_modes_always_beat_base_virtualized(self, cn, ratio, coverage):
        vd = inputs(
            native_cycles_per_miss=cn,
            virtualized_cycles_per_miss=cn * ratio,
            f_vd=coverage,
        )
        gd = inputs(
            native_cycles_per_miss=cn,
            virtualized_cycles_per_miss=cn * ratio,
            f_gd=coverage,
        )
        assert vmm_direct_cycles(vd) < base_virtualized_cycles(vd)
        assert guest_direct_cycles(gd) < base_virtualized_cycles(gd)

    @given(st.floats(min_value=0.5, max_value=1.0))
    def test_guest_direct_cheaper_than_vmm_direct_at_equal_coverage(self, coverage):
        # Delta_GD < Delta_VD, so at equal coverage GD wins slightly.
        vd = inputs(f_vd=coverage)
        gd = inputs(f_gd=coverage)
        assert guest_direct_cycles(gd) < vmm_direct_cycles(vd)

    @given(
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.3),
    )
    def test_dual_direct_is_best(self, f_dd, f_rest):
        m = inputs(f_dd=f_dd, f_vd=f_rest, f_gd=min(f_rest, 1 - f_dd - f_rest))
        assert dual_direct_cycles(m) <= base_virtualized_cycles(m)

    def test_coverage_monotonicity(self):
        costs = [
            vmm_direct_cycles(inputs(f_vd=f)) for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert costs == sorted(costs, reverse=True)
