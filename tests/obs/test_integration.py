"""End-to-end observability: experiments -> records -> manifest.

The acceptance property of the subsystem: running an experiment grid
with observability enabled changes *nothing* about the simulation
results, produces one record per cell regardless of parallelism, and
serial/parallel manifests agree exactly once volatile fields (wall
clock, pids, host, jobs) are stripped.
"""

import numpy as np

from repro.experiments import figure11
from repro.experiments.stats import collect_observability
from repro.obs import ObsOptions, build_manifest, chrome_trace, stable_view
from repro.sim.config import parse_config
from repro.sim.system import build_system, populate_for_addresses
from tests.conftest import TinyWorkload

GRID = dict(
    trace_length=2000,
    workloads=("gups",),
    configs=("4K", "DD"),
    seed=0,
)


def _manifest(jobs):
    result = figure11.run(jobs=jobs, obs=ObsOptions(interval=500), **GRID)
    records = collect_observability(result)
    assert len(records) == len(GRID["workloads"]) * len(GRID["configs"])
    return result, build_manifest("figure11", records, jobs=jobs)


class TestDeterminism:
    def test_serial_and_parallel_manifests_agree(self):
        serial_result, serial = _manifest(jobs=1)
        parallel_result, parallel = _manifest(jobs=2)
        assert stable_view(serial) == stable_view(parallel)
        # And the simulation itself is unaffected by the worker count.
        for workload in GRID["workloads"]:
            for config in GRID["configs"]:
                assert serial_result.grid.overhead_percent(
                    workload, config
                ) == parallel_result.grid.overhead_percent(workload, config)

    def test_observability_does_not_change_results(self):
        plain = figure11.run(jobs=1, **GRID)
        observed = figure11.run(jobs=1, obs=ObsOptions(interval=500), **GRID)
        for workload in GRID["workloads"]:
            for config in GRID["configs"]:
                assert plain.grid.overhead_percent(
                    workload, config
                ) == observed.grid.overhead_percent(workload, config)

    def test_chrome_trace_from_grid(self):
        result = figure11.run(jobs=2, obs=ObsOptions(interval=500), **GRID)
        doc = chrome_trace(collect_observability(result), "figure11")
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"gups/4K", "gups/DD"}


class TestBatchedEquivalenceWithMetrics:
    def test_scalar_and_batched_identical_with_metrics_enabled(self):
        """Attaching a live registry must not break the bit-identical
        batched/scalar guarantee."""
        from repro.obs.metrics import MetricsRegistry

        workload = TinyWorkload()
        trace = workload.trace(3000, seed=3)
        outcomes = {}
        for label in ("scalar", "batched"):
            system = build_system(parse_config("4K+4K"), workload.spec)
            system.mmu.metrics = MetricsRegistry()
            addresses = (trace.astype(np.int64) << 12) + system.base_va
            populate_for_addresses(system, np.unique(addresses).tolist())
            if label == "batched":
                system.mmu.access_batch(addresses)
            else:
                for va in addresses:
                    system.mmu.access(int(va))
            outcomes[label] = (
                system.mmu.counters.__dict__.copy(),
                system.mmu.metrics.snapshot(),
            )
        scalar_counters, scalar_metrics = outcomes["scalar"]
        batched_counters, batched_metrics = outcomes["batched"]
        assert scalar_counters == batched_counters
        # The MMU-level metrics agree too (engine.* names are batched-only
        # bookkeeping, so compare the shared mmu.* families).
        for name in ("mmu.walk_latency_cycles", "mmu.walk_refs"):
            assert scalar_metrics.get(name) == batched_metrics.get(name), name
