"""Per-host trace lanes and fabric provenance in manifests."""

from repro.obs.manifest import (
    VOLATILE_CELL_FIELDS,
    VOLATILE_TOP_FIELDS,
    build_manifest,
    cell_manifest,
    stable_view,
    validate_manifest,
)
from repro.obs.tracing import RunObservability, chrome_trace, run_host


def make_record(workload="tiny", config="4K", seed=0, pid=100, host=""):
    return RunObservability(
        workload=workload,
        config=config,
        seed=seed,
        trace_length=2000,
        interval=None,
        started_us=1_000,
        duration_us=5_000,
        pid=pid,
        host=host,
        samples=(),
        metrics={},
        summary={"overhead_percent": 1.0, "measured_refs": 100, "walks": 3,
                 "translation_cycles": 10.0},
    )


def _lane_names(trace):
    return {
        e["pid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e.get("name") == "process_name"
    }


def _span_lanes(trace):
    return [
        e["pid"] for e in trace["traceEvents"] if e.get("cat") == "cell"
    ]


class TestRunHost:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_HOST", "lab-node-7")
        assert run_host() == "lab-node-7"

    def test_matches_worker_host_helper(self, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_HOST", "lab-node-8")
        from repro.fabric.worker import worker_host

        assert run_host() == worker_host()


class TestChromeTraceLanes:
    def test_single_host_keeps_pid_lanes(self):
        """Backward compatible: one host -> lanes named exactly as the
        pre-fabric emitter named them, keyed by real pid."""
        records = [
            make_record(pid=100, host="alpha"),
            make_record(config="DD", pid=200, host="alpha"),
        ]
        names = _lane_names(chrome_trace(records, "figure11"))
        assert names == {
            100: "figure11 worker 100",
            200: "figure11 worker 200",
        }

    def test_multi_host_gets_one_lane_per_host_pid_pair(self):
        records = [
            make_record(pid=100, host="alpha"),
            make_record(config="DD", pid=100, host="beta"),
            make_record(config="4K+VD", pid=200, host="beta"),
        ]
        trace = chrome_trace(records, "figure11")
        names = _lane_names(trace)
        # Three lanes even though two records share pid 100.
        assert sorted(names.values()) == [
            "figure11 alpha worker 100",
            "figure11 beta worker 100",
            "figure11 beta worker 200",
        ]
        assert len(set(_span_lanes(trace))) == 3

    def test_spans_carry_host_and_real_pid_in_args(self):
        records = [
            make_record(pid=100, host="alpha"),
            make_record(config="DD", pid=100, host="beta"),
        ]
        spans = [
            e for e in chrome_trace(records)["traceEvents"]
            if e.get("cat") == "cell"
        ]
        assert {(s["args"]["host"], s["args"]["worker_pid"]) for s in spans} == {
            ("alpha", 100),
            ("beta", 100),
        }


class TestManifestHost:
    def test_cell_records_host_and_stable_view_strips_it(self):
        cell = cell_manifest(make_record(host="gamma"))
        assert cell["host"] == "gamma"
        assert "host" in VOLATILE_CELL_FIELDS

        manifest = build_manifest("figure11", [make_record(host="gamma")])
        view = stable_view(manifest)
        assert all("host" not in c for c in view["cells"])

    def test_host_does_not_break_stable_comparison(self):
        """The same sweep run on different hosts compares equal."""
        a = build_manifest("figure11", [make_record(host="alpha", pid=1)])
        b = build_manifest("figure11", [make_record(host="beta", pid=2)])
        assert stable_view(a) == stable_view(b)


class TestManifestFabric:
    EVENTS = [
        {"seq": 1, "ts": 0.0, "event": "lease-grant", "worker": "w1"},
        {"seq": 2, "ts": 0.1, "event": "cell-done", "worker": "w1"},
    ]

    def test_fabric_section_recorded_and_volatile(self):
        manifest = build_manifest(
            "figure11",
            [make_record()],
            fabric={"coordinator": "127.0.0.1:7463", "events": self.EVENTS},
        )
        assert manifest["fabric"]["coordinator"] == "127.0.0.1:7463"
        assert len(manifest["fabric"]["events"]) == 2
        assert "fabric" in VOLATILE_TOP_FIELDS
        assert "fabric" not in stable_view(manifest)
        validate_manifest(manifest)

    def test_local_manifest_has_no_fabric_section(self):
        manifest = build_manifest("figure11", [make_record()])
        assert "fabric" not in manifest
        # Fabric and local manifests of the same sweep compare equal.
        fabric = build_manifest(
            "figure11", [make_record()],
            fabric={"coordinator": "x:1", "events": []},
        )
        assert stable_view(fabric) == stable_view(manifest)
