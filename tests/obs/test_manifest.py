"""Manifest building, schema validation, IO and determinism."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_KIND,
    SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    cell_manifest,
    config_hash,
    load_manifest,
    stable_view,
    validate_manifest,
    write_manifest,
)
from repro.obs.tracing import IntervalSample, RunObservability


def make_record(workload="tiny", config="4K", seed=0, pid=100, started=1_000):
    return RunObservability(
        workload=workload,
        config=config,
        seed=seed,
        trace_length=2000,
        interval=500,
        started_us=started,
        duration_us=5_000,
        pid=pid,
        samples=(
            IntervalSample(
                ref_index=500,
                accesses=500,
                l1_hits=450,
                l1_misses=50,
                l2_hits=30,
                l2_misses=20,
                walks=20,
                walk_cycles=800.0,
                translation_cycles=800.0,
                dual_direct_hits=0,
                segment_l2_parallel_hits=0,
                escape_filter_pages=-1,
            ),
        ),
        metrics={"walks": {"type": "counter", "value": 20}},
        summary={
            "overhead_percent": 8.0,
            "measured_refs": 1700,
            "walks": 20,
            "translation_cycles": 800.0,
        },
    )


class TestConfigHash:
    def test_stable_and_order_independent(self):
        a = config_hash({"x": 1, "y": 2})
        b = config_hash({"y": 2, "x": 1})
        assert a == b
        assert len(a) == 16

    def test_differs_on_any_parameter(self):
        assert config_hash({"seed": 0}) != config_hash({"seed": 1})


class TestBuildManifest:
    def test_cells_sorted_regardless_of_input_order(self):
        records = [
            make_record(config="DD", pid=2, started=9_999),
            make_record(config="4K", pid=1),
            make_record(workload="gups", config="4K", pid=3),
        ]
        manifest = build_manifest("unit", records)
        keys = [(c["workload"], c["config"], c["seed"]) for c in manifest["cells"]]
        assert keys == sorted(keys)

    def test_totals_aggregate(self):
        manifest = build_manifest("unit", [make_record(), make_record(config="DD")])
        totals = manifest["totals"]
        assert totals["cells"] == 2
        assert totals["measured_refs"] == 3400
        assert totals["walks"] == 40
        assert totals["metrics"]["walks"]["value"] == 40

    def test_validates_clean(self):
        manifest = build_manifest("unit", [make_record()])
        assert validate_manifest(manifest) is manifest
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["schema_version"] == SCHEMA_VERSION


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ManifestError, match="JSON object"):
            validate_manifest([1, 2])

    def test_rejects_foreign_kind(self):
        manifest = build_manifest("unit", [make_record()])
        manifest["kind"] = "something.else"
        with pytest.raises(ManifestError, match="kind"):
            validate_manifest(manifest)

    def test_rejects_wrong_schema_version(self):
        manifest = build_manifest("unit", [make_record()])
        manifest["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ManifestError, match="schema_version"):
            validate_manifest(manifest)

    def test_collects_all_cell_problems(self):
        manifest = build_manifest("unit", [make_record()])
        del manifest["cells"][0]["seed"]
        manifest["cells"][0]["pid"] = "not-an-int"
        with pytest.raises(ManifestError) as excinfo:
            validate_manifest(manifest)
        message = str(excinfo.value)
        assert "seed" in message and "pid" in message

    def test_missing_top_field(self):
        manifest = build_manifest("unit", [make_record()])
        del manifest["totals"]
        with pytest.raises(ManifestError, match="totals"):
            validate_manifest(manifest)


class TestIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        manifest = build_manifest("unit", [make_record()])
        path = write_manifest(manifest, tmp_path / "deep" / "manifest.json")
        assert path.exists()  # parents created
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(ManifestError):
            load_manifest(path)


class TestStableView:
    def test_strips_volatile_fields_only(self):
        records = [make_record(pid=1, started=10), make_record(pid=1, started=20)]
        slow = build_manifest("unit", records, jobs=1, argv=["a"])
        fast = build_manifest(
            "unit",
            [make_record(pid=7, started=99), make_record(pid=8, started=5)],
            jobs=4,
            argv=["b"],
            duration_seconds=1.5,
        )
        assert slow != fast
        assert stable_view(slow) == stable_view(fast)

    def test_result_changes_survive_stabilization(self):
        a = build_manifest("unit", [make_record()])
        b = build_manifest("unit", [make_record(seed=1)])
        assert stable_view(a) != stable_view(b)


class TestCellManifest:
    def test_identity_hash_covers_run_parameters(self):
        base = cell_manifest(make_record())
        other = cell_manifest(make_record(seed=5))
        assert base["config_hash"] != other["config_hash"]
        # Timing does not enter the identity hash.
        late = cell_manifest(make_record(started=999_999))
        assert base["config_hash"] == late["config_hash"]
